//! The headline scenario of the paper: answering SQL over a *virtual* schema
//! whose data lives only in the language model's knowledge.
//!
//! The example generates a synthetic world atlas, hands it to the simulated
//! model as its "parametric knowledge", and then answers SQL against virtual
//! tables — comparing the answers, the model-call counts and the accuracy
//! against the relational ground truth.
//!
//! ```sh
//! cargo run --example world_atlas_llm
//! ```

use llmsql_core::{score_batches, EvalOptions};
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
use llmsql_workload::{World, WorldSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The ground truth: a synthetic world atlas stored relationally.
    let world = World::generate(WorldSpec {
        countries: 40,
        cities_per_country: 3,
        people: 60,
        movies: 40,
        seed: 2024,
    })?;
    let oracle = world.oracle_engine();

    // The subject: the same schema, but every scan is answered by the
    // (simulated) language model at "strong commercial model" fidelity.
    let subject = world.subject_engine(
        EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(PromptStrategy::BatchedRows)
            .with_fidelity(LlmFidelity::strong()),
    )?;

    let queries = [
        "SELECT name, capital FROM countries WHERE region = 'Europe'",
        "SELECT name, population FROM countries ORDER BY population DESC LIMIT 5",
        "SELECT c.region, COUNT(*) FROM cities ci JOIN countries c ON ci.country = c.name GROUP BY c.region",
        "SELECT profession, COUNT(*) FROM people GROUP BY profession",
    ];

    for sql in queries {
        println!("SQL> {sql}");
        let truth = oracle.execute(sql)?;
        let answer = subject.execute(sql)?;
        let score = score_batches(&answer.batch, &truth.batch, &EvalOptions::exact());
        println!("{}", answer.to_ascii_table());
        println!(
            "  model: {} calls, {} tokens, ${:.4}, ~{:.0} ms simulated latency",
            answer.metrics.llm_calls(),
            answer.usage.total_tokens(),
            answer.usage.cost_usd,
            answer.usage.latency_ms,
        );
        println!(
            "  accuracy vs ground truth: precision {:.2}, recall {:.2}, F1 {:.2}{}",
            score.precision,
            score.recall,
            score.f1,
            if score.exact { "  (exact)" } else { "" }
        );
        println!();
    }
    Ok(())
}
