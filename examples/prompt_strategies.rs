//! Compare the four prompting strategies on one query: what the engine sends
//! to the model, how many calls it makes, what it costs, and how good the
//! answer is.
//!
//! ```sh
//! cargo run --example prompt_strategies
//! ```

use llmsql_core::{score_batches, EvalOptions};
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
use llmsql_workload::{World, WorldSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(WorldSpec {
        countries: 30,
        cities_per_country: 3,
        people: 30,
        movies: 20,
        seed: 11,
    })?;
    let oracle = world.oracle_engine();
    let sql =
        "SELECT name, capital FROM countries WHERE region = 'Europe' AND population > 1000000";
    let truth = oracle.execute(sql)?;
    println!("SQL> {sql}");
    println!("ground truth: {} rows\n", truth.row_count());

    for strategy in PromptStrategy::ALL {
        let subject = world.subject_engine(
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_strategy(strategy)
                .with_fidelity(LlmFidelity::strong()),
        )?;
        let answer = subject.execute(sql)?;
        let score = score_batches(&answer.batch, &truth.batch, &EvalOptions::exact());
        println!("strategy: {strategy}");
        println!(
            "  rows {:>3}   F1 {:.2}   calls {:>3}   tokens {:>6}   cost ${:.4}   simulated latency {:>7.0} ms",
            answer.row_count(),
            score.f1,
            answer.metrics.llm_calls(),
            answer.usage.total_tokens(),
            answer.usage.cost_usd,
            answer.usage.latency_ms,
        );
        // Show which prompt kinds this strategy used.
        let kinds: Vec<String> = answer
            .metrics
            .llm_calls_by_kind
            .iter()
            .map(|(k, v)| format!("{k}×{v}"))
            .collect();
        println!("  prompt kinds: {}\n", kinds.join(", "));
    }

    println!("-- the optimized plan behind the non-full-query strategies --");
    let subject = world.subject_engine(
        EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_fidelity(LlmFidelity::strong()),
    )?;
    let explain = subject.execute(&format!("EXPLAIN {sql}"))?;
    println!("{}", explain.plan.unwrap_or_default());
    Ok(())
}
