//! The event-driven dispatch core in one picture: 64 in-flight LLM calls
//! served by 4 scheduler worker threads.
//!
//! Before the reactor, every in-flight request pinned one OS thread (a scan
//! worker blocking inside the call), so 64 concurrent calls meant ~64
//! threads. Now a worker *submits* its whole wave through the non-blocking
//! `LanguageModel::submit` API and parks on the reactor, so the process
//! holds `llm_slots = 64` in-flight requests on little more than its 4
//! worker threads — the example samples `/proc/self/status` while the
//! workload runs and prints peak OS threads next to the peak in-flight
//! gauge.
//!
//! Run with: `cargo run --release --example async_dispatch`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use llmsql::types::{Column, DataType, Row, Schema, Value};
use llmsql::{Engine, EngineConfig, ExecutionMode, LlmFidelity, Priority, PromptStrategy};
use llmsql::{QueryOutcome, QueryScheduler, QueryTicket, SchedConfig};
use llmsql_llm::{KnowledgeBase, SimLlm};
use llmsql_store::Catalog;

const TABLE_ROWS: usize = 64;
const LLM_SLOTS: usize = 64;
const WORKERS: usize = 4;

/// A 64-entity virtual relation scanned tuple-at-a-time at parallelism 64:
/// each query is one enumerate followed by one 64-lookup wave, all of it in
/// flight at once on the submitting worker's reactor.
fn subject_engine() -> Engine {
    let schema = Schema::virtual_table(
        "countries",
        vec![
            Column::new("name", DataType::Text).primary_key(),
            Column::new("population", DataType::Int),
        ],
    );
    let data: Vec<Row> = (0..TABLE_ROWS)
        .map(|i| {
            Row::new(vec![
                Value::Text(format!("Country {i:04}")),
                Value::Int(100_000 + 37 * i as i64),
            ])
        })
        .collect();
    let catalog = Catalog::new();
    catalog
        .create_virtual_table(schema.clone())
        .expect("fresh catalog");
    let mut kb = KnowledgeBase::new();
    kb.add_table(schema, data);
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::TupleAtATime)
        .with_parallelism(LLM_SLOTS)
        .with_seed(7);
    config.max_scan_rows = TABLE_ROWS;
    config.enable_prompt_cache = false; // every query pays its real wave
    let mut engine = Engine::with_catalog(catalog, config);
    // 20ms simulated round trips — represented as reactor timers, never as
    // sleeping threads, because SimLlm serves the async submit API.
    let sim =
        SimLlm::new(kb.into_shared(), LlmFidelity::perfect(), 7).with_simulated_latency_ms(20.0);
    engine.attach_model(Arc::new(sim)).expect("no backend list");
    engine
}

/// Current OS thread count of this process (Linux; `None` elsewhere).
fn os_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn main() {
    let engine = subject_engine();
    assert!(
        engine.client().expect("model attached").supports_async(),
        "simulator must advertise async submit"
    );
    let sched = QueryScheduler::new(
        engine,
        SchedConfig::default()
            .with_workers(WORKERS)
            .with_llm_slots(LLM_SLOTS)
            .paused(), // build the backlog first so all workers start together
    )
    .expect("valid scheduler config");

    // Sample the process's thread count while the workload runs.
    let stop = Arc::new(AtomicBool::new(false));
    let peak_threads = Arc::new(AtomicU64::new(0));
    let sampler = {
        let stop = Arc::clone(&stop);
        let peak_threads = Arc::clone(&peak_threads);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if let Some(threads) = os_threads() {
                    peak_threads.fetch_max(threads, Ordering::Relaxed);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        })
    };

    let tickets: Vec<QueryTicket> = (0..8)
        .map(|i| {
            sched
                .submit(
                    format!("tenant-{}", i % 2),
                    Priority::NORMAL,
                    format!(
                        "SELECT name, population FROM countries WHERE population > {}",
                        90_000 + i
                    ),
                )
                .expect("within admission caps")
        })
        .collect();
    println!(
        "8 queries × (1 enumerate + {TABLE_ROWS} lookups) over {WORKERS} workers, \
         {LLM_SLOTS} global call slots, 20ms simulated round trips\n"
    );
    let started = std::time::Instant::now();
    sched.resume();
    let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(QueryTicket::wait).collect();
    let elapsed = started.elapsed();
    stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler joins");

    let mut peak_in_flight = 0;
    let mut total_calls = 0;
    for outcome in &outcomes {
        let result = outcome.result.as_ref().expect("query succeeded");
        assert_eq!(result.row_count(), TABLE_ROWS);
        peak_in_flight = peak_in_flight.max(result.metrics.peak_in_flight);
        total_calls += outcome.llm_calls;
    }
    let stats = sched.stats();

    println!("wall time               : {elapsed:?} ({total_calls} calls of 20ms each)");
    println!("peak in-flight (1 query): {peak_in_flight}  (ExecMetrics::peak_in_flight)");
    println!(
        "peak slots in use       : {}/{}  (global, all queries)",
        stats.peak_slots_in_use, stats.slot_capacity
    );
    match peak_threads.load(Ordering::Relaxed) {
        0 => println!("peak OS threads         : n/a (no /proc on this platform)"),
        peak => {
            println!(
                "peak OS threads         : {peak}  (main + sampler + {WORKERS} workers; \
                 no thread per in-flight call)"
            );
            // The acceptance bar: 64 in-flight calls on ~8 threads. Without
            // the reactor this process would peak near 64+ threads.
            assert!(
                peak <= 8,
                "event-driven dispatch should not spawn per-call threads (saw {peak})"
            );
        }
    }
    assert!(
        peak_in_flight >= 48,
        "expected a near-full wave in flight, saw {peak_in_flight}"
    );
    assert!(
        stats.peak_slots_in_use >= 48,
        "expected ≥ 48/64 global slots at peak: {stats:?}"
    );
    println!("\n64 in-flight calls, no per-call threads ✓");
}
