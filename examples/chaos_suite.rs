//! The chaos suite: survive a seeded bad day without changing a single row.
//!
//! One deterministic fault schedule — a hard-down outage on `edge-a`, a 20×
//! latency storm on `edge-b`, an error burst on `edge-c` — is driven through
//! a 200-row scan over four backends at parallelism 8. The run asserts the
//! robustness invariants:
//!
//! 1. rows under chaos are byte-identical to the fault-free run,
//! 2. physical retry spend stays under `logical × backends × (1 + retries)`
//!    plus hedges,
//! 3. the same seed reproduces identical per-backend counters.
//!
//! Run with: `cargo run --release --example chaos_suite`

use llmsql_workload::{run_chaos_suite, CHAOS_ROWS};

fn main() {
    let seed = 2024;
    let outcome = run_chaos_suite(seed).expect("chaos suite must complete");

    let print = |label: &str, report: &llmsql_workload::ChaosReport| {
        println!(
            "{label:<14} {} rows, {} logical calls, {} attempts ({} errors, {} retries, {} hedges)",
            report.batch.rows.len(),
            report.logical_calls,
            report.attempts,
            report.errors,
            report.retries,
            report.hedges
        );
        for s in &report.backend_stats {
            println!(
                "  {:<8} {:>3} attempts, {:>3} errors, {:>3} retries, {:>2} short-circuits, {:>2} hedges",
                s.id, s.calls, s.errors, s.retries, s.short_circuits, s.hedges
            );
        }
    };

    println!("chaos suite @ seed {seed} ({CHAOS_ROWS}-row scan, 4 backends, parallelism 8)\n");
    print("no chaos", &outcome.baseline);
    println!();
    print("chaos (det 1)", &outcome.deterministic_first);
    println!();
    print("chaos (det 2)", &outcome.deterministic_second);
    println!();
    print("chaos+absorb", &outcome.absorbed);

    outcome.verify().expect("robustness invariants must hold");
    println!(
        "\nall invariants hold: rows byte-identical, {} attempts <= ceiling {}, \
         per-backend stats reproduce exactly",
        outcome.absorbed.attempts, outcome.attempt_ceiling
    );
}
