//! Hybrid execution: a relational store with missing values, completed from
//! the language model at query time.
//!
//! The example degrades the ground-truth store (40% of attribute values
//! replaced by NULL), then answers the same queries three ways — traditional
//! over the damaged store, hybrid (model fills the gaps), and pure LLM-only —
//! and prints the accuracy of each against the undamaged oracle.
//!
//! ```sh
//! cargo run --example hybrid_completion
//! ```

use llmsql_core::{score_batches, Engine, EvalOptions};
use llmsql_store::{degrade_catalog, DegradeSpec};
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
use llmsql_workload::{World, WorldSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = World::generate(WorldSpec {
        countries: 30,
        cities_per_country: 3,
        people: 40,
        movies: 30,
        seed: 7,
    })?;
    let oracle = world.oracle_engine();

    // Damage the store: 40% of nullable attribute values disappear.
    let (degraded, report) = degrade_catalog(&world.catalog, &DegradeSpec::nulls(0.4, 99))?;
    println!(
        "degraded store: {} attribute values removed across {} rows\n",
        report.nulled_values, report.kept_rows
    );

    let traditional = Engine::with_catalog(
        degraded.clone(),
        EngineConfig::default().with_mode(ExecutionMode::Traditional),
    );
    let hybrid = world.subject_engine_with_catalog(
        degraded,
        EngineConfig::default()
            .with_mode(ExecutionMode::Hybrid)
            .with_fidelity(LlmFidelity::strong()),
    )?;
    let llm_only = world.subject_engine(
        EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(PromptStrategy::BatchedRows)
            .with_fidelity(LlmFidelity::strong()),
    )?;

    let queries = [
        "SELECT name, capital FROM countries WHERE region = 'Europe'",
        "SELECT name, population FROM countries WHERE population > 50000000",
        "SELECT region, COUNT(*) FROM countries GROUP BY region",
    ];

    for sql in queries {
        println!("SQL> {sql}");
        let truth = oracle.execute(sql)?;
        for (label, engine) in [
            ("traditional (damaged store)", &traditional),
            ("hybrid (store + model)     ", &hybrid),
            ("llm-only (model alone)     ", &llm_only),
        ] {
            let answer = engine.execute(sql)?;
            let score = score_batches(&answer.batch, &truth.batch, &EvalOptions::exact());
            println!(
                "  {label}: F1 {:.2}  (precision {:.2}, recall {:.2}; {} model calls, {} cells filled)",
                score.f1,
                score.precision,
                score.recall,
                answer.metrics.llm_calls(),
                answer.metrics.cells_filled_by_llm,
            );
        }
        println!();
    }
    Ok(())
}
