//! Demonstrates multi-backend dispatch with failover: the same 100-row
//! virtual-table scan served through a pool of three deterministic
//! "remote-like" endpoints — one of them hard down — under every routing
//! policy. Rows and logical call counts never change; only which endpoint
//! does the work (and what it costs) does.
//!
//! Run with: `cargo run --release --example multi_backend`

use llmsql_bench::{multi_backend_engine, parallel_scan_engine};
use llmsql_types::RoutingPolicy;

fn main() {
    let sql = "SELECT name, population FROM countries";
    let baseline = parallel_scan_engine(100, 4, 1.0).execute(sql).unwrap();
    println!(
        "single backend : {} rows, {} calls, ${:.4}",
        baseline.row_count(),
        baseline.usage.calls,
        baseline.usage.cost_usd
    );

    for policy in RoutingPolicy::ALL {
        let engine = multi_backend_engine(100, 4, 1.0, policy, true);
        let result = engine.execute(sql).unwrap();
        assert_eq!(result.rows(), baseline.rows(), "rows diverged");
        assert_eq!(result.usage.calls, baseline.usage.calls, "calls diverged");
        println!(
            "\n{policy} (edge-a is hard down): {} rows, {} logical calls, ${:.4}",
            result.row_count(),
            result.usage.calls,
            result.usage.cost_usd
        );
        for (backend, calls) in &result.metrics.backend_calls {
            println!(
                "  {backend:<8} {calls:>3} attempts, {} errors, {:.0} ms served",
                result.metrics.backend_errors.get(backend).unwrap_or(&0),
                result
                    .metrics
                    .backend_latency_ms
                    .get(backend)
                    .unwrap_or(&0.0),
            );
        }
    }
    println!("\nidentical rows and call counts under every policy ✓");
}
