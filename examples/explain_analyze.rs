//! EXPLAIN / EXPLAIN ANALYZE: the static plan analyzer end to end.
//!
//! Builds a small world, points an LLM-only engine (perfect-fidelity
//! simulator) at it, and walks through what the analyzer surfaces:
//!
//! 1. `EXPLAIN` with the optimizer off — the plan lints call out every
//!    cost hazard (a filter evaluated *after* the LLM scan returns rows).
//! 2. `EXPLAIN` with the optimizer on — the fired-rule trace shows the
//!    rewrites and the estimated calls/USD/latency drop.
//! 3. `EXPLAIN ANALYZE` — the query actually runs and every operator line
//!    carries actual rows/calls/wall time next to the estimates.
//!
//! ```sh
//! cargo run --example explain_analyze
//! ```

use llmsql_core::{Engine, EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};

const SQL: &str = "SELECT name FROM countries WHERE population > 50 AND region LIKE '%a%'";

fn subject(optimize: bool, oracle: &Engine) -> Result<Engine, Box<dyn std::error::Error>> {
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::BatchedRows)
        .with_fidelity(LlmFidelity::perfect());
    if !optimize {
        config.enable_optimizer = false;
        config.enable_predicate_pushdown = false;
        config.enable_projection_pruning = false;
    }
    let kb = Engine::knowledge_from_catalog(oracle.catalog())?;
    let mut engine = Engine::with_catalog(oracle.catalog().deep_clone()?, config);
    engine.attach_simulator(kb.into_shared())?;
    Ok(engine)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let oracle = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));
    oracle.execute_script(
        "CREATE TABLE countries (name TEXT PRIMARY KEY, region TEXT, population INTEGER);
         INSERT INTO countries VALUES
            ('France','Europe',68), ('Germany','Europe',84), ('Japan','Asia',125),
            ('Kenya','Africa',54), ('Peru','Americas',34), ('India','Asia',1428),
            ('Brazil','Americas',216), ('Norway','Europe',5), ('Chad','Africa',18),
            ('Laos','Asia',7)",
    )?;

    println!("== 1. EXPLAIN, optimizer off: the lints flag the hazards ==");
    let naive = subject(false, &oracle)?;
    let result = naive.execute(&format!("EXPLAIN {SQL}"))?;
    println!("{}", result.plan.unwrap_or_default());

    println!("== 2. EXPLAIN, optimizer on: rules fire, estimates drop ==");
    let tuned = subject(true, &oracle)?;
    let result = tuned.execute(&format!("EXPLAIN {SQL}"))?;
    println!("{}", result.plan.unwrap_or_default());

    println!("== 3. EXPLAIN ANALYZE: estimated vs. actual per operator ==");
    let result = tuned.execute(&format!("EXPLAIN ANALYZE {SQL}"))?;
    println!("{}", result.plan.unwrap_or_default());

    println!("== 4. The query itself, for reference ==");
    let answer = tuned.execute(SQL)?;
    println!("{}", answer.to_ascii_table());
    println!("LLM calls spent: {}", answer.metrics.llm_calls());

    Ok(())
}
