//! Tail-latency control end to end: latency-aware (EWMA) routing and hedged
//! requests against a deployment with one 10×-slow backend, then per-query
//! deadlines — engine-level enforcement between scan waves and
//! scheduler-level cancellation of queries whose deadline lapses in the
//! queue.
//!
//! Run with: `cargo run --release --example deadlines_and_hedging`

use llmsql::types::{ErrorKind, RoutingPolicy};
use llmsql::{Priority, SchedConfig};
use llmsql_bench::{parallel_scan_engine, slow_outlier_engine};
use llmsql_sched::QueryScheduler;

const ROWS: usize = 100;
const SCAN_SQL: &str = "SELECT name, population FROM countries";

fn main() {
    // ---- Hedged requests + EWMA routing --------------------------------
    // Baseline: one healthy backend, sequential scan.
    let baseline = parallel_scan_engine(ROWS, 1, 0.0)
        .execute(SCAN_SQL)
        .expect("baseline scan");

    // Subject: three backends, one with 10× the latency of its siblings.
    // Latency-aware routing steers steady-state traffic to the fast
    // members, and hedging rescues the requests that discover the outlier:
    // once a request is late by 3× the pool's fastest EWMA, a duplicate
    // goes to a fast sibling and the first success wins.
    let engine = slow_outlier_engine(ROWS, 4, RoutingPolicy::LatencyAware, true);
    let hedged = engine.execute(SCAN_SQL).expect("hedged scan");
    assert_eq!(
        baseline.rows(),
        hedged.rows(),
        "hedging may only move latency"
    );
    assert_eq!(baseline.metrics.llm_calls(), hedged.metrics.llm_calls());

    println!("hedged scan over a slow-outlier pool ({ROWS} rows):");
    println!(
        "  rows {} | logical calls {} | hedges issued {} | hedges won {}",
        hedged.row_count(),
        hedged.metrics.llm_calls(),
        hedged.metrics.hedges_issued,
        hedged.metrics.hedges_won
    );
    for (id, calls) in &hedged.metrics.backend_calls {
        println!("  backend {id:<12} physical attempts {calls}");
    }

    // ---- Engine-level deadlines ----------------------------------------
    // A generous per-call deadline is transparent; rows and calls match.
    let relaxed = engine
        .execute_with_deadline(SCAN_SQL, 60_000.0)
        .expect("relaxed deadline");
    assert_eq!(relaxed.rows(), hedged.rows());
    println!("\n60s deadline: transparent ({} rows)", relaxed.row_count());

    // ---- Scheduler-level deadlines -------------------------------------
    // A paused scheduler builds a queue; the doomed query's 10ms deadline
    // lapses while it waits and it is cancelled without executing a single
    // LLM call, while its deadline-free companion runs normally.
    let sched = QueryScheduler::new(
        slow_outlier_engine(ROWS, 4, RoutingPolicy::LatencyAware, true),
        SchedConfig::default().with_workers(1).paused(),
    )
    .expect("scheduler");
    let doomed = sched
        .submit_with_deadline("interactive", Priority::HIGH, SCAN_SQL, 10.0)
        .expect("admitted");
    let patient = sched
        .submit("analytics", Priority::NORMAL, SCAN_SQL)
        .expect("admitted");
    std::thread::sleep(std::time::Duration::from_millis(25));
    sched.resume();

    let doomed_outcome = doomed.wait();
    let err = doomed_outcome
        .result
        .expect_err("deadline must have lapsed");
    assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
    assert_eq!(
        doomed_outcome.llm_calls, 0,
        "cancelled queries never execute"
    );
    println!("\nscheduler cancelled the 10ms-deadline query:\n  {err}");

    let patient_outcome = patient.wait();
    let patient_result = patient_outcome.result.expect("companion runs");
    println!(
        "companion query unaffected: {} rows after {:.1}ms queue + {:.1}ms run",
        patient_result.row_count(),
        patient_outcome.queue_ms,
        patient_outcome.run_ms
    );
    let stats = sched.stats();
    println!(
        "scheduler stats: completed {} | deadline_expired {} | deadline_rejected {}",
        stats.completed, stats.deadline_expired, stats.deadline_rejected
    );
}
