//! Quickstart: the engine as an ordinary embedded SQL database
//! (Traditional mode — no language model involved).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use llmsql_core::{Engine, EngineConfig, ExecutionMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new(EngineConfig::default().with_mode(ExecutionMode::Traditional));

    engine.execute(
        "CREATE TABLE countries (
            name TEXT PRIMARY KEY COMMENT 'the short English name',
            region TEXT,
            capital TEXT,
            population INTEGER
         ) COMMENT 'countries of the world'",
    )?;
    engine.execute(
        "INSERT INTO countries VALUES
            ('France', 'Europe', 'Paris', 68000000),
            ('Germany', 'Europe', 'Berlin', 84000000),
            ('Japan', 'Asia', 'Tokyo', 125000000),
            ('Kenya', 'Africa', 'Nairobi', 54000000),
            ('Peru', 'Americas', 'Lima', 34000000)",
    )?;

    println!("-- Large European countries --");
    let result = engine.execute(
        "SELECT name, capital, population FROM countries
         WHERE region = 'Europe' AND population > 10000000
         ORDER BY population DESC",
    )?;
    println!("{}", result.to_ascii_table());

    println!("-- Population by region --");
    let result = engine.execute(
        "SELECT region, COUNT(*) AS countries, SUM(population) AS total_population
         FROM countries GROUP BY region ORDER BY total_population DESC",
    )?;
    println!("{}", result.to_ascii_table());

    println!("-- The plan the engine ran --");
    let explain =
        engine.execute("EXPLAIN SELECT name FROM countries WHERE population > 50000000")?;
    println!("{}", explain.plan.unwrap_or_default());

    Ok(())
}
