//! Demonstrates concurrent LLM dispatch: the same 100-row virtual-table scan
//! executed sequentially and with 4- and 8-way worker pools, against a
//! simulator that sleeps 2ms per request like a real endpoint would.
//!
//! Run with: `cargo run --release --example parallel_scan`

use std::time::Instant;

use llmsql_bench::parallel_scan_engine;

fn main() {
    let sql = "SELECT name, population FROM countries";
    let mut baseline_rows = None;
    for parallelism in [1usize, 4, 8] {
        let engine = parallel_scan_engine(100, parallelism, 2.0);
        let start = Instant::now();
        let result = engine.execute(sql).unwrap();
        let elapsed = start.elapsed();
        println!(
            "parallelism {parallelism}: {} rows in {:>7.1?}  ({} calls, peak {} in flight)",
            result.row_count(),
            elapsed,
            result.usage.calls,
            result.metrics.peak_in_flight,
        );
        match &baseline_rows {
            None => baseline_rows = Some(result.rows().to_vec()),
            Some(expected) => assert_eq!(expected.as_slice(), result.rows(), "rows diverged"),
        }
    }
    println!("identical rows at every parallelism ✓");
}
