//! Walkthrough of the cross-query scheduler: three tenants with different
//! traffic shapes share one engine through a `QueryScheduler` — admission
//! control bounds the queue, a weighted fair-share policy divides LLM call
//! slots 4:2:1, and every ticket reports queue/run/slot-wait accounting.
//!
//! Run with: `cargo run --release --example concurrent_queries`

use llmsql::{Engine, EngineConfig, ExecutionMode, LlmFidelity, Priority, PromptStrategy};
use llmsql::{QueryOutcome, QueryScheduler, QueryTicket, SchedConfig, SchedPolicy};
use llmsql_workload::{multi_tenant_suite, World, WorldSpec};

fn subject_engine(world: &World) -> Engine {
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::BatchedRows)
        .with_fidelity(LlmFidelity::perfect())
        .with_parallelism(4);
    config.enable_prompt_cache = false; // every query pays its real call cost
    let catalog = world.catalog.deep_clone().expect("catalog clones");
    let mut engine = Engine::with_catalog(catalog, config);
    // A simulator with a visible per-call round trip, so slot contention
    // (not CPU) is what the scheduler arbitrates — as in a real deployment.
    let sim = llmsql::llm::SimLlm::new(
        world.knowledge().expect("knowledge mirrors catalog"),
        LlmFidelity::perfect(),
        engine.config().seed,
    )
    .with_simulated_latency_ms(4.0);
    engine
        .attach_model(std::sync::Arc::new(sim))
        .expect("no backend list configured");
    engine
}

fn main() {
    let world = World::generate(WorldSpec::tiny()).expect("world generates");
    let queries = multi_tenant_suite(&world, 4);

    // Sequential baseline: the same queries, one at a time, on an identical
    // engine. Scheduling may only change timing — rows and call counts must
    // match this exactly.
    let baseline_engine = subject_engine(&world);
    let baseline: Vec<(Vec<llmsql::types::Row>, u64)> = queries
        .iter()
        .map(|(_, case)| {
            let r = baseline_engine.execute(&case.sql).expect("baseline query");
            (r.rows().to_vec(), r.metrics.llm_calls())
        })
        .collect();

    // One shared engine behind a scheduler: 3 query workers, 4 global call
    // slots, weighted fair share 4:2:1.
    let sched = QueryScheduler::new(
        subject_engine(&world),
        SchedConfig::default()
            .with_workers(3)
            .with_llm_slots(4)
            .with_policy(SchedPolicy::WeightedFair)
            .with_tenant_weight("interactive", 4)
            .with_tenant_weight("analytics", 2)
            .with_tenant_weight("bulk", 1)
            .paused(), // build the backlog first so fair share, not arrival order, decides
    )
    .expect("valid scheduler config");

    let tickets: Vec<QueryTicket> = queries
        .iter()
        .map(|(tenant, case)| {
            sched
                .submit(tenant.clone(), Priority::NORMAL, case.sql.clone())
                .expect("within admission caps")
        })
        .collect();
    println!(
        "submitted {} queries over 3 tenants; releasing the backlog\n",
        tickets.len()
    );
    sched.resume();

    // Outcomes in submission order, for the per-query comparison.
    let outcomes: Vec<QueryOutcome> = tickets.into_iter().map(QueryTicket::wait).collect();
    for (i, (outcome, (rows, calls))) in outcomes.iter().zip(&baseline).enumerate() {
        let result = outcome.result.as_ref().expect("scheduled query succeeded");
        assert_eq!(result.rows(), &rows[..], "query {i}: rows diverged");
        assert_eq!(outcome.llm_calls, *calls, "query {i}: call count diverged");
    }

    let mut by_finish: Vec<&QueryOutcome> = outcomes.iter().collect();
    by_finish.sort_by_key(|o| o.finish_seq);
    println!("finish  tenant        queue ms  run ms  slot-wait ms  llm calls");
    for o in by_finish {
        println!(
            "{:>6}  {:<12} {:>9.1} {:>7.1} {:>13.2} {:>10}",
            o.finish_seq, o.tenant, o.queue_ms, o.run_ms, o.slot_wait_ms, o.llm_calls
        );
    }

    let stats = sched.stats();
    println!(
        "\nscheduler stats : {} completed, {} rejected",
        stats.completed, stats.rejected
    );
    println!(
        "global slots    : capacity {}, peak in use {}, total slot-wait {:.1} ms",
        stats.slot_capacity, stats.peak_slots_in_use, stats.total_slot_wait_ms
    );
    println!(
        "shared dispatch : {} logical calls coalesced across queries, {} rows batched",
        stats.coalesced_calls, stats.batched_rows
    );
    println!("per-tenant calls (deficit counters):");
    for (tenant, calls) in &stats.tenant_calls {
        println!("  {tenant:<12} {calls:>5}");
    }
    assert!(stats.peak_slots_in_use <= stats.slot_capacity as u64);
    println!("\nidentical rows and call counts under concurrent scheduling ✓");
}
