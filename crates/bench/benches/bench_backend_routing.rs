//! Routing-policy bench: wall-time of a 100-row batched LLM scan at 4-way
//! dispatch through a 3-endpoint backend pool, per routing policy, plus the
//! cost of failover when one endpoint is hard down.
//!
//! The endpoints simulate a few milliseconds of network round trip, so the
//! policies' different load distributions show up in wall-clock time:
//! round-robin interleaves a wave across all members, least-in-flight reacts
//! to stragglers, cost-aware concentrates on the cheapest member (serializing
//! behind it when the fanout exceeds one endpoint's throughput is exactly the
//! trade-off this bench makes visible). Rows and logical call counts are
//! asserted identical across every policy and against the single-backend
//! baseline — routing must never change results.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use llmsql_bench::{multi_backend_engine, parallel_scan_engine};
use llmsql_types::RoutingPolicy;

const SCAN_SQL: &str = "SELECT name, population FROM countries";
const LATENCY_MS: f64 = 2.0;
const PARALLELISM: usize = 4;

fn bench_routing_policies(c: &mut Criterion) {
    let baseline = parallel_scan_engine(100, PARALLELISM, LATENCY_MS)
        .execute(SCAN_SQL)
        .unwrap();

    let mut group = c.benchmark_group("backend_routing_100_rows");
    group.sample_size(5);
    for policy in RoutingPolicy::ALL {
        let engine = multi_backend_engine(100, PARALLELISM, LATENCY_MS, policy, false);
        let result = engine.execute(SCAN_SQL).unwrap();
        assert_eq!(result.rows(), baseline.rows(), "policy {policy}");
        assert_eq!(result.usage.calls, baseline.usage.calls, "policy {policy}");
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, _| {
            b.iter(|| black_box(engine.execute(black_box(SCAN_SQL)).unwrap()))
        });
    }
    group.finish();
}

fn bench_failover_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_failover_100_rows");
    group.sample_size(5);
    for (label, one_failing) in [("all_healthy", false), ("one_down", true)] {
        let engine = multi_backend_engine(
            100,
            PARALLELISM,
            LATENCY_MS,
            RoutingPolicy::RoundRobin,
            one_failing,
        );
        let result = engine.execute(SCAN_SQL).unwrap();
        assert_eq!(result.row_count(), 100);
        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.execute(black_box(SCAN_SQL)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing_policies, bench_failover_overhead);
criterion_main!(benches);
