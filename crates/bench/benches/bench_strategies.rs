//! E2 companion bench: wall-time per prompting strategy on a fixed
//! selection+join workload (the accuracy side of E2 lives in
//! `bin/exp2_strategies`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
use llmsql_workload::{World, WorldSpec};

const SQL: &str =
    "SELECT ci.name, c.region FROM cities ci JOIN countries c ON ci.country = c.name \
     WHERE c.population > 1000000";

fn bench_strategies(c: &mut Criterion) {
    let world = World::generate(WorldSpec::tiny()).unwrap();
    let mut group = c.benchmark_group("prompt_strategy");
    group.sample_size(15);
    for strategy in PromptStrategy::ALL {
        let subject = world
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_strategy(strategy)
                    .with_fidelity(LlmFidelity::strong()),
            )
            .unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            SQL,
            |b, sql| b.iter(|| black_box(subject.execute(black_box(sql)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
