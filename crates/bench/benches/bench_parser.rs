//! Microbenchmark: SQL parsing and planning throughput (engine overhead that
//! is independent of the storage layer).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use llmsql_plan::{bind_select, optimize, OptimizerOptions};
use llmsql_sql::{parse_statement, Statement};
use llmsql_workload::{World, WorldSpec};

const QUERIES: [&str; 4] = [
    "SELECT name, population FROM countries WHERE population > 1000000 ORDER BY population DESC LIMIT 10",
    "SELECT c.region, COUNT(*), SUM(ci.population) FROM countries c JOIN cities ci ON ci.country = c.name GROUP BY c.region",
    "SELECT name FROM people WHERE profession IN ('scientist', 'writer') AND birth_year BETWEEN 1950 AND 1990",
    "SELECT m.title, p.name FROM movies m JOIN people p ON m.director = p.name WHERE m.rating > 7.5",
];

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_statement", |b| {
        b.iter(|| {
            for sql in QUERIES {
                black_box(parse_statement(black_box(sql)).unwrap());
            }
        })
    });
}

fn bench_plan(c: &mut Criterion) {
    let world = World::generate(WorldSpec::tiny()).unwrap();
    let catalog = world.catalog.clone();
    c.bench_function("bind_and_optimize", |b| {
        b.iter(|| {
            for sql in QUERIES {
                let Statement::Select(select) = parse_statement(sql).unwrap() else {
                    unreachable!()
                };
                let plan = bind_select(&catalog, &select).unwrap();
                black_box(optimize(plan, &OptimizerOptions::default()));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_parse, bench_plan
}
criterion_main!(benches);
