//! E4 companion bench: wall-time of join chains of increasing length in
//! Traditional vs LLM-only execution.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
use llmsql_workload::{join_chain_suite, World, WorldSpec};

fn bench_joins(c: &mut Criterion) {
    let world = World::generate(WorldSpec::tiny()).unwrap();
    let oracle = world.oracle_engine();
    let subject = world
        .subject_engine(
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_strategy(PromptStrategy::BatchedRows)
                .with_fidelity(LlmFidelity::perfect())
                .with_batch_size(50),
        )
        .unwrap();

    let mut group = c.benchmark_group("join_chain");
    group.sample_size(15);
    for case in join_chain_suite(3) {
        let joins = case.id.trim_start_matches("join-chain-").to_string();
        group.bench_with_input(
            BenchmarkId::new("traditional", &joins),
            &case.sql,
            |b, sql| b.iter(|| black_box(oracle.execute(black_box(sql)).unwrap())),
        );
        group.bench_with_input(BenchmarkId::new("llm_only", &joins), &case.sql, |b, sql| {
            b.iter(|| black_box(subject.execute(black_box(sql)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
