//! Microbenchmark: plans/sec through the full static-analysis pipeline —
//! bind, the complete rewrite-rule registry with trace, per-operator cost
//! estimation, and plan linting. This is the overhead `EXPLAIN` adds on top
//! of parsing, and what every planning call pays once the optimizer is on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use llmsql_plan::{
    bind_select, cost_plan, lint_plan, optimize_traced, CostParams, OptimizerOptions,
};
use llmsql_sql::{parse_statement, Statement};
use llmsql_workload::{World, WorldSpec};

const QUERIES: [&str; 4] = [
    "SELECT name, population FROM countries WHERE population > 1000000 ORDER BY population DESC LIMIT 10",
    "SELECT c.region, COUNT(*), SUM(ci.population) FROM countries c JOIN cities ci ON ci.country = c.name GROUP BY c.region",
    "SELECT name FROM people WHERE profession IN ('scientist', 'writer') AND birth_year BETWEEN 1950 AND 1990",
    "SELECT m.title, p.name FROM movies m JOIN people p ON m.director = p.name WHERE m.rating > 7.5 AND m.title LIKE '%the%'",
];

fn bench_rule_pipeline(c: &mut Criterion) {
    let world = World::generate(WorldSpec::tiny()).unwrap();
    let catalog = world.catalog.clone();
    let bound: Vec<_> = QUERIES
        .iter()
        .map(|sql| {
            let Statement::Select(select) = parse_statement(sql).unwrap() else {
                unreachable!()
            };
            bind_select(&catalog, &select).unwrap()
        })
        .collect();
    c.bench_function("optimize_traced_pipeline", |b| {
        b.iter(|| {
            for plan in &bound {
                black_box(optimize_traced(
                    black_box(plan.clone()),
                    &OptimizerOptions::default(),
                ));
            }
        })
    });
}

fn bench_full_analysis(c: &mut Criterion) {
    let world = World::generate(WorldSpec::tiny()).unwrap();
    let catalog = world.catalog.clone();
    let params = CostParams::default();
    c.bench_function("explain_static_analysis", |b| {
        b.iter(|| {
            for sql in QUERIES {
                let Statement::Select(select) = parse_statement(sql).unwrap() else {
                    unreachable!()
                };
                let bound = bind_select(&catalog, &select).unwrap();
                let (plan, trace) = optimize_traced(bound, &OptimizerOptions::default());
                let cost = cost_plan(&plan, &params);
                let diags = lint_plan(&plan, &params, Some(0.01));
                black_box((plan, trace, cost, diags));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_rule_pipeline, bench_full_analysis
}
criterion_main!(benches);
