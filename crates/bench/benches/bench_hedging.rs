//! Tail-latency bench: p50/p99 per-query latency with and without hedged
//! requests against a pool with one 10×-slow outlier.
//!
//! Round-robin routing keeps feeding the outlier a third of the traffic —
//! the worst case hedging is designed to rescue: a request stuck on the
//! slow backend goes late at ~3× the fast members' EWMA and its hedge
//! finishes in a fast round trip, so the scan's tail is bounded by
//! `threshold + fast` instead of the outlier's full latency. Rows are
//! asserted identical either way: hedging may only move latency.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use llmsql_bench::slow_outlier_engine;
use llmsql_types::RoutingPolicy;

const ROWS: usize = 60;
const SCAN_SQL: &str = "SELECT name, population FROM countries";
const DISTRIBUTION_RUNS: usize = 30;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn bench_hedging(c: &mut Criterion) {
    let baseline = slow_outlier_engine(ROWS, 4, RoutingPolicy::RoundRobin, false)
        .execute(SCAN_SQL)
        .unwrap();

    let mut group = c.benchmark_group("slow_outlier_scan");
    group.sample_size(10);
    for (label, hedge) in [("unhedged", false), ("hedged", true)] {
        let engine = slow_outlier_engine(ROWS, 4, RoutingPolicy::RoundRobin, hedge);
        // Correctness gate before timing: hedging must not change rows.
        let probe = engine.execute(SCAN_SQL).unwrap();
        assert_eq!(probe.rows(), baseline.rows(), "{label} changed rows");

        // Distribution pass outside the criterion loop: per-query wall
        // latencies, reported as p50/p99.
        let mut latencies: Vec<f64> = (0..DISTRIBUTION_RUNS)
            .map(|_| {
                let start = Instant::now();
                black_box(engine.execute(SCAN_SQL).unwrap());
                start.elapsed().as_secs_f64() * 1000.0
            })
            .collect();
        latencies.sort_by(f64::total_cmp);
        let last = engine.execute(SCAN_SQL).unwrap().metrics;
        println!(
            "  {label}: p50 {:.1} ms, p99 {:.1} ms (last query: {} hedge(s) issued, {} won)",
            percentile(&latencies, 0.5),
            percentile(&latencies, 0.99),
            last.hedges_issued,
            last.hedges_won
        );

        group.bench_function(label, |b| {
            b.iter(|| black_box(engine.execute(SCAN_SQL).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hedging);
criterion_main!(benches);
