//! Scheduler throughput bench: queries/sec through one `QueryScheduler` at
//! 1, 4 and 16 concurrent clients, against an engine whose simulated model
//! adds a small per-call latency (so slot sharing, not CPU, is the contended
//! resource).
//!
//! Each iteration submits one query per client and waits for all of them —
//! the measured time divided by the client count is the per-query service
//! time under that concurrency. Rows are asserted identical to a direct
//! (unscheduled) run: scheduling must never change answers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use llmsql_bench::parallel_scan_engine;
use llmsql_sched::{QueryScheduler, QueryTicket};
use llmsql_types::{Priority, SchedConfig};

const ROWS: usize = 40;
const LATENCY_MS: f64 = 1.0;
const SCAN_SQL: &str = "SELECT name, population FROM countries";

fn bench_scheduler_throughput(c: &mut Criterion) {
    let expected = parallel_scan_engine(ROWS, 2, LATENCY_MS)
        .execute(SCAN_SQL)
        .unwrap();

    let mut group = c.benchmark_group("scheduler_queries_per_sec");
    group.sample_size(5);
    for clients in [1usize, 4, 16] {
        let sched = QueryScheduler::new(
            parallel_scan_engine(ROWS, 2, LATENCY_MS),
            SchedConfig::default()
                .with_workers(clients.min(8))
                .with_llm_slots(8)
                .with_max_queue_depth(64),
        )
        .unwrap();
        // Correctness gate before timing: scheduled rows == direct rows.
        let probe = sched
            .submit("probe", Priority::NORMAL, SCAN_SQL)
            .unwrap()
            .wait();
        assert_eq!(
            probe.result.unwrap().rows(),
            expected.rows(),
            "scheduling changed rows at {clients} clients"
        );

        group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let tickets: Vec<QueryTicket> = (0..clients)
                        .map(|i| {
                            sched
                                .submit(format!("tenant-{}", i % 3), Priority::NORMAL, SCAN_SQL)
                                .unwrap()
                        })
                        .collect();
                    for ticket in tickets {
                        black_box(ticket.wait());
                    }
                })
            },
        );
        let stats = sched.stats();
        assert!(stats.peak_slots_in_use <= 8);
        println!(
            "  {clients:>2} clients: peak slots {}, total slot-wait {:.1} ms",
            stats.peak_slots_in_use, stats.total_slot_wait_ms
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler_throughput);
criterion_main!(benches);
