//! E3 companion bench: wall-time of LLM-only scans as the requested result
//! cardinality (LIMIT k) grows, per prompting strategy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
use llmsql_workload::{World, WorldSpec};

fn bench_cardinality(c: &mut Criterion) {
    let world = World::generate(WorldSpec {
        countries: 200,
        cities_per_country: 2,
        people: 20,
        movies: 10,
        seed: 5,
    })
    .unwrap();

    let mut group = c.benchmark_group("scan_cardinality");
    group.sample_size(15);
    for &k in &[10usize, 50, 150] {
        let sql = format!("SELECT name, capital, population FROM countries LIMIT {k}");
        for strategy in [PromptStrategy::BatchedRows, PromptStrategy::TupleAtATime] {
            let subject = world
                .subject_engine(
                    EngineConfig::default()
                        .with_mode(ExecutionMode::LlmOnly)
                        .with_strategy(strategy)
                        .with_fidelity(LlmFidelity::strong()),
                )
                .unwrap();
            group.bench_with_input(BenchmarkId::new(strategy.label(), k), &sql, |b, sql| {
                b.iter(|| black_box(subject.execute(black_box(sql)).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cardinality);
criterion_main!(benches);
