//! Parallel-dispatch bench: wall-time of a 100-row batched LLM scan at
//! 1/4/8-way dispatch, plus prompt-cache contention under concurrent
//! readers.
//!
//! The simulator sleeps a few milliseconds per request (stand-in for the
//! network round trip of a real endpoint), so the win from overlapping
//! requests is visible in wall-clock time even on a single-core machine:
//! 4-way dispatch of the scan's 10 pages needs 4 slow-start waves
//! (1+2+4+3) instead of 10 sequential calls. The prompt cache is disabled
//! so every iteration pays the full call pattern; result rows and call
//! counts are identical at every parallelism level.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use llmsql_bench::parallel_scan_engine;
use llmsql_core::Engine;
use llmsql_llm::{CompletionResponse, PromptCache};

const SCAN_SQL: &str = "SELECT name, population FROM countries";
const LATENCY_MS: f64 = 2.0;

fn scan_engine(parallelism: usize) -> Engine {
    parallel_scan_engine(100, parallelism, LATENCY_MS)
}

fn bench_parallel_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scan_100_rows");
    group.sample_size(5);
    let baseline = {
        let engine = scan_engine(1);
        engine.execute(SCAN_SQL).unwrap()
    };
    for parallelism in [1usize, 4, 8] {
        let engine = scan_engine(parallelism);
        // Same rows and same call count at any fanout.
        let result = engine.execute(SCAN_SQL).unwrap();
        assert_eq!(result.rows(), baseline.rows());
        assert_eq!(result.usage.calls, baseline.usage.calls);
        group.bench_with_input(
            BenchmarkId::from_parameter(parallelism),
            &parallelism,
            |b, _| b.iter(|| black_box(engine.execute(black_box(SCAN_SQL)).unwrap())),
        );
    }
    group.finish();
}

fn bench_cache_contention(c: &mut Criterion) {
    let response = CompletionResponse {
        text: "cached".to_string(),
        prompt_tokens: 10,
        completion_tokens: 5,
        latency_ms: 1.0,
        cost_usd: 0.0001,
    };
    let keys: Vec<String> = (0..512).map(|i| format!("prompt-{i}")).collect();

    let mut group = c.benchmark_group("prompt_cache_8_threads");
    group.sample_size(10);
    for shards in [1usize, 16] {
        let cache = PromptCache::with_shards(shards);
        for key in &keys {
            cache.put(key.clone(), response.clone());
        }
        group.bench_with_input(BenchmarkId::new("shards", shards), &cache, |b, cache| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for t in 0..8 {
                        let keys = &keys;
                        scope.spawn(move || {
                            for key in keys.iter().skip(t % 7) {
                                black_box(cache.get(key));
                            }
                        });
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scan, bench_cache_contention);
criterion_main!(benches);
