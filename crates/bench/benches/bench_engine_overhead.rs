//! E8 (Figure): engine overhead — parse + plan + execute wall time in
//! Traditional vs LLM-only mode (simulated model, so model "latency" is not
//! wall time), scaling with base-table size.
//!
//! The shape the paper reports: traditional execution time grows with the
//! data, while LLM-only execution time is dominated by prompt construction /
//! completion parsing and grows with the number of rows the model returns.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
use llmsql_workload::{World, WorldSpec};

fn world_of_size(countries: usize) -> World {
    World::generate(WorldSpec {
        countries,
        cities_per_country: 2,
        people: 20,
        movies: 10,
        seed: 99,
    })
    .unwrap()
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_overhead");
    group.sample_size(20);
    for &size in &[100usize, 400, 1000] {
        let world = world_of_size(size);
        let oracle = world.oracle_engine();
        let subject = world
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_strategy(PromptStrategy::BatchedRows)
                    .with_fidelity(LlmFidelity::perfect())
                    .with_batch_size(50),
            )
            .unwrap();
        let sql = "SELECT name, population FROM countries WHERE population > 1000000";

        group.bench_with_input(BenchmarkId::new("traditional", size), &size, |b, _| {
            b.iter(|| black_box(oracle.execute(black_box(sql)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("llm_only", size), &size, |b, _| {
            b.iter(|| black_box(subject.execute(black_box(sql)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
