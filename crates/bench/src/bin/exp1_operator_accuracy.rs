//! E1 (Table 1): per-operator accuracy of LLM-only execution.
//!
//! For every operator class (projection, selection, range, join, aggregate,
//! top-k) the binary runs a suite of queries in LLM-only mode with the
//! default (strong-model) fidelity and reports precision / recall / F1 /
//! exact-answer rate against the relational oracle.

use llmsql_bench::{engines, experiment_world, QUERIES_PER_CLASS};
use llmsql_core::EvalOptions;
use llmsql_types::{LlmFidelity, PromptStrategy};
use llmsql_workload::{fmt_score, run_suite, standard_suite, Report};

fn main() {
    let world = experiment_world().expect("world generation");
    let (oracle, subject) =
        engines(&world, PromptStrategy::BatchedRows, LlmFidelity::strong()).expect("engines");
    let suite = standard_suite(&world, QUERIES_PER_CLASS);
    let outcome =
        run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).expect("suite execution");

    let mut report = Report::new(vec![
        "operator class",
        "queries",
        "precision",
        "recall",
        "F1",
        "exact",
        "llm calls/query",
    ])
    .with_title("E1 / Table 1 — per-operator accuracy (LLM-only, strong fidelity)");

    for (class, score) in outcome.by_class() {
        let calls: u64 = outcome
            .cases
            .iter()
            .filter(|c| c.case.class == class)
            .map(|c| c.llm_calls)
            .sum();
        let n = score.len().max(1);
        report.row(vec![
            class.label().to_string(),
            score.len().to_string(),
            fmt_score(score.precision()),
            fmt_score(score.recall()),
            fmt_score(score.f1()),
            fmt_score(score.exact_rate()),
            format!("{:.1}", calls as f64 / n as f64),
        ]);
    }
    let overall = outcome.overall();
    report.row(vec![
        "ALL".to_string(),
        overall.len().to_string(),
        fmt_score(overall.precision()),
        fmt_score(overall.recall()),
        fmt_score(overall.f1()),
        fmt_score(overall.exact_rate()),
        format!(
            "{:.1}",
            outcome.total_llm_calls() as f64 / outcome.cases.len().max(1) as f64
        ),
    ]);
    println!("{}", report.render());
}
