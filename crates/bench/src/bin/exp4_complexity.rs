//! E4 (Figure): model calls, tokens and accuracy vs query complexity.
//!
//! Runs join chains of increasing length (0–3 joins) and reports how the
//! number of model calls, tokens and the answer quality evolve. The paper's
//! corresponding figure shows cost growing and accuracy degrading with each
//! additional join.

use llmsql_bench::{engines, experiment_world};
use llmsql_core::EvalOptions;
use llmsql_types::{LlmFidelity, PromptStrategy};
use llmsql_workload::{fmt_f2, fmt_score, join_chain_suite, run_suite, Report};

fn main() {
    let world = experiment_world().expect("world generation");
    let suite = join_chain_suite(3);

    let mut report = Report::new(vec![
        "joins",
        "strategy",
        "precision",
        "recall",
        "F1",
        "llm calls",
        "tokens",
        "latency (ms)",
    ])
    .with_title("E4 / Figure — cost and accuracy vs number of joins (strong fidelity)");

    for strategy in [PromptStrategy::FullQuery, PromptStrategy::BatchedRows] {
        let (oracle, subject) = engines(&world, strategy, LlmFidelity::strong()).expect("engines");
        let outcome =
            run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).expect("suite execution");
        for (joins, case) in outcome.cases.iter().enumerate() {
            report.row(vec![
                joins.to_string(),
                strategy.label().to_string(),
                fmt_score(case.score.precision),
                fmt_score(case.score.recall),
                fmt_score(case.score.f1),
                case.llm_calls.to_string(),
                case.tokens.to_string(),
                fmt_f2(case.latency_ms),
            ]);
        }
    }
    println!("{}", report.render());
}
