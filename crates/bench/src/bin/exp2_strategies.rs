//! E2 (Table 2): prompting-strategy comparison.
//!
//! Runs the same mixed suite under each prompting strategy (full-query,
//! batched-rows, tuple-at-a-time, decomposed-operators) and reports accuracy,
//! model calls, token volume, simulated cost and latency.

use llmsql_bench::{engines, experiment_world, QUERIES_PER_CLASS};
use llmsql_core::EvalOptions;
use llmsql_types::{LlmFidelity, PromptStrategy};
use llmsql_workload::{fmt_f2, fmt_score, run_suite, standard_suite, Report};

fn main() {
    let world = experiment_world().expect("world generation");
    let suite = standard_suite(&world, QUERIES_PER_CLASS / 2);

    let mut report = Report::new(vec![
        "strategy",
        "precision",
        "recall",
        "F1",
        "llm calls",
        "tokens",
        "cost ($)",
        "mean latency (ms)",
    ])
    .with_title("E2 / Table 2 — prompting strategies (strong fidelity, mixed suite)");

    for strategy in PromptStrategy::ALL {
        let (oracle, subject) = engines(&world, strategy, LlmFidelity::strong()).expect("engines");
        let outcome =
            run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).expect("suite execution");
        let overall = outcome.overall();
        report.row(vec![
            strategy.label().to_string(),
            fmt_score(overall.precision()),
            fmt_score(overall.recall()),
            fmt_score(overall.f1()),
            outcome.total_llm_calls().to_string(),
            outcome.total_tokens().to_string(),
            fmt_f2(outcome.total_cost_usd()),
            fmt_f2(outcome.mean_latency_ms()),
        ]);
    }
    println!("{}", report.render());
}
