//! E7 (Table 3): token and dollar cost per query class and strategy.
//!
//! Complements E2 by breaking the cost of LLM-backed querying down by
//! operator class: how many prompts, how many tokens and how many (simulated)
//! dollars one query of each class costs under each prompting strategy.

use std::collections::BTreeMap;

use llmsql_bench::{engines, experiment_world, QUERIES_PER_CLASS};
use llmsql_core::EvalOptions;
use llmsql_types::{LlmFidelity, PromptStrategy};
use llmsql_workload::{fmt_score, run_suite, standard_suite, QueryClass, Report};

fn main() {
    let world = experiment_world().expect("world generation");
    let suite = standard_suite(&world, QUERIES_PER_CLASS / 2);

    let mut report = Report::new(vec![
        "operator class",
        "strategy",
        "calls/query",
        "tokens/query",
        "cost/query ($)",
        "F1",
    ])
    .with_title("E7 / Table 3 — per-class cost of LLM-backed querying (strong fidelity)");

    for strategy in [
        PromptStrategy::FullQuery,
        PromptStrategy::BatchedRows,
        PromptStrategy::TupleAtATime,
    ] {
        let (oracle, subject) = engines(&world, strategy, LlmFidelity::strong()).expect("engines");
        let outcome =
            run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).expect("suite execution");

        let mut per_class: BTreeMap<QueryClass, (u64, u64, f64, f64, usize)> = BTreeMap::new();
        for case in &outcome.cases {
            let entry = per_class
                .entry(case.case.class)
                .or_insert((0, 0, 0.0, 0.0, 0));
            entry.0 += case.llm_calls;
            entry.1 += case.tokens;
            entry.2 += case.cost_usd;
            entry.3 += case.score.f1;
            entry.4 += 1;
        }
        for (class, (calls, tokens, cost, f1, n)) in per_class {
            let n_f = n.max(1) as f64;
            report.row(vec![
                class.label().to_string(),
                strategy.label().to_string(),
                format!("{:.1}", calls as f64 / n_f),
                format!("{:.0}", tokens as f64 / n_f),
                format!("{:.4}", cost / n_f),
                fmt_score(f1 / n_f),
            ]);
        }
    }
    println!("{}", report.render());
}
