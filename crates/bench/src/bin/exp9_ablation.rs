//! E9 (Table 4): optimizer ablation.
//!
//! Turns the call-minimising optimizer rules (predicate pushdown into
//! prompts, projection pruning, the optimizer as a whole) off one at a time
//! and reports the effect on model calls, tokens and accuracy. The point of
//! the paper's corresponding table: classic relational optimizations
//! translate directly into fewer/cheaper model calls when the storage layer
//! is an LLM.

use llmsql_bench::{experiment_world, llm_config, QUERIES_PER_CLASS};
use llmsql_core::EvalOptions;
use llmsql_types::{EngineConfig, LlmFidelity, PromptStrategy};
use llmsql_workload::{fmt_f2, fmt_score, run_suite, standard_suite, Report};

fn main() {
    let world = experiment_world().expect("world generation");
    let suite = standard_suite(&world, QUERIES_PER_CLASS / 2);
    let oracle = world.oracle_engine();

    // The prompt cache is disabled for the rewrite-rule variants so that the
    // effect of each rule is measured in isolation: unfiltered, unpruned scan
    // prompts are identical across queries and would otherwise be served from
    // the cache, hiding their true cost. The last row adds the cache back on
    // top of all rules to show its own contribution.
    let mut base = llm_config(PromptStrategy::BatchedRows, LlmFidelity::strong());
    base.enable_prompt_cache = false;
    let variants: Vec<(&str, EngineConfig)> = vec![
        ("all rules on", base.clone()),
        ("no predicate pushdown", {
            let mut c = base.clone();
            c.enable_predicate_pushdown = false;
            c
        }),
        ("no projection pruning", {
            let mut c = base.clone();
            c.enable_projection_pruning = false;
            c
        }),
        ("optimizer off", {
            let mut c = base.clone();
            c.enable_optimizer = false;
            c.enable_predicate_pushdown = false;
            c.enable_projection_pruning = false;
            c
        }),
        ("all rules on + prompt cache", {
            let mut c = base.clone();
            c.enable_prompt_cache = true;
            c
        }),
    ];

    let mut report = Report::new(vec![
        "configuration",
        "llm calls",
        "tokens",
        "cost ($)",
        "F1",
    ])
    .with_title("E9 / Table 4 — optimizer ablation (batched-rows, strong fidelity)");

    for (label, config) in variants {
        let subject = world.subject_engine(config).expect("subject engine");
        let outcome =
            run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).expect("suite execution");
        let overall = outcome.overall();
        report.row(vec![
            label.to_string(),
            outcome.total_llm_calls().to_string(),
            outcome.total_tokens().to_string(),
            fmt_f2(outcome.total_cost_usd()),
            fmt_score(overall.f1()),
        ]);
    }
    println!("{}", report.render());
}
