//! E5 (Figure): end-to-end query accuracy vs model quality.
//!
//! Sweeps the simulator's fidelity from weak to perfect (the stand-in for
//! "small open model → frontier model" in the paper) and reports the overall
//! precision / recall / F1 of the mixed suite at each point.

use llmsql_bench::{engines, experiment_world, QUERIES_PER_CLASS};
use llmsql_core::EvalOptions;
use llmsql_types::{LlmFidelity, PromptStrategy};
use llmsql_workload::{fmt_score, run_suite, standard_suite, Report};

fn main() {
    let world = experiment_world().expect("world generation");
    let suite = standard_suite(&world, QUERIES_PER_CLASS / 2);

    let mut report = Report::new(vec![
        "quality q",
        "recall knob",
        "hallucination knob",
        "precision",
        "recall",
        "F1",
        "exact",
    ])
    .with_title("E5 / Figure — query accuracy vs model quality (batched-rows)");

    for step in 0..=5 {
        let q = step as f64 / 5.0;
        let fidelity = LlmFidelity::from_quality(q);
        let (oracle, subject) =
            engines(&world, PromptStrategy::BatchedRows, fidelity).expect("engines");
        let outcome =
            run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).expect("suite execution");
        let overall = outcome.overall();
        report.row(vec![
            format!("{q:.1}"),
            fmt_score(fidelity.recall),
            fmt_score(fidelity.hallucination),
            fmt_score(overall.precision()),
            fmt_score(overall.recall()),
            fmt_score(overall.f1()),
            fmt_score(overall.exact_rate()),
        ]);
    }
    println!("{}", report.render());
}
