//! E3 (Figure): recall vs requested result cardinality.
//!
//! Sweeps `LIMIT k` scans over the countries relation for each strategy and
//! reports recall (how many of the k requested rows were actually produced
//! correctly) and the number of model calls. In the paper the corresponding
//! figure shows recall dropping as more rows are requested per prompt.

use llmsql_bench::{engines, experiment_world};
use llmsql_core::EvalOptions;
use llmsql_types::{LlmFidelity, PromptStrategy};
use llmsql_workload::{cardinality_suite, fmt_score, run_suite, Report};

fn main() {
    let world = experiment_world().expect("world generation");
    let ks = [1usize, 5, 10, 20, 40, 80];
    let suite = cardinality_suite(&ks);

    let mut report = Report::new(vec![
        "limit k",
        "strategy",
        "precision",
        "recall",
        "F1",
        "llm calls",
    ])
    .with_title("E3 / Figure — accuracy vs result cardinality (strong fidelity)");

    for strategy in [
        PromptStrategy::FullQuery,
        PromptStrategy::BatchedRows,
        PromptStrategy::TupleAtATime,
    ] {
        let (oracle, subject) = engines(&world, strategy, LlmFidelity::strong()).expect("engines");
        let outcome =
            run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).expect("suite execution");
        for case in &outcome.cases {
            report.row(vec![
                case.case.id.trim_start_matches("limit-").to_string(),
                strategy.label().to_string(),
                fmt_score(case.score.precision),
                fmt_score(case.score.recall),
                fmt_score(case.score.f1),
                case.llm_calls.to_string(),
            ]);
        }
    }
    println!("{}", report.render());
}
