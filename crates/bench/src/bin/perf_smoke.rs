//! CI perf gate: a coarse (<60s) smoke benchmark of the throughput surfaces
//! the shared dispatch core owns — scan throughput, scheduler queries/sec,
//! cross-query dedup factor, batched-scan throughput and hedged tail
//! latency — written as `BENCH_<N>.json` at the repo root and compared
//! against the latest committed `BENCH_*.json`.
//!
//! The gate fails (exit 1) when either throughput metric regresses more
//! than [`REGRESSION_TOLERANCE`] against the most recent committed
//! baseline; with no prior baseline it just emits one. Latency metrics are
//! recorded for trend visibility but not gated (CI runner jitter makes
//! absolute-latency gates flappy; throughput over simulated latency is
//! stable because the work is timer-bound, not CPU-bound).
//!
//! Run with: `cargo run --release --bin perf_smoke`

use std::time::Instant;

use llmsql_bench::{batched_tuple_scan_engine, parallel_scan_engine, slow_outlier_engine};
use llmsql_sched::{QueryScheduler, QueryTicket};
use llmsql_types::{Priority, RoutingPolicy, SchedConfig};

/// The index this run writes: `BENCH_9.json` (PR 9 added the shared
/// reactor, cross-query coalescing and tuple batching to the gate).
const BENCH_INDEX: u32 = 9;

/// Fail CI when a throughput metric drops below this fraction of the
/// baseline (>25% regression).
const REGRESSION_TOLERANCE: f64 = 0.75;

/// Scan throughput: a 200-row batched scan (20 pages of 10) over a 5ms
/// simulated round trip at parallelism 16 — reactor-dispatched waves.
/// Returns rows/sec.
fn scan_throughput() -> f64 {
    // Warm once (build plan caches, fault in the world).
    parallel_scan_engine(200, 16, 5.0)
        .execute("SELECT name, population FROM countries")
        .expect("warmup scan");
    let engine = parallel_scan_engine(200, 16, 5.0);
    let started = Instant::now();
    const RUNS: usize = 5;
    let mut rows = 0usize;
    for _ in 0..RUNS {
        engine.client().expect("model attached").clear_cache();
        let result = engine
            .execute("SELECT name, population FROM countries")
            .expect("smoke scan");
        rows += result.row_count();
    }
    rows as f64 / started.elapsed().as_secs_f64()
}

/// Scheduler throughput: 40 queries over 3 tenants through 4 workers and 32
/// global slots, 2ms simulated round trips. Returns queries/sec.
fn scheduler_throughput() -> f64 {
    let sched = QueryScheduler::new(
        parallel_scan_engine(60, 8, 2.0),
        SchedConfig::default()
            .with_workers(4)
            .with_llm_slots(32)
            .paused(),
    )
    .expect("valid scheduler config");
    const QUERIES: usize = 40;
    let tickets: Vec<QueryTicket> = (0..QUERIES)
        .map(|i| {
            sched
                .submit(
                    format!("tenant-{}", i % 3),
                    Priority::NORMAL,
                    format!(
                        "SELECT name FROM countries WHERE population > {}",
                        100_000 + 37 * i
                    ),
                )
                .expect("within admission caps")
        })
        .collect();
    let started = Instant::now();
    sched.resume();
    for ticket in tickets {
        ticket.wait().result.expect("scheduled query succeeded");
    }
    QUERIES as f64 / started.elapsed().as_secs_f64()
}

/// Cross-query dedup: 8 identical queries released simultaneously on 8
/// workers, all sharing one reactor and coalescer. Every query is charged
/// its full logical call budget, but concurrent identical prompts collapse
/// into one physical request. Returns logical calls / physical calls — the
/// deployment-wide fan-in factor (≈ query count under perfect overlap, 1.0
/// with coalescing broken).
fn cross_query_dedup() -> f64 {
    let sched = QueryScheduler::new(
        parallel_scan_engine(64, 8, 4.0),
        SchedConfig::default()
            .with_workers(8)
            .with_llm_slots(64)
            .paused(),
    )
    .expect("valid scheduler config");
    const QUERIES: usize = 8;
    let tickets: Vec<QueryTicket> = (0..QUERIES)
        .map(|i| {
            sched
                .submit(
                    format!("tenant-{}", i % 2),
                    Priority::NORMAL,
                    "SELECT name, population FROM countries",
                )
                .expect("within admission caps")
        })
        .collect();
    sched.resume();
    let mut logical = 0u64;
    for ticket in tickets {
        let outcome = ticket.wait();
        outcome.result.expect("dedup query succeeded");
        logical += outcome.llm_calls;
    }
    let physical = sched
        .engine()
        .client()
        .expect("model attached")
        .usage()
        .calls;
    logical as f64 / physical.max(1) as f64
}

/// Batched-scan throughput: a 200-row tuple-at-a-time scan with 4 per-tuple
/// prompts packed per physical request over a 5ms simulated round trip at
/// parallelism 16. Returns rows/sec.
fn batched_scan_throughput() -> f64 {
    // Warm once (build plan caches, fault in the world).
    batched_tuple_scan_engine(200, 16, 4, 5.0)
        .expect("valid batched scan engine")
        .execute("SELECT name, population FROM countries")
        .expect("warmup batched scan");
    let engine = batched_tuple_scan_engine(200, 16, 4, 5.0).expect("valid batched scan engine");
    let started = Instant::now();
    const RUNS: usize = 5;
    let mut rows = 0usize;
    for _ in 0..RUNS {
        engine.client().expect("model attached").clear_cache();
        let result = engine
            .execute("SELECT name, population FROM countries")
            .expect("smoke batched scan");
        rows += result.row_count();
    }
    rows as f64 / started.elapsed().as_secs_f64()
}

/// Hedged tail latency: per-query wall times against the slow-outlier pool
/// (two fast backends, one 10×) with hedging on. Returns (p50_ms, p99_ms).
fn hedged_tail_latency() -> (f64, f64) {
    let engine = slow_outlier_engine(30, 4, RoutingPolicy::LatencyAware, true);
    let mut samples_ms: Vec<f64> = Vec::new();
    for i in 0..40 {
        engine.client().expect("model attached").clear_cache();
        let started = Instant::now();
        engine
            .execute(&format!(
                "SELECT name FROM countries WHERE population > {}",
                100_000 + 37 * i
            ))
            .expect("hedged query");
        samples_ms.push(started.elapsed().as_secs_f64() * 1000.0);
    }
    samples_ms.sort_by(f64::total_cmp);
    let pick = |q: f64| samples_ms[((samples_ms.len() - 1) as f64 * q) as usize];
    (pick(0.5), pick(0.99))
}

/// Extract `"key": <number>` from a flat JSON document (the files are our
/// own, written below — no nested objects, no string values with colons).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The committed baseline: the highest-indexed `BENCH_<k>.json` at the repo
/// root with `k <= BENCH_INDEX`. Read *before* this run writes its own
/// report, so once `BENCH_<BENCH_INDEX>.json` is committed the gate compares
/// each fresh run against the committed copy rather than against itself.
fn previous_baseline(root: &std::path::Path) -> Option<(u32, String)> {
    let mut best: Option<(u32, String)> = None;
    for entry in std::fs::read_dir(root).ok()? {
        let entry = entry.ok()?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(index) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        if index > BENCH_INDEX {
            continue;
        }
        if best.as_ref().is_none_or(|(b, _)| index > *b) {
            let doc = std::fs::read_to_string(entry.path()).ok()?;
            best = Some((index, doc));
        }
    }
    best
}

fn main() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels under the repo root")
        .to_path_buf();

    // Capture the committed baseline before writing this run's report —
    // otherwise a re-run of the current index would gate against itself.
    let committed_baseline = previous_baseline(&root);

    eprintln!("perf_smoke: scan throughput ...");
    let scan_rows_per_sec = scan_throughput();
    eprintln!("perf_smoke: scheduler throughput ...");
    let sched_queries_per_sec = scheduler_throughput();
    eprintln!("perf_smoke: cross-query dedup ...");
    let cross_query_dedup_factor = cross_query_dedup();
    eprintln!("perf_smoke: batched scan throughput ...");
    let batched_scan_rows_per_sec = batched_scan_throughput();
    eprintln!("perf_smoke: hedged tail latency ...");
    let (hedged_p50_ms, hedged_p99_ms) = hedged_tail_latency();

    let doc = format!(
        "{{\n  \"bench\": {BENCH_INDEX},\n  \"scan_rows_per_sec\": {scan_rows_per_sec:.1},\n  \
         \"sched_queries_per_sec\": {sched_queries_per_sec:.2},\n  \
         \"cross_query_dedup_factor\": {cross_query_dedup_factor:.2},\n  \
         \"batched_scan_rows_per_sec\": {batched_scan_rows_per_sec:.1},\n  \
         \"hedged_p50_ms\": {hedged_p50_ms:.2},\n  \"hedged_p99_ms\": {hedged_p99_ms:.2}\n}}\n"
    );
    let out = root.join(format!("BENCH_{BENCH_INDEX}.json"));
    std::fs::write(&out, &doc).expect("write bench report");
    println!("wrote {}:\n{doc}", out.display());

    let Some((prev_index, prev)) = committed_baseline else {
        println!("no previous BENCH_*.json baseline; emitted the first one");
        return;
    };
    let mut failed = false;
    for key in [
        "scan_rows_per_sec",
        "sched_queries_per_sec",
        "cross_query_dedup_factor",
        "batched_scan_rows_per_sec",
    ] {
        let Some(baseline) = json_number(&prev, key) else {
            println!("baseline BENCH_{prev_index}.json lacks {key}; skipping gate");
            continue;
        };
        let current = json_number(&doc, key).expect("just wrote it");
        let ratio = current / baseline;
        println!(
            "{key}: {current:.1} vs baseline {baseline:.1} (BENCH_{prev_index}) → {:.0}%",
            ratio * 100.0
        );
        if ratio < REGRESSION_TOLERANCE {
            eprintln!(
                "PERF GATE FAILED: {key} regressed {:.0}% (> {:.0}% allowed)",
                (1.0 - ratio) * 100.0,
                (1.0 - REGRESSION_TOLERANCE) * 100.0
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("perf gate passed");
}
