//! E6 (Figure): hybrid completion — accuracy vs fraction of missing values.
//!
//! Degrades the relational store by replacing a growing fraction of attribute
//! values with NULL, then answers the same suite three ways: traditional
//! execution over the degraded store, hybrid execution (missing values filled
//! from the model), and pure LLM-only execution. The paper's figure shows the
//! hybrid curve sitting between the two.

use llmsql_bench::{experiment_world, llm_config, QUERIES_PER_CLASS};
use llmsql_core::EvalOptions;
use llmsql_store::{degrade_catalog, DegradeSpec};
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};
use llmsql_workload::{fmt_score, run_suite, standard_suite, Report};

fn main() {
    let world = experiment_world().expect("world generation");
    let suite = standard_suite(&world, QUERIES_PER_CLASS / 3);
    let oracle = world.oracle_engine();

    let mut report = Report::new(vec![
        "missing values",
        "mode",
        "precision",
        "recall",
        "F1",
        "llm calls",
        "cells filled",
    ])
    .with_title("E6 / Figure — hybrid completion vs store degradation (strong fidelity)");

    for missing_pct in [0.0f64, 0.2, 0.4, 0.6, 0.8] {
        let (degraded, _) = degrade_catalog(
            &world.catalog,
            &DegradeSpec::nulls(missing_pct, 11 + (missing_pct * 100.0) as u64),
        )
        .expect("degradation");

        // Traditional over the degraded store (no model).
        let traditional = llmsql_core::Engine::with_catalog(
            degraded.clone(),
            EngineConfig::default().with_mode(ExecutionMode::Traditional),
        );
        // Hybrid: degraded store + model fills the gaps.
        let hybrid = world
            .subject_engine_with_catalog(
                degraded.clone(),
                EngineConfig::default()
                    .with_mode(ExecutionMode::Hybrid)
                    .with_fidelity(LlmFidelity::strong()),
            )
            .expect("hybrid engine");
        // Pure LLM-only (ignores the store entirely).
        let llm_only = world
            .subject_engine(llm_config(
                PromptStrategy::BatchedRows,
                LlmFidelity::strong(),
            ))
            .expect("llm engine");

        for (label, engine) in [
            ("traditional", &traditional),
            ("hybrid", &hybrid),
            ("llm-only", &llm_only),
        ] {
            let outcome = run_suite(&oracle, engine, &suite, &EvalOptions::exact()).expect("suite");
            let overall = outcome.overall();
            let filled: u64 = outcome.cases.iter().map(|c| c.cells_filled).sum();
            report.row(vec![
                format!("{:.0}%", missing_pct * 100.0),
                label.to_string(),
                fmt_score(overall.precision()),
                fmt_score(overall.recall()),
                fmt_score(overall.f1()),
                outcome.total_llm_calls().to_string(),
                filled.to_string(),
            ]);
        }
    }
    println!("{}", report.render());
}
