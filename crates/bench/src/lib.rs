//! Shared scaffolding for the experiment binaries (`src/bin/exp*.rs`) and the
//! Criterion benches (`benches/*.rs`).
//!
//! Every experiment uses the same synthetic world and the same construction
//! of oracle / subject engines so that numbers across experiments are
//! comparable. `EXPERIMENTS.md` documents which binary regenerates which
//! table or figure of the paper.

use llmsql_core::Engine;
use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy, Result};
use llmsql_workload::{World, WorldSpec};

/// The world spec used by the experiment binaries (moderate size so every
/// binary finishes in seconds).
pub fn experiment_world_spec() -> WorldSpec {
    WorldSpec {
        countries: 80,
        cities_per_country: 4,
        people: 150,
        movies: 100,
        seed: 2024,
    }
}

/// Generate the standard experiment world.
pub fn experiment_world() -> Result<World> {
    World::generate(experiment_world_spec())
}

/// The default subject configuration for LLM-only execution.
pub fn llm_config(strategy: PromptStrategy, fidelity: LlmFidelity) -> EngineConfig {
    EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(strategy)
        .with_fidelity(fidelity)
        .with_seed(2024)
}

/// Build oracle + subject engines in one call.
pub fn engines(
    world: &World,
    strategy: PromptStrategy,
    fidelity: LlmFidelity,
) -> Result<(Engine, Engine)> {
    let oracle = world.oracle_engine();
    let subject = world.subject_engine(llm_config(strategy, fidelity))?;
    Ok((oracle, subject))
}

/// Number of queries per operator class used in accuracy experiments.
pub const QUERIES_PER_CLASS: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_and_engines_build() {
        let world = World::generate(WorldSpec::tiny()).unwrap();
        let (oracle, subject) =
            engines(&world, PromptStrategy::BatchedRows, LlmFidelity::perfect()).unwrap();
        assert_eq!(
            oracle.execute("SELECT COUNT(*) FROM countries").unwrap().scalar(),
            Some(llmsql_types::Value::Int(WorldSpec::tiny().countries as i64))
        );
        assert!(subject.client().is_some());
    }
}
