#![forbid(unsafe_code)]
//! Shared scaffolding for the experiment binaries (`src/bin/exp*.rs`) and the
//! Criterion benches (`benches/*.rs`).
//!
//! Every experiment uses the same synthetic world and the same construction
//! of oracle / subject engines so that numbers across experiments are
//! comparable. `EXPERIMENTS.md` documents which binary regenerates which
//! table or figure of the paper.

use llmsql_core::Engine;
use llmsql_llm::{KnowledgeBase, SimLlm};
use llmsql_store::Catalog;
use llmsql_types::{
    BackendSpec, Column, DataType, EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy,
    Result, RoutingPolicy, Row, Schema, Value,
};
use llmsql_workload::{World, WorldSpec};

/// The world spec used by the experiment binaries (moderate size so every
/// binary finishes in seconds).
pub fn experiment_world_spec() -> WorldSpec {
    WorldSpec {
        countries: 80,
        cities_per_country: 4,
        people: 150,
        movies: 100,
        seed: 2024,
    }
}

/// Generate the standard experiment world.
pub fn experiment_world() -> Result<World> {
    World::generate(experiment_world_spec())
}

/// The default subject configuration for LLM-only execution.
pub fn llm_config(strategy: PromptStrategy, fidelity: LlmFidelity) -> EngineConfig {
    EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(strategy)
        .with_fidelity(fidelity)
        .with_seed(2024)
}

/// Build oracle + subject engines in one call.
pub fn engines(
    world: &World,
    strategy: PromptStrategy,
    fidelity: LlmFidelity,
) -> Result<(Engine, Engine)> {
    let oracle = world.oracle_engine();
    let subject = world.subject_engine(llm_config(strategy, fidelity))?;
    Ok((oracle, subject))
}

/// Number of queries per operator class used in accuracy experiments.
pub const QUERIES_PER_CLASS: usize = 12;

/// A minimal virtual-table world for parallel-dispatch benchmarks: a
/// `countries` relation of exactly `rows` synthetic entities, plus a
/// simulator over the matching knowledge base that sleeps `latency_ms` per
/// request (emulating endpoint round-trip time).
pub fn parallel_world(rows: usize, fidelity: LlmFidelity, latency_ms: f64) -> (Catalog, SimLlm) {
    let schema = Schema::virtual_table(
        "countries",
        vec![
            Column::new("name", DataType::Text).primary_key(),
            Column::new("region", DataType::Text),
            Column::new("population", DataType::Int),
        ],
    );
    const REGIONS: [&str; 5] = ["Europe", "Asia", "Africa", "Americas", "Oceania"];
    let data: Vec<Row> = (0..rows)
        .map(|i| {
            Row::new(vec![
                Value::Text(format!("Country {i:04}")),
                Value::Text(REGIONS[i % REGIONS.len()].to_string()),
                Value::Int(100_000 + 37_219 * i as i64),
            ])
        })
        .collect();
    let catalog = Catalog::new();
    catalog
        .create_virtual_table(schema.clone())
        .expect("fresh catalog");
    let mut kb = KnowledgeBase::new();
    kb.add_table(schema, data);
    let sim = SimLlm::new(kb.into_shared(), fidelity, 2024).with_simulated_latency_ms(latency_ms);
    (catalog, sim)
}

/// The standard parallel-dispatch scenario shared by the bench, the speedup
/// integration test and the `parallel_scan` example: a batched LLM-only scan
/// of a [`parallel_world`] relation in pages of 10, prompt cache off (every
/// run pays the full call pattern), with the given worker-pool width.
pub fn parallel_scan_engine(rows: usize, parallelism: usize, latency_ms: f64) -> Engine {
    let (catalog, sim) = parallel_world(rows, LlmFidelity::perfect(), latency_ms);
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::BatchedRows)
        .with_batch_size(10)
        .with_parallelism(parallelism);
    config.max_scan_rows = rows;
    config.enable_prompt_cache = false;
    let mut engine = Engine::with_catalog(catalog, config);
    engine
        .attach_model(std::sync::Arc::new(sim))
        .expect("no backends configured");
    engine
}

/// The tuple-batching scenario shared by the bench gate and the
/// shared-reactor tests: a tuple-at-a-time LLM-only scan of a
/// [`parallel_world`] relation where up to `batch_rows_per_call` per-tuple
/// prompts pack into one physical request
/// (`EngineConfig::batch_rows_per_call`), prompt cache off.
pub fn batched_tuple_scan_engine(
    rows: usize,
    parallelism: usize,
    batch_rows_per_call: usize,
    latency_ms: f64,
) -> Result<Engine> {
    let (catalog, sim) = parallel_world(rows, LlmFidelity::perfect(), latency_ms);
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::TupleAtATime)
        .with_parallelism(parallelism)
        .with_batch_rows_per_call(batch_rows_per_call);
    config.max_scan_rows = rows;
    config.enable_prompt_cache = false;
    let mut engine = Engine::with_catalog(catalog, config);
    engine.attach_model(std::sync::Arc::new(sim))?;
    Ok(engine)
}

/// The standard multi-backend scenario shared by the routing bench, the
/// failover integration tests and the `multi_backend` example: the
/// [`parallel_scan_engine`] workload served through the canonical
/// mixed-backend deployment ([`llmsql_workload::mixed_backend_config`]:
/// `edge-a` hard down when `one_failing`, `edge-b` vanilla, `edge-c` at
/// premium pricing).
pub fn multi_backend_engine(
    rows: usize,
    parallelism: usize,
    latency_ms: f64,
    policy: RoutingPolicy,
    one_failing: bool,
) -> Engine {
    let (catalog, sim) = parallel_world(rows, LlmFidelity::perfect(), latency_ms);
    let base = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::BatchedRows)
        .with_batch_size(10)
        .with_parallelism(parallelism)
        .with_routing_policy(policy);
    let mut config = llmsql_workload::mixed_backend_config(base, one_failing);
    config.max_scan_rows = rows;
    config.enable_prompt_cache = false;
    let mut engine = Engine::with_catalog(catalog, config);
    engine
        .attach_model(std::sync::Arc::new(sim))
        .expect("canonical backend specs are valid");
    engine
}

/// Simulated round trip of the fast members of the tail-latency scenario,
/// milliseconds.
pub const OUTLIER_FAST_MS: f64 = 3.0;
/// Simulated round trip of the slow outlier (10× the fast members).
pub const OUTLIER_SLOW_MS: f64 = 30.0;

/// The tail-latency scenario shared by the hedging bench, the acceptance
/// test and the `deadlines_and_hedging` example: the [`parallel_scan_engine`]
/// workload served through three backends, two fast and one with 10× their
/// latency (`edge-slow`, registered last so latency-aware cold-start
/// exploration reaches it only after the fast members have samples — at
/// which point the exploratory request is already hedge-protected). With
/// `hedge` true, requests late by 3× the pool's fastest EWMA are hedged.
pub fn slow_outlier_engine(
    rows: usize,
    parallelism: usize,
    policy: RoutingPolicy,
    hedge: bool,
) -> Engine {
    let (catalog, sim) = parallel_world(rows, LlmFidelity::perfect(), 0.0);
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::BatchedRows)
        .with_batch_size(10)
        .with_parallelism(parallelism)
        .with_routing_policy(policy)
        .with_backends(vec![
            BackendSpec::new("edge-fast-1").with_latency_ms(OUTLIER_FAST_MS),
            BackendSpec::new("edge-fast-2").with_latency_ms(OUTLIER_FAST_MS),
            BackendSpec::new("edge-slow").with_latency_ms(OUTLIER_SLOW_MS),
        ]);
    if hedge {
        config = config.with_hedging(3.0, 1.0);
    }
    config.backend_backoff_ms = 0.0;
    config.max_scan_rows = rows;
    config.enable_prompt_cache = false;
    let mut engine = Engine::with_catalog(catalog, config);
    engine
        .attach_model(std::sync::Arc::new(sim))
        .expect("outlier backend specs are valid");
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_and_engines_build() {
        let world = World::generate(WorldSpec::tiny()).unwrap();
        let (oracle, subject) =
            engines(&world, PromptStrategy::BatchedRows, LlmFidelity::perfect()).unwrap();
        assert_eq!(
            oracle
                .execute("SELECT COUNT(*) FROM countries")
                .unwrap()
                .scalar(),
            Some(llmsql_types::Value::Int(WorldSpec::tiny().countries as i64))
        );
        assert!(subject.client().is_some());
    }
}
