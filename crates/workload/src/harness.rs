//! The experiment harness: run a query suite against the oracle and a subject
//! engine, score every answer, and aggregate per class.

use std::collections::BTreeMap;

use llmsql_core::{score_batches, Engine, EvalOptions, ResultScore, SuiteScore};
use llmsql_llm::UsageStats;
use llmsql_types::Result;

use crate::queries::{QueryCase, QueryClass};

/// The outcome of running one query on the subject engine.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The query.
    pub case: QueryCase,
    /// Accuracy against the oracle.
    pub score: ResultScore,
    /// LLM prompts issued for this query.
    pub llm_calls: u64,
    /// NULL cells filled from the model (hybrid scans only).
    pub cells_filled: u64,
    /// Prompt + completion tokens for this query.
    pub tokens: u64,
    /// Simulated model cost in dollars.
    pub cost_usd: f64,
    /// Simulated model latency plus engine time, in milliseconds.
    pub latency_ms: f64,
}

/// The outcome of running a whole suite.
#[derive(Debug, Clone, Default)]
pub struct SuiteOutcome {
    /// Per-query outcomes, in execution order.
    pub cases: Vec<CaseOutcome>,
}

impl SuiteOutcome {
    /// Group the scores by query class.
    pub fn by_class(&self) -> BTreeMap<QueryClass, SuiteScore> {
        let mut map: BTreeMap<QueryClass, SuiteScore> = BTreeMap::new();
        for c in &self.cases {
            map.entry(c.case.class).or_default().push(c.score);
        }
        map
    }

    /// Overall macro-averaged score across all queries.
    pub fn overall(&self) -> SuiteScore {
        let mut s = SuiteScore::default();
        for c in &self.cases {
            s.push(c.score);
        }
        s
    }

    /// Total LLM calls across the suite.
    pub fn total_llm_calls(&self) -> u64 {
        self.cases.iter().map(|c| c.llm_calls).sum()
    }

    /// Total tokens across the suite.
    pub fn total_tokens(&self) -> u64 {
        self.cases.iter().map(|c| c.tokens).sum()
    }

    /// Total simulated cost in dollars.
    pub fn total_cost_usd(&self) -> f64 {
        self.cases.iter().map(|c| c.cost_usd).sum()
    }

    /// Mean end-to-end latency per query in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.cases.is_empty() {
            0.0
        } else {
            self.cases.iter().map(|c| c.latency_ms).sum::<f64>() / self.cases.len() as f64
        }
    }
}

/// Run every query on both engines and score the subject against the oracle.
///
/// Queries that fail on the subject engine score zero (the failure is the
/// system's fault); queries that fail on the *oracle* are skipped (they are
/// malformed for the ground truth and cannot be scored).
pub fn run_suite(
    oracle: &Engine,
    subject: &Engine,
    queries: &[QueryCase],
    options: &EvalOptions,
) -> Result<SuiteOutcome> {
    let mut outcome = SuiteOutcome::default();
    for case in queries {
        let Ok(expected) = oracle.execute(&case.sql) else {
            continue;
        };
        let case_options = if case.order_sensitive {
            EvalOptions {
                order_sensitive: true,
                ..*options
            }
        } else {
            *options
        };
        let (score, usage, llm_calls, cells_filled, latency) = match subject.execute(&case.sql) {
            Ok(actual) => {
                let score = score_batches(&actual.batch, &expected.batch, &case_options);
                (
                    score,
                    actual.usage.clone(),
                    actual.metrics.llm_calls(),
                    actual.metrics.cells_filled_by_llm,
                    actual.total_latency_ms(),
                )
            }
            Err(_) => (
                score_batches(&Default::default(), &expected.batch, &case_options),
                UsageStats::default(),
                0,
                0,
                0.0,
            ),
        };
        outcome.cases.push(CaseOutcome {
            case: case.clone(),
            score,
            llm_calls,
            cells_filled,
            tokens: usage.total_tokens(),
            cost_usd: usage.cost_usd,
            latency_ms: latency,
        });
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::standard_suite;
    use crate::world::{World, WorldSpec};
    use llmsql_types::{EngineConfig, ExecutionMode, LlmFidelity, PromptStrategy};

    fn world() -> World {
        World::generate(WorldSpec::tiny()).unwrap()
    }

    #[test]
    fn perfect_fidelity_scores_one() {
        let w = world();
        let oracle = w.oracle_engine();
        let subject = w
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_strategy(PromptStrategy::BatchedRows)
                    .with_fidelity(LlmFidelity::perfect()),
            )
            .unwrap();
        let suite = standard_suite(&w, 2);
        let outcome = run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).unwrap();
        assert_eq!(outcome.cases.len(), suite.len());
        let overall = outcome.overall();
        assert!(overall.f1() > 0.999, "f1 = {}", overall.f1());
        assert!(outcome.total_llm_calls() > 0);
        assert!(outcome.total_tokens() > 0);
        assert!(outcome.total_cost_usd() > 0.0);
        assert!(outcome.mean_latency_ms() > 0.0);
    }

    #[test]
    fn weak_fidelity_scores_lower_than_strong() {
        let w = world();
        let oracle = w.oracle_engine();
        let suite = standard_suite(&w, 2);
        let f1_of = |fidelity: LlmFidelity| {
            let subject = w
                .subject_engine(
                    EngineConfig::default()
                        .with_mode(ExecutionMode::LlmOnly)
                        .with_fidelity(fidelity),
                )
                .unwrap();
            run_suite(&oracle, &subject, &suite, &EvalOptions::exact())
                .unwrap()
                .overall()
                .f1()
        };
        let strong = f1_of(LlmFidelity::perfect());
        let weak = f1_of(LlmFidelity::weak());
        assert!(weak < strong, "weak {weak} vs strong {strong}");
    }

    #[test]
    fn mixed_backend_suite_matches_single_backend_suite() {
        // The full query suite over a mixed-health backend pool (one endpoint
        // hard down) must score and *answer* exactly like the single-backend
        // run: failover changes which endpoint serves each prompt, never the
        // completion — and the logical call accounting must agree too.
        let w = world();
        let oracle = w.oracle_engine();
        let base = || {
            EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_strategy(PromptStrategy::BatchedRows)
                .with_fidelity(LlmFidelity::medium())
                .with_parallelism(4)
        };
        let suite = standard_suite(&w, 2);
        let single = w.subject_engine(base()).unwrap();
        let pooled = w.subject_engine_multi_backend(base()).unwrap();
        let single_out = run_suite(&oracle, &single, &suite, &EvalOptions::exact()).unwrap();
        let pooled_out = run_suite(&oracle, &pooled, &suite, &EvalOptions::exact()).unwrap();
        for (a, b) in single_out.cases.iter().zip(&pooled_out.cases) {
            assert_eq!(a.case.sql, b.case.sql);
            assert_eq!(a.score, b.score, "score diverged on {}", a.case.sql);
            assert_eq!(a.llm_calls, b.llm_calls, "calls diverged on {}", a.case.sql);
        }
        assert_eq!(single_out.total_llm_calls(), pooled_out.total_llm_calls());
    }

    #[test]
    fn by_class_partitions_all_cases() {
        let w = world();
        let oracle = w.oracle_engine();
        let subject = w
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_fidelity(LlmFidelity::perfect()),
            )
            .unwrap();
        let suite = standard_suite(&w, 2);
        let outcome = run_suite(&oracle, &subject, &suite, &EvalOptions::exact()).unwrap();
        let by_class = outcome.by_class();
        let total: usize = by_class.values().map(|s| s.len()).sum();
        assert_eq!(total, outcome.cases.len());
        assert_eq!(by_class.len(), QueryClass::ALL.len());
    }
}
