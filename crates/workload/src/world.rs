//! Synthetic world-knowledge generation.
//!
//! The paper evaluates on factual relations a commercial LLM knows from
//! pre-training (countries, cities, people, movies). We cannot ship that
//! proprietary knowledge, so the workload generator builds a synthetic world
//! with the same relational shape — entities with textual keys, categorical
//! and numeric attributes, and foreign-key relationships with realistic
//! fan-out — and registers it both as the ground-truth relational store and
//! as the simulated model's knowledge base (see DESIGN.md, substitution
//! table).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use llmsql_core::Engine;
use llmsql_llm::KnowledgeBase;
use llmsql_store::Catalog;
use llmsql_types::{Column, DataType, EngineConfig, ExecutionMode, Result, Row, Schema, Value};

/// Size and seed of the generated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldSpec {
    /// Number of countries.
    pub countries: usize,
    /// Cities per country.
    pub cities_per_country: usize,
    /// Number of people.
    pub people: usize,
    /// Number of movies.
    pub movies: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorldSpec {
    fn default() -> Self {
        WorldSpec {
            countries: 60,
            cities_per_country: 4,
            people: 120,
            movies: 80,
            seed: 2024,
        }
    }
}

impl WorldSpec {
    /// A small world for unit tests.
    pub fn tiny() -> Self {
        WorldSpec {
            countries: 12,
            cities_per_country: 2,
            people: 20,
            movies: 15,
            seed: 7,
        }
    }

    /// Scale the entity counts by a factor (used for scaling experiments).
    pub fn scaled(mut self, factor: usize) -> Self {
        self.countries *= factor.max(1);
        self.people *= factor.max(1);
        self.movies *= factor.max(1);
        self
    }
}

/// The generated world: a materialized ground-truth catalog.
pub struct World {
    /// The ground-truth catalog (all tables materialized).
    pub catalog: Catalog,
    /// The spec it was generated from.
    pub spec: WorldSpec,
}

/// The regions countries are assigned to.
pub const REGIONS: [&str; 5] = ["Europe", "Asia", "Africa", "Americas", "Oceania"];
/// Professions used for people.
pub const PROFESSIONS: [&str; 6] = [
    "scientist",
    "writer",
    "politician",
    "athlete",
    "musician",
    "engineer",
];
/// Movie genres.
pub const GENRES: [&str; 5] = ["drama", "comedy", "documentary", "thriller", "animation"];

const SYLLABLES: [&str; 16] = [
    "al", "ber", "cor", "dan", "el", "fir", "gor", "han", "is", "jor", "kal", "lun", "mar", "nor",
    "os", "per",
];

fn proper_name(rng: &mut StdRng, syllables: usize, suffix: &str) -> String {
    let mut s = String::new();
    for _ in 0..syllables {
        s.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    let mut chars = s.chars();
    let first = chars.next().unwrap_or('X').to_ascii_uppercase();
    format!("{first}{}{suffix}", chars.as_str())
}

/// Make a generated name unique by appending a counter on collision.
fn unique(name: String, used: &mut std::collections::HashSet<String>) -> String {
    if used.insert(name.clone()) {
        return name;
    }
    let mut i = 2;
    loop {
        let candidate = format!("{name} {i}");
        if used.insert(candidate.clone()) {
            return candidate;
        }
        i += 1;
    }
}

impl World {
    /// Generate a world.
    pub fn generate(spec: WorldSpec) -> Result<World> {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let catalog = Catalog::new();

        // countries ---------------------------------------------------------
        let countries_schema = Schema::new(
            "countries",
            vec![
                Column::new("name", DataType::Text)
                    .primary_key()
                    .with_description("the short English name of the country"),
                Column::new("region", DataType::Text)
                    .with_description("the continent or world region"),
                Column::new("capital", DataType::Text).with_description("the capital city"),
                Column::new("population", DataType::Int).with_description("the total population"),
                Column::new("area_km2", DataType::Float)
                    .with_description("the land area in square kilometres"),
                Column::new("gdp_usd", DataType::Int)
                    .with_description("the gross domestic product in US dollars"),
            ],
        )
        .with_description("countries of the synthetic world atlas");
        let countries = catalog.create_table(countries_schema)?;

        let mut used_names = std::collections::HashSet::new();
        let mut country_names = Vec::with_capacity(spec.countries);
        let mut capitals = Vec::with_capacity(spec.countries);
        for _ in 0..spec.countries {
            let name = unique(proper_name(&mut rng, 2, "ia"), &mut used_names);
            let capital = unique(proper_name(&mut rng, 2, " City"), &mut used_names);
            let region = REGIONS[rng.gen_range(0..REGIONS.len())];
            let population = rng.gen_range(100_000i64..200_000_000);
            let area = rng.gen_range(1_000.0f64..2_000_000.0);
            let gdp = population * rng.gen_range(1_000i64..60_000);
            countries.insert(Row::new(vec![
                name.clone().into(),
                region.into(),
                capital.clone().into(),
                Value::Int(population),
                Value::Float((area * 10.0).round() / 10.0),
                Value::Int(gdp),
            ]))?;
            country_names.push(name);
            capitals.push(capital);
        }

        // cities ------------------------------------------------------------
        let cities_schema = Schema::new(
            "cities",
            vec![
                Column::new("name", DataType::Text)
                    .primary_key()
                    .with_description("the city name"),
                Column::new("country", DataType::Text)
                    .with_description("the country the city belongs to"),
                Column::new("population", DataType::Int).with_description("the city population"),
                Column::new("is_capital", DataType::Bool)
                    .with_description("whether the city is the national capital"),
            ],
        )
        .with_description("major cities of the synthetic world atlas");
        let cities = catalog.create_table(cities_schema)?;
        for (ci, country) in country_names.iter().enumerate() {
            for c in 0..spec.cities_per_country {
                let (name, is_capital) = if c == 0 {
                    (capitals[ci].clone(), true)
                } else {
                    (
                        unique(proper_name(&mut rng, 2, "ville"), &mut used_names),
                        false,
                    )
                };
                let population = rng.gen_range(20_000i64..15_000_000);
                cities.insert(Row::new(vec![
                    name.into(),
                    country.clone().into(),
                    Value::Int(population),
                    Value::Bool(is_capital),
                ]))?;
            }
        }

        // people --------------------------------------------------------------
        let people_schema = Schema::new(
            "people",
            vec![
                Column::new("name", DataType::Text)
                    .primary_key()
                    .with_description("the person's full name"),
                Column::new("birth_year", DataType::Int).with_description("the year of birth"),
                Column::new("nationality", DataType::Text)
                    .with_description("the country of citizenship"),
                Column::new("profession", DataType::Text).with_description("the main profession"),
            ],
        )
        .with_description("notable people of the synthetic world");
        let people = catalog.create_table(people_schema)?;
        let mut person_names = Vec::with_capacity(spec.people);
        for _ in 0..spec.people {
            let name = unique(
                format!(
                    "{} {}",
                    proper_name(&mut rng, 2, ""),
                    proper_name(&mut rng, 2, "son")
                ),
                &mut used_names,
            );
            let birth_year = rng.gen_range(1920i64..2005);
            let nationality = country_names[rng.gen_range(0..country_names.len())].clone();
            let profession = PROFESSIONS[rng.gen_range(0..PROFESSIONS.len())];
            people.insert(Row::new(vec![
                name.clone().into(),
                Value::Int(birth_year),
                nationality.into(),
                profession.into(),
            ]))?;
            person_names.push(name);
        }

        // movies --------------------------------------------------------------
        let movies_schema = Schema::new(
            "movies",
            vec![
                Column::new("title", DataType::Text)
                    .primary_key()
                    .with_description("the movie title"),
                Column::new("year", DataType::Int).with_description("the release year"),
                Column::new("director", DataType::Text)
                    .with_description("the director's full name"),
                Column::new("genre", DataType::Text).with_description("the primary genre"),
                Column::new("rating", DataType::Float)
                    .with_description("the average critic rating from 0 to 10"),
                Column::new("country", DataType::Text)
                    .with_description("the country of production"),
            ],
        )
        .with_description("feature films of the synthetic world");
        let movies = catalog.create_table(movies_schema)?;
        for _ in 0..spec.movies {
            let title = unique(
                format!(
                    "The {} of {}",
                    proper_name(&mut rng, 2, ""),
                    proper_name(&mut rng, 2, "a")
                ),
                &mut used_names,
            );
            let year = rng.gen_range(1960i64..2024);
            let director = person_names[rng.gen_range(0..person_names.len())].clone();
            let genre = GENRES[rng.gen_range(0..GENRES.len())];
            let rating = (rng.gen_range(10.0f64..100.0) / 10.0 * 10.0).round() / 10.0;
            let country = country_names[rng.gen_range(0..country_names.len())].clone();
            movies.insert(Row::new(vec![
                title.into(),
                Value::Int(year),
                director.into(),
                genre.into(),
                Value::Float(rating),
                country.into(),
            ]))?;
        }

        Ok(World { catalog, spec })
    }

    /// Build the knowledge base mirroring this world (what the simulated
    /// model "knows").
    pub fn knowledge(&self) -> Result<Arc<KnowledgeBase>> {
        Ok(Arc::new(Engine::knowledge_from_catalog(&self.catalog)?))
    }

    /// An oracle engine: traditional execution over the ground truth.
    pub fn oracle_engine(&self) -> Engine {
        Engine::with_catalog(
            self.catalog.clone(),
            EngineConfig::default().with_mode(ExecutionMode::Traditional),
        )
    }

    /// A subject engine with the given configuration and the simulated model
    /// attached. The subject gets its own deep copy of the catalog so that
    /// hybrid experiments can degrade it without touching the oracle.
    pub fn subject_engine(&self, config: EngineConfig) -> Result<Engine> {
        let mut engine = Engine::with_catalog(self.catalog.deep_clone()?, config);
        engine.attach_simulator(self.knowledge()?)?;
        Ok(engine)
    }

    /// A subject engine whose model is served through a mixed-health backend
    /// pool (see [`mixed_backend_config`]): the standard multi-backend
    /// scenario for suite-level experiments. Scores must match the plain
    /// [`World::subject_engine`] exactly — failover changes which endpoint
    /// answers, never what it answers.
    pub fn subject_engine_multi_backend(&self, config: EngineConfig) -> Result<Engine> {
        self.subject_engine(mixed_backend_config(config, true))
    }

    /// A subject engine over an explicitly provided (e.g. degraded) catalog.
    pub fn subject_engine_with_catalog(
        &self,
        catalog: Catalog,
        config: EngineConfig,
    ) -> Result<Engine> {
        let mut engine = Engine::with_catalog(catalog, config);
        engine.attach_simulator(self.knowledge()?)?;
        Ok(engine)
    }

    /// Names of the generated countries (handy for building point queries).
    pub fn country_names(&self) -> Vec<String> {
        self.catalog
            .table("countries")
            .map(|t| {
                t.scan()
                    .iter()
                    .map(|r| r.get(0).to_display_string())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The median population of the generated countries (used to build
    /// selective range predicates with non-empty answers).
    pub fn median_population(&self) -> i64 {
        let mut pops: Vec<i64> = self
            .catalog
            .table("countries")
            .map(|t| t.scan().iter().filter_map(|r| r.get(3).as_int()).collect())
            .unwrap_or_default();
        pops.sort_unstable();
        pops.get(pops.len() / 2).copied().unwrap_or(0)
    }
}

/// Layer the standard mixed-backend deployment onto a configuration — the
/// canonical scenario shared by the suite tests, the routing bench and the
/// `multi_backend` example: three deterministic remote-like endpoints,
/// `edge-a` (hard down when `one_failing`, exercising failover on every
/// request routed to it), `edge-b` (vanilla) and `edge-c` (premium pricing,
/// so cost-aware routing is observable) — with backoff disabled to keep
/// suites fast.
pub fn mixed_backend_config(base: EngineConfig, one_failing: bool) -> EngineConfig {
    let premium = llmsql_types::LlmCostModel {
        usd_per_1k_prompt_tokens: 0.006,
        usd_per_1k_completion_tokens: 0.012,
        ..llmsql_types::LlmCostModel::default()
    };
    let mut first = llmsql_types::BackendSpec::new("edge-a");
    if one_failing {
        first = first.failing();
    }
    let mut config = base.with_backends(vec![
        first,
        llmsql_types::BackendSpec::new("edge-b"),
        llmsql_types::BackendSpec::new("edge-c").with_cost_model(premium),
    ]);
    config.backend_backoff_ms = 0.0;
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let w1 = World::generate(WorldSpec::tiny()).unwrap();
        let w2 = World::generate(WorldSpec::tiny()).unwrap();
        assert_eq!(
            w1.catalog.table("countries").unwrap().scan(),
            w2.catalog.table("countries").unwrap().scan()
        );
        assert_eq!(w1.country_names(), w2.country_names());
    }

    #[test]
    fn sizes_match_spec() {
        let spec = WorldSpec::tiny();
        let w = World::generate(spec).unwrap();
        assert_eq!(
            w.catalog.table("countries").unwrap().row_count(),
            spec.countries
        );
        assert_eq!(
            w.catalog.table("cities").unwrap().row_count(),
            spec.countries * spec.cities_per_country
        );
        assert_eq!(w.catalog.table("people").unwrap().row_count(), spec.people);
        assert_eq!(w.catalog.table("movies").unwrap().row_count(), spec.movies);
    }

    #[test]
    fn referential_integrity() {
        let w = World::generate(WorldSpec::tiny()).unwrap();
        let countries: std::collections::HashSet<String> = w.country_names().into_iter().collect();
        for city in w.catalog.table("cities").unwrap().scan() {
            assert!(countries.contains(&city.get(1).to_display_string()));
        }
        for person in w.catalog.table("people").unwrap().scan() {
            assert!(countries.contains(&person.get(2).to_display_string()));
        }
    }

    #[test]
    fn capitals_are_cities() {
        let w = World::generate(WorldSpec::tiny()).unwrap();
        let capital_cities: Vec<String> = w
            .catalog
            .table("cities")
            .unwrap()
            .scan()
            .iter()
            .filter(|r| r.get(3) == &Value::Bool(true))
            .map(|r| r.get(0).to_display_string())
            .collect();
        assert_eq!(capital_cities.len(), WorldSpec::tiny().countries);
    }

    #[test]
    fn oracle_and_subject_agree_under_perfect_fidelity() {
        let w = World::generate(WorldSpec::tiny()).unwrap();
        let oracle = w.oracle_engine();
        let subject = w
            .subject_engine(
                EngineConfig::default()
                    .with_mode(ExecutionMode::LlmOnly)
                    .with_fidelity(llmsql_types::LlmFidelity::perfect()),
            )
            .unwrap();
        let sql = "SELECT region, COUNT(*) FROM countries GROUP BY region";
        let e = oracle.execute(sql).unwrap();
        let a = subject.execute(sql).unwrap();
        let score =
            llmsql_core::score_batches(&a.batch, &e.batch, &llmsql_core::EvalOptions::exact());
        assert!(score.exact, "{score:?}");
    }

    #[test]
    fn median_population_is_plausible() {
        let w = World::generate(WorldSpec::tiny()).unwrap();
        let m = w.median_population();
        assert!(m > 100_000 && m < 200_000_000);
    }

    #[test]
    fn scaled_spec_multiplies() {
        let s = WorldSpec::tiny().scaled(3);
        assert_eq!(s.countries, 36);
        assert_eq!(s.people, 60);
    }
}
