//! Benchmark query suites, organised by operator class.
//!
//! Each experiment asks for a set of queries exercising one relational
//! operator (the paper's Table 1 breaks accuracy down exactly this way).
//! Queries are generated deterministically from the world itself, so
//! predicates are guaranteed to select non-empty answers of controlled size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::world::{World, GENRES, PROFESSIONS, REGIONS};

/// The operator class a query exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum QueryClass {
    /// Plain projection over one relation.
    Projection,
    /// Equality selection.
    Selection,
    /// Numeric range selection.
    Range,
    /// Two-relation equi-join.
    Join,
    /// Grouped aggregation.
    Aggregate,
    /// ORDER BY ... LIMIT k.
    TopK,
}

impl QueryClass {
    /// All classes in presentation order.
    pub const ALL: [QueryClass; 6] = [
        QueryClass::Projection,
        QueryClass::Selection,
        QueryClass::Range,
        QueryClass::Join,
        QueryClass::Aggregate,
        QueryClass::TopK,
    ];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            QueryClass::Projection => "projection",
            QueryClass::Selection => "selection",
            QueryClass::Range => "range",
            QueryClass::Join => "join",
            QueryClass::Aggregate => "aggregate",
            QueryClass::TopK => "top-k",
        }
    }
}

/// One benchmark query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryCase {
    /// Stable identifier, e.g. `selection-03`.
    pub id: String,
    /// The operator class.
    pub class: QueryClass,
    /// The SQL text.
    pub sql: String,
    /// Whether row order is part of the expected answer.
    pub order_sensitive: bool,
}

/// Generate `per_class` queries for every operator class.
pub fn standard_suite(world: &World, per_class: usize) -> Vec<QueryCase> {
    QueryClass::ALL
        .iter()
        .flat_map(|&class| class_suite(world, class, per_class))
        .collect()
}

/// Generate `count` queries of a single class.
pub fn class_suite(world: &World, class: QueryClass, count: usize) -> Vec<QueryCase> {
    let mut rng = StdRng::seed_from_u64(world.spec.seed ^ ((class as u64 + 1) * 0x9E37));
    let countries = world.country_names();
    let median_pop = world.median_population();
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let sql = match class {
            QueryClass::Projection => {
                let variants = [
                    "SELECT name, capital FROM countries",
                    "SELECT name, region, population FROM countries",
                    "SELECT name, country FROM cities",
                    "SELECT name, profession FROM people",
                    "SELECT title, year FROM movies",
                ];
                variants[i % variants.len()].to_string()
            }
            QueryClass::Selection => {
                match i % 4 {
                    0 => {
                        let region = REGIONS[rng.gen_range(0..REGIONS.len())];
                        format!("SELECT name, population FROM countries WHERE region = '{region}'")
                    }
                    1 => {
                        let profession = PROFESSIONS[rng.gen_range(0..PROFESSIONS.len())];
                        format!(
                            "SELECT name, nationality FROM people WHERE profession = '{profession}'"
                        )
                    }
                    2 => {
                        let genre = GENRES[rng.gen_range(0..GENRES.len())];
                        format!("SELECT title, rating FROM movies WHERE genre = '{genre}'")
                    }
                    _ => {
                        let country = &countries[rng.gen_range(0..countries.len())];
                        format!("SELECT capital, population FROM countries WHERE name = '{country}'")
                    }
                }
            }
            QueryClass::Range => {
                match i % 3 {
                    0 => {
                        let threshold = median_pop + rng.gen_range(-(median_pop / 4)..median_pop / 4);
                        format!(
                            "SELECT name, population FROM countries WHERE population > {threshold}"
                        )
                    }
                    1 => {
                        let year = rng.gen_range(1950i64..1995);
                        format!(
                            "SELECT name, birth_year FROM people WHERE birth_year BETWEEN {year} AND {}",
                            year + 20
                        )
                    }
                    _ => {
                        let rating = rng.gen_range(3.0f64..7.0);
                        format!("SELECT title, rating FROM movies WHERE rating >= {rating:.1}")
                    }
                }
            }
            QueryClass::Join => {
                match i % 3 {
                    0 => {
                        let region = REGIONS[rng.gen_range(0..REGIONS.len())];
                        format!(
                            "SELECT ci.name, c.name FROM cities ci JOIN countries c ON ci.country = c.name \
                             WHERE c.region = '{region}'"
                        )
                    }
                    1 => format!(
                        "SELECT p.name, c.region FROM people p JOIN countries c ON p.nationality = c.name \
                         WHERE p.profession = '{}'",
                        PROFESSIONS[rng.gen_range(0..PROFESSIONS.len())]
                    ),
                    _ => format!(
                        "SELECT m.title, c.region FROM movies m JOIN countries c ON m.country = c.name \
                         WHERE m.rating > {:.1}",
                        rng.gen_range(4.0f64..6.0)
                    ),
                }
            }
            QueryClass::Aggregate => {
                match i % 4 {
                    0 => "SELECT region, COUNT(*) FROM countries GROUP BY region".to_string(),
                    1 => "SELECT region, SUM(population) FROM countries GROUP BY region".to_string(),
                    2 => "SELECT profession, COUNT(*) FROM people GROUP BY profession".to_string(),
                    _ => format!(
                        "SELECT genre, AVG(rating) FROM movies WHERE year > {} GROUP BY genre",
                        rng.gen_range(1970i64..2000)
                    ),
                }
            }
            QueryClass::TopK => {
                let k = rng.gen_range(3usize..10);
                match i % 3 {
                    0 => format!(
                        "SELECT name, population FROM countries ORDER BY population DESC LIMIT {k}"
                    ),
                    1 => format!("SELECT name, population FROM cities ORDER BY population DESC LIMIT {k}"),
                    _ => format!("SELECT title, rating FROM movies ORDER BY rating DESC LIMIT {k}"),
                }
            }
        };
        out.push(QueryCase {
            id: format!("{}-{:02}", class.label(), i),
            class,
            sql,
            order_sensitive: matches!(class, QueryClass::TopK),
        });
    }
    out
}

/// Join-chain queries of increasing complexity (0..=max_joins joins) for the
/// query-complexity experiment (E4).
pub fn join_chain_suite(max_joins: usize) -> Vec<QueryCase> {
    let mut out = Vec::new();
    for joins in 0..=max_joins {
        let sql = match joins {
            0 => "SELECT name, population FROM countries".to_string(),
            1 => "SELECT ci.name, c.region FROM cities ci JOIN countries c ON ci.country = c.name"
                .to_string(),
            2 => "SELECT p.name, ci.name FROM people p \
                  JOIN countries c ON p.nationality = c.name \
                  JOIN cities ci ON ci.country = c.name"
                .to_string(),
            _ => "SELECT m.title, p.name, ci.name FROM movies m \
                  JOIN people p ON m.director = p.name \
                  JOIN countries c ON p.nationality = c.name \
                  JOIN cities ci ON ci.country = c.name"
                .to_string(),
        };
        out.push(QueryCase {
            id: format!("join-chain-{joins}"),
            class: QueryClass::Join,
            sql,
            order_sensitive: false,
        });
    }
    out
}

/// A multi-tenant workload for cross-query scheduler scenarios: three
/// tenants with recognisably different traffic shapes —
///
/// * `interactive` — short equality selections (latency-sensitive),
/// * `analytics` — grouped aggregates (mid-weight),
/// * `bulk` — full projections (throughput traffic that would starve the
///   others without admission control).
///
/// Returns `(tenant, query)` pairs, `per_tenant` queries each, generated
/// deterministically from the world like every other suite.
pub fn multi_tenant_suite(world: &World, per_tenant: usize) -> Vec<(String, QueryCase)> {
    let tenants = [
        ("interactive", QueryClass::Selection),
        ("analytics", QueryClass::Aggregate),
        ("bulk", QueryClass::Projection),
    ];
    tenants
        .iter()
        .flat_map(|&(tenant, class)| {
            class_suite(world, class, per_tenant)
                .into_iter()
                .map(move |case| (tenant.to_string(), case))
        })
        .collect()
}

/// Cardinality-sweep queries: `LIMIT k` scans used by E3.
pub fn cardinality_suite(ks: &[usize]) -> Vec<QueryCase> {
    ks.iter()
        .map(|&k| QueryCase {
            id: format!("limit-{k}"),
            class: QueryClass::Projection,
            sql: format!("SELECT name, capital, population FROM countries LIMIT {k}"),
            order_sensitive: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldSpec;

    fn world() -> World {
        World::generate(WorldSpec::tiny()).unwrap()
    }

    #[test]
    fn suites_have_requested_sizes() {
        let w = world();
        let suite = standard_suite(&w, 5);
        assert_eq!(suite.len(), 5 * QueryClass::ALL.len());
        for class in QueryClass::ALL {
            assert_eq!(suite.iter().filter(|q| q.class == class).count(), 5);
        }
        assert_eq!(join_chain_suite(3).len(), 4);
        assert_eq!(cardinality_suite(&[1, 10, 100]).len(), 3);
        let tenants = multi_tenant_suite(&w, 3);
        assert_eq!(tenants.len(), 9);
        for tenant in ["interactive", "analytics", "bulk"] {
            assert_eq!(tenants.iter().filter(|(t, _)| t == tenant).count(), 3);
        }
    }

    #[test]
    fn all_queries_parse_and_execute_on_oracle() {
        let w = world();
        let oracle = w.oracle_engine();
        for q in standard_suite(&w, 4)
            .into_iter()
            .chain(join_chain_suite(3))
            .chain(cardinality_suite(&[5, 20]))
            .chain(multi_tenant_suite(&w, 2).into_iter().map(|(_, q)| q))
        {
            let result = oracle.execute(&q.sql);
            assert!(
                result.is_ok(),
                "query {} failed: {:?}\n{}",
                q.id,
                result.err(),
                q.sql
            );
        }
    }

    #[test]
    fn selection_and_range_queries_are_nonempty_on_oracle() {
        let w = world();
        let oracle = w.oracle_engine();
        let mut nonempty = 0;
        let mut total = 0;
        for q in class_suite(&w, QueryClass::Selection, 6)
            .into_iter()
            .chain(class_suite(&w, QueryClass::Range, 6))
        {
            total += 1;
            if oracle.execute(&q.sql).unwrap().row_count() > 0 {
                nonempty += 1;
            }
        }
        // Most generated predicates must select something, otherwise accuracy
        // metrics degenerate.
        assert!(nonempty * 2 > total, "{nonempty}/{total} non-empty");
    }

    #[test]
    fn generation_is_deterministic() {
        let w = world();
        let a = standard_suite(&w, 3);
        let b = standard_suite(&w, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn ids_are_unique() {
        let w = world();
        let suite = standard_suite(&w, 4);
        let mut ids: Vec<&str> = suite.iter().map(|q| q.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), suite.len());
    }

    #[test]
    fn topk_queries_are_order_sensitive() {
        let w = world();
        for q in class_suite(&w, QueryClass::TopK, 3) {
            assert!(q.order_sensitive);
        }
        for q in class_suite(&w, QueryClass::Join, 3) {
            assert!(!q.order_sensitive);
        }
    }
}
