//! Plain-text table rendering for the experiment binaries.

use std::fmt::Display;

/// A simple fixed-width text table (the experiment binaries print these so
/// their output can be compared line-by-line with the paper's tables).
#[derive(Debug, Clone, Default)]
pub struct Report {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Report {
    /// Create a report with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Report {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Set a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append a row of displayable cells.
    pub fn row<D: Display>(&mut self, cells: Vec<D>) -> &mut Self {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the report has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < cols && cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(&format!("== {t} ==\n"));
        }
        out.push_str(&sep);
        out.push('|');
        for (h, w) in self.headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:w$} |"));
        }
        out.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push('|');
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!(" {cell:w$} |"));
            }
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

/// Format a float as a fixed 3-decimal string (scores).
pub fn fmt_score(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float as a 2-decimal string (costs, latencies).
pub fn fmt_f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new(vec!["class", "precision", "recall"]).with_title("Table 1");
        r.row(vec![
            "selection".to_string(),
            fmt_score(0.91),
            fmt_score(0.8),
        ]);
        r.row(vec!["join".to_string(), fmt_score(0.755), fmt_score(0.61)]);
        let text = r.render();
        assert!(text.contains("== Table 1 =="));
        assert!(text.contains("| selection |"));
        assert!(text.contains("0.910"));
        assert!(text.contains("0.755"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        // every data line has the same width
        let widths: Vec<usize> = text.lines().skip(1).map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_score(0.5), "0.500");
        assert_eq!(fmt_f2(1.234), "1.23");
    }
}
