//! The `chaos_suite` scenario: one seeded fault schedule driven through a
//! four-backend scan, plus the robustness invariants the run must uphold.
//!
//! The scenario is the acceptance harness for the fault-robustness layer:
//! a 200-row `countries` scan at parallelism 8 over four simulated
//! endpoints, with a single [`ChaosPlan`] scheduling a hard-down outage, a
//! 20× latency storm and an error burst. Three invariants are checked by
//! [`ChaosSuiteOutcome::verify`]:
//!
//! 1. **Faults never change answers.** The rows produced under chaos (with
//!    breakers, hedging and failover absorbing the faults) are byte-identical
//!    to the no-chaos run.
//! 2. **Retry spend is bounded.** Total physical attempts never exceed
//!    `logical calls × backends × (1 + retries)` plus the hedges issued.
//! 3. **Chaos is deterministic.** With interleaving-independent routing
//!    ([`RoutingPolicy::PromptHash`], breakers and hedging off), the same
//!    seed reproduces identical per-backend counters run over run.

use llmsql_core::Engine;
use llmsql_llm::BackendStats;
use llmsql_types::{
    BackendSpec, Batch, ChaosFault, ChaosPlan, EngineConfig, Error, ExecutionMode, LlmFidelity,
    PromptStrategy, Result, RoutingPolicy,
};

use crate::world::{World, WorldSpec};

/// The four endpoints of the chaos deployment.
pub const CHAOS_BACKENDS: [&str; 4] = ["edge-a", "edge-b", "edge-c", "edge-d"];

/// Rows in the scanned `countries` relation.
pub const CHAOS_ROWS: usize = 200;

/// The scan the scenario drives.
pub const CHAOS_SQL: &str = "SELECT name, population FROM countries";

/// The world spec backing the scenario: 200 countries, everything else tiny.
pub fn chaos_world_spec(seed: u64) -> WorldSpec {
    WorldSpec {
        countries: CHAOS_ROWS,
        cities_per_country: 1,
        people: 10,
        movies: 10,
        seed,
    }
}

/// The canonical fault schedule: one hard-down window on `edge-a`, one 20×
/// latency storm on `edge-b` and one error burst on `edge-c`, all from a
/// single seeded plan over a 10-second virtual horizon. `edge-d` stays
/// healthy throughout, so failover always has somewhere to land.
pub fn chaos_plan(seed: u64) -> ChaosPlan {
    ChaosPlan::new(seed, 10_000)
        .with_window("edge-a", ChaosFault::Outage, 0, 5_000)
        .with_window(
            "edge-b",
            ChaosFault::LatencyStorm { factor: 20.0 },
            2_000,
            8_000,
        )
        .with_window(
            "edge-c",
            ChaosFault::ErrorBurst { error_rate: 0.4 },
            1_000,
            9_000,
        )
}

/// Build the scenario engine over `world`: four ~1–3ms backends, LLM-only
/// batched scan at parallelism 8, prompt-hash routing (deterministic and
/// interleaving-independent). `resilient` adds the absorption machinery —
/// circuit breakers and hedged requests; `chaos` attaches the fault plan.
pub fn chaos_engine(
    world: &World,
    seed: u64,
    chaos: Option<ChaosPlan>,
    resilient: bool,
) -> Result<Engine> {
    let specs = CHAOS_BACKENDS
        .iter()
        .enumerate()
        .map(|(i, name)| BackendSpec::new(*name).with_latency_ms(1.0 + i as f64 * 0.5))
        .collect();
    let mut config = EngineConfig::default()
        .with_mode(ExecutionMode::LlmOnly)
        .with_strategy(PromptStrategy::BatchedRows)
        .with_fidelity(LlmFidelity::perfect())
        .with_batch_size(20)
        .with_parallelism(8)
        .with_seed(seed)
        .with_backends(specs)
        .with_routing_policy(RoutingPolicy::PromptHash);
    config.enable_prompt_cache = false;
    config.backend_backoff_ms = 0.0;
    if resilient {
        config = config.with_circuit_breaker(3, 50.0).with_hedging(3.0, 5.0);
    }
    if let Some(plan) = chaos {
        config = config.with_chaos(plan);
    }
    world.subject_engine(config)
}

/// Everything one scenario run produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The result rows (compared byte-for-byte across runs).
    pub batch: Batch,
    /// Logical LLM calls the query issued.
    pub logical_calls: u64,
    /// Physical attempts across all backends (includes failures/retries).
    pub attempts: u64,
    /// Failed attempts across all backends.
    pub errors: u64,
    /// Retry attempts across all backends.
    pub retries: u64,
    /// Hedge requests issued across all backends.
    pub hedges: u64,
    /// Per-backend counters (determinism is asserted on these).
    pub backend_stats: Vec<BackendStats>,
}

/// Execute the scenario scan on `engine` and collect the report.
pub fn run_chaos_scan(engine: &Engine) -> Result<ChaosReport> {
    let result = engine.execute(CHAOS_SQL)?;
    let backend_stats = engine
        .client()
        .and_then(|c| c.backend_stats())
        .unwrap_or_default();
    Ok(ChaosReport {
        logical_calls: result.metrics.llm_calls(),
        attempts: backend_stats.iter().map(|s| s.calls).sum(),
        errors: backend_stats.iter().map(|s| s.errors).sum(),
        retries: backend_stats.iter().map(|s| s.retries).sum(),
        hedges: backend_stats.iter().map(|s| s.hedges).sum(),
        backend_stats,
        batch: result.batch,
    })
}

/// The four runs of the suite (see [`run_chaos_suite`]).
#[derive(Debug, Clone)]
pub struct ChaosSuiteOutcome {
    /// Fault-free run with the full absorption machinery on.
    pub baseline: ChaosReport,
    /// Chaos with breakers/hedging *off* and prompt-hash routing — first run.
    pub deterministic_first: ChaosReport,
    /// Same engine configuration and seed, fresh engine — must match exactly.
    pub deterministic_second: ChaosReport,
    /// Chaos with breakers, hedging and failover absorbing the faults.
    pub absorbed: ChaosReport,
    /// The retry-spend ceiling the absorbed run must respect:
    /// `logical × backends × (1 + retries)` + hedges issued.
    pub attempt_ceiling: u64,
}

/// Run the full suite at `seed`: baseline, the deterministic chaos pair and
/// the absorbed chaos run, all over the same generated world.
pub fn run_chaos_suite(seed: u64) -> Result<ChaosSuiteOutcome> {
    let world = World::generate(chaos_world_spec(seed))?;
    let baseline = run_chaos_scan(&chaos_engine(&world, seed, None, true)?)?;
    let deterministic_first =
        run_chaos_scan(&chaos_engine(&world, seed, Some(chaos_plan(seed)), false)?)?;
    let deterministic_second =
        run_chaos_scan(&chaos_engine(&world, seed, Some(chaos_plan(seed)), false)?)?;
    let absorbed = run_chaos_scan(&chaos_engine(&world, seed, Some(chaos_plan(seed)), true)?)?;
    // backend_retries defaults to 1 extra attempt per backend; every logical
    // call may in the worst case walk the whole failover chain.
    let retries_per_backend = 1 + EngineConfig::default().backend_retries as u64;
    let attempt_ceiling =
        absorbed.logical_calls * CHAOS_BACKENDS.len() as u64 * retries_per_backend
            + absorbed.hedges;
    Ok(ChaosSuiteOutcome {
        baseline,
        deterministic_first,
        deterministic_second,
        absorbed,
        attempt_ceiling,
    })
}

impl ChaosSuiteOutcome {
    /// Check the three robustness invariants, failing with a structured
    /// error naming the first one violated.
    pub fn verify(&self) -> Result<()> {
        if self.baseline.batch.rows.len() != CHAOS_ROWS {
            return Err(Error::execution(format!(
                "baseline returned {} rows, expected {CHAOS_ROWS}",
                self.baseline.batch.rows.len()
            )));
        }
        if self.absorbed.batch.rows != self.baseline.batch.rows {
            return Err(Error::execution(
                "chaos changed the answer: absorbed rows differ from the no-chaos run",
            ));
        }
        if self.deterministic_first.batch.rows != self.baseline.batch.rows {
            return Err(Error::execution(
                "chaos changed the answer: deterministic rows differ from the no-chaos run",
            ));
        }
        if self.absorbed.attempts > self.attempt_ceiling {
            return Err(Error::execution(format!(
                "retry spend unbounded: {} attempts exceed the ceiling {} \
                 ({} logical calls, {} hedges)",
                self.absorbed.attempts,
                self.attempt_ceiling,
                self.absorbed.logical_calls,
                self.absorbed.hedges
            )));
        }
        if self.deterministic_first.backend_stats != self.deterministic_second.backend_stats {
            return Err(Error::execution(format!(
                "chaos is not deterministic: same seed produced different backend stats\n\
                 first:  {:?}\nsecond: {:?}",
                self.deterministic_first.backend_stats, self.deterministic_second.backend_stats
            )));
        }
        if self.deterministic_first.errors == 0 {
            return Err(Error::execution(
                "the fault schedule injected no failures — the scenario tested nothing",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_valid_and_covers_three_fault_kinds() {
        let plan = chaos_plan(42);
        plan.validate().unwrap();
        assert_eq!(plan.windows.len(), 3);
        assert!(plan
            .windows
            .iter()
            .any(|w| matches!(w.fault, ChaosFault::Outage)));
        assert!(plan
            .windows
            .iter()
            .any(|w| matches!(w.fault, ChaosFault::LatencyStorm { .. })));
        assert!(plan
            .windows
            .iter()
            .any(|w| matches!(w.fault, ChaosFault::ErrorBurst { .. })));
        // Only named chaos backends appear; edge-d stays clean for failover.
        for w in &plan.windows {
            assert!(CHAOS_BACKENDS.contains(&w.backend.as_str()));
            assert_ne!(w.backend, "edge-d");
        }
    }

    #[test]
    fn suite_invariants_hold_at_the_smoke_seed() {
        let outcome = run_chaos_suite(2024).unwrap();
        outcome.verify().unwrap();
        // The absorbed run really exercised recovery machinery.
        assert!(outcome.absorbed.attempts >= outcome.absorbed.logical_calls);
        assert_eq!(outcome.absorbed.batch.rows.len(), CHAOS_ROWS);
    }
}
