#![forbid(unsafe_code)]
//! # llmsql-workload
//!
//! Workload generation and the experiment harness:
//!
//! * [`world`] — deterministic synthetic world knowledge (countries, cities,
//!   people, movies) registered both as the ground-truth relational store and
//!   as the simulated model's knowledge base,
//! * [`queries`] — benchmark query suites organised by operator class,
//! * [`harness`] — run a suite on the oracle and a subject engine and score
//!   every answer,
//! * [`chaos`] — the seeded chaos-suite scenario: a multi-backend scan under
//!   a deterministic fault schedule, with robustness invariants,
//! * [`report`] — plain-text tables for the experiment binaries.

#![warn(missing_docs)]

pub mod chaos;
pub mod harness;
pub mod queries;
pub mod report;
pub mod world;

pub use chaos::{
    chaos_engine, chaos_plan, chaos_world_spec, run_chaos_scan, run_chaos_suite, ChaosReport,
    ChaosSuiteOutcome, CHAOS_BACKENDS, CHAOS_ROWS, CHAOS_SQL,
};
pub use harness::{run_suite, CaseOutcome, SuiteOutcome};
pub use queries::{
    cardinality_suite, class_suite, join_chain_suite, multi_tenant_suite, standard_suite,
    QueryCase, QueryClass,
};
pub use report::{fmt_f2, fmt_score, Report};
pub use world::{mixed_backend_config, World, WorldSpec};
