//! Seeded lock-order inversion fixtures for the `lock_audit` feature.
//!
//! Run with `cargo test -p parking_lot --features lock_audit`. Without the
//! feature the whole file compiles to nothing (and inversions go
//! undetected by design — the audit is a debug/test instrument).
#![cfg(feature = "lock_audit")]

use parking_lot::{Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The canonical two-lock inversion: establish A -> B, then acquire B -> A.
/// No actual deadlock is needed — the audit fires on the order violation
/// itself, single-threaded and deterministically.
#[test]
fn detects_seeded_mutex_inversion() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);
    a.set_audit_name("fixture.inversion.a");
    b.set_audit_name("fixture.inversion.b");

    // Establish the order a -> b.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }

    // Invert it: b -> a must panic, naming both locks.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }));
    let err = result.expect_err("inverted acquisition must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a string");
    assert!(
        msg.contains("lock order inversion"),
        "unexpected message: {msg}"
    );
    assert!(msg.contains("fixture.inversion.a"), "message: {msg}");
    assert!(msg.contains("fixture.inversion.b"), "message: {msg}");
    assert!(
        msg.contains("prior acquisition") && msg.contains("current acquisition"),
        "both acquisition backtraces must be reported: {msg}"
    );
}

/// Transitive cycles are caught too: a -> b, b -> c, then c -> a.
#[test]
fn detects_transitive_inversion() {
    let a = Mutex::new(());
    let b = Mutex::new(());
    let c = Mutex::new(());
    a.set_audit_name("fixture.chain.a");
    b.set_audit_name("fixture.chain.b");
    c.set_audit_name("fixture.chain.c");

    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _gc = c.lock();
        let _ga = a.lock();
    }));
    assert!(result.is_err(), "transitive cycle must be detected");
}

/// RwLock acquisitions participate in the same order graph.
#[test]
fn detects_rwlock_inversion() {
    let data = RwLock::new(1u32);
    let meta = Mutex::new(2u32);
    data.set_audit_name("fixture.rw.data");
    meta.set_audit_name("fixture.rw.meta");

    {
        let _gd = data.read();
        let _gm = meta.lock();
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _gm = meta.lock();
        let _gd = data.write();
    }));
    assert!(result.is_err(), "rwlock inversion must be detected");
}

/// Consistent ordering never fires, however often it repeats, and shared
/// re-entrant reads of one lock are not an inversion.
#[test]
fn consistent_order_and_reentrant_reads_pass() {
    let a = Mutex::new(());
    let b = Mutex::new(());
    a.set_audit_name("fixture.ok.a");
    b.set_audit_name("fixture.ok.b");
    for _ in 0..16 {
        let _ga = a.lock();
        let _gb = b.lock();
    }

    let l = RwLock::new(0u8);
    l.set_audit_name("fixture.ok.rw");
    let g1 = l.read();
    let g2 = l.read();
    drop((g1, g2));
}
