//! Lock-order auditing (the `lock_audit` feature).
//!
//! Every audited lock gets a lazily-assigned id and an optional name. Each
//! thread keeps a stack of currently held locks; every acquisition while
//! other locks are held records a directed edge `held -> acquired` in a
//! global order graph, together with the backtrace that first established
//! it. Before recording, the acquisition checks whether the *reverse*
//! direction is already reachable in the graph — if `acquired` can reach
//! `held`, the two orders together form a cycle, and the audit panics with
//! both acquisition backtraces (the stored one for the established edge and
//! a fresh one for the inverting acquisition).
//!
//! The whole module only exists under `--features lock_audit`; without it
//! the lock types carry no extra fields and the guards are plain newtypes
//! that compile to nothing.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// Global id allocator; 0 is reserved as "not yet assigned".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Per-lock audit metadata. Const-constructible so `Mutex::new` /
/// `RwLock::new` stay `const fn` with the feature on.
pub struct LockMeta {
    /// 0 until the first acquisition assigns an id from [`NEXT_ID`].
    id: AtomicU64,
    name: OnceLock<String>,
}

impl LockMeta {
    pub const fn new() -> Self {
        LockMeta {
            id: AtomicU64::new(0),
            name: OnceLock::new(),
        }
    }

    /// Name this lock for audit reports. First caller wins; later calls are
    /// ignored so shared fixtures can set names idempotently.
    pub fn set_name(&self, name: &str) {
        let _ = self.name.set(name.to_string());
    }

    fn label(&self, id: u64) -> String {
        match self.name.get() {
            Some(n) => n.clone(),
            None => format!("lock#{id}"),
        }
    }

    /// The lock's id, assigned from the global counter on first use.
    fn ensure_id(&self) -> u64 {
        // ordering: Relaxed — the id is an opaque token; uniqueness comes
        // from fetch_add on NEXT_ID, and no other memory is published
        // through it.
        let seen = self.id.load(Ordering::Relaxed);
        if seen != 0 {
            return seen;
        }
        // ordering: Relaxed — fetch_add only needs uniqueness.
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed CAS — on a race the loser reads the winner's id
        // from the failure value; either way every caller agrees afterward.
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }
}

impl Default for LockMeta {
    fn default() -> Self {
        LockMeta::new()
    }
}

/// One established ordering edge `from -> to`: the first acquisition of
/// `to` while `from` was held, with the backtrace that established it.
struct EdgeInfo {
    from_label: String,
    to_label: String,
    backtrace: String,
}

/// The global acquisition-order graph: `edges[from][to]` exists when some
/// thread has acquired `to` while holding `from`.
#[derive(Default)]
struct Graph {
    edges: HashMap<u64, HashMap<u64, EdgeInfo>>,
}

impl Graph {
    /// Is `to` reachable from `from` by following established edges?
    fn reaches(&self, from: u64, to: u64) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(node) = stack.pop() {
            if node == to {
                return true;
            }
            if let Some(nexts) = self.edges.get(&node) {
                for &next in nexts.keys() {
                    if !seen.contains(&next) {
                        seen.push(next);
                        stack.push(next);
                    }
                }
            }
        }
        false
    }
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph::default()))
}

thread_local! {
    /// Locks currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<(u64, String)>> = const { RefCell::new(Vec::new()) };
}

/// Guard-side token: pops this lock from the thread's held stack on drop.
pub struct HeldToken {
    id: u64,
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|(id, _)| *id == self.id) {
                held.remove(pos);
            }
        });
    }
}

/// Record an acquisition of `meta`'s lock: check every currently held lock
/// for an order inversion, record the new edges, and push onto the held
/// stack. Panics (naming both locks, with both backtraces) when the
/// acquisition closes a cycle in the order graph.
pub fn acquire(meta: &LockMeta) -> HeldToken {
    let id = meta.ensure_id();
    let label = meta.label(id);
    let holders: Vec<(u64, String)> = HELD.with(|held| held.borrow().clone());

    // Re-entrant same-lock acquisitions (shared read guards) are not an
    // ordering fact; skip them.
    let holders: Vec<_> = holders.into_iter().filter(|(h, _)| *h != id).collect();
    if !holders.is_empty() {
        let mut inversion: Option<String> = None;
        {
            let mut graph = graph().lock().unwrap_or_else(|e| e.into_inner());
            for (held_id, held_label) in &holders {
                if graph.reaches(id, *held_id) {
                    // The reverse order is established: walking the graph
                    // from `id` reaches `held_id`, so acquiring `id` while
                    // holding `held_id` inverts it. Report the direct edge's
                    // backtrace when one exists.
                    let prior = graph
                        .edges
                        .get(&id)
                        .and_then(|m| m.get(held_id))
                        .map(|e| {
                            format!(
                                "'{}' -> '{}' established at:\n{}",
                                e.from_label, e.to_label, e.backtrace
                            )
                        })
                        .unwrap_or_else(|| "<established transitively>".to_string());
                    inversion = Some(format!(
                        "lock order inversion: acquiring '{label}' while holding \
                         '{held_label}', but the order '{label}' -> '{held_label}' \
                         was already established\n\
                         --- prior acquisition establishing '{label}' -> '{held_label}' ---\n\
                         {prior}\n\
                         --- current acquisition of '{label}' ---\n\
                         {current}",
                        current = Backtrace::force_capture(),
                    ));
                    break;
                }
                graph
                    .edges
                    .entry(*held_id)
                    .or_default()
                    .entry(id)
                    .or_insert_with(|| EdgeInfo {
                        from_label: held_label.clone(),
                        to_label: label.clone(),
                        backtrace: Backtrace::force_capture().to_string(),
                    });
            }
        }
        if let Some(message) = inversion {
            panic!("{message}");
        }
    }

    HELD.with(|held| held.borrow_mut().push((id, label)));
    HeldToken { id }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaches_follows_transitive_edges() {
        let mut g = Graph::default();
        for (a, b) in [(1, 2), (2, 3)] {
            g.edges.entry(a).or_default().insert(
                b,
                EdgeInfo {
                    from_label: format!("l{a}"),
                    to_label: format!("l{b}"),
                    backtrace: String::new(),
                },
            );
        }
        assert!(g.reaches(1, 3));
        assert!(g.reaches(2, 3));
        assert!(!g.reaches(3, 1));
    }
}
