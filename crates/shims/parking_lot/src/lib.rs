//! Offline stand-in for the `parking_lot` crate (see `crates/shims/README.md`).
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `lock()/read()/write()` return guards directly instead of `Result`s. A
//! poisoned lock (a panic while holding the guard) is recovered rather than
//! propagated, which matches parking_lot's behavior of not poisoning at all.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
