#![forbid(unsafe_code)]
//! Offline stand-in for the `parking_lot` crate (see `crates/shims/README.md`).
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `lock()/read()/write()` return guards directly instead of `Result`s. A
//! poisoned lock (a panic while holding the guard) is recovered rather than
//! propagated, which matches parking_lot's behavior of not poisoning at all.
//!
//! With the `lock_audit` feature, every acquisition is checked against a
//! global lock-order graph and a cycle (a lock-order inversion that could
//! deadlock under the right interleaving) panics with both acquisition
//! backtraces — see [`audit`](self) internals in `audit.rs`. Without the
//! feature, the guards are plain newtypes and the audit compiles to nothing.

use std::fmt;
use std::ops::{Deref, DerefMut};

#[cfg(feature = "lock_audit")]
mod audit;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock_audit")]
    meta: audit::LockMeta,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks (and, under `lock_audit`, pops the
/// thread's held-lock stack) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // The held stack is thread-local, so popping before or after the OS
    // unlock (field drop order is declaration order) is equivalent.
    #[cfg(feature = "lock_audit")]
    _held: audit::HeldToken,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock_audit")]
            meta: audit::LockMeta::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            #[cfg(feature = "lock_audit")]
            _held: audit::acquire(&self.meta),
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            // A successful try_lock still participates in ordering: it
            // cannot deadlock itself, but it can establish the edge that a
            // later blocking acquisition inverts.
            #[cfg(feature = "lock_audit")]
            _held: audit::acquire(&self.meta),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Name this lock in `lock_audit` reports. No-op without the feature;
    /// first caller wins with it.
    #[cfg(feature = "lock_audit")]
    pub fn set_audit_name(&self, name: &str) {
        self.meta.set_name(name);
    }

    /// Name this lock in `lock_audit` reports. No-op without the feature.
    #[cfg(not(feature = "lock_audit"))]
    pub fn set_audit_name(&self, _name: &str) {}
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock_audit")]
    meta: audit::LockMeta,
    inner: std::sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock_audit")]
    _held: audit::HeldToken,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock_audit")]
    _held: audit::HeldToken,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lock_audit")]
            meta: audit::LockMeta::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            #[cfg(feature = "lock_audit")]
            _held: audit::acquire(&self.meta),
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            #[cfg(feature = "lock_audit")]
            _held: audit::acquire(&self.meta),
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Name this lock in `lock_audit` reports. No-op without the feature;
    /// first caller wins with it.
    #[cfg(feature = "lock_audit")]
    pub fn set_audit_name(&self, name: &str) {
        self.meta.set_name(name);
    }

    /// Name this lock in `lock_audit` reports. No-op without the feature.
    #[cfg(not(feature = "lock_audit"))]
    pub fn set_audit_name(&self, _name: &str) {}
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_contended_and_free() {
        let m = Mutex::new(7);
        {
            let held = m.lock();
            assert!(m.try_lock().is_none());
            assert_eq!(*held, 7);
        }
        assert_eq!(m.try_lock().map(|g| *g), Some(7));
    }

    #[test]
    fn set_audit_name_is_callable_in_both_feature_states() {
        let m = Mutex::new(0u8);
        m.set_audit_name("test.mutex");
        let l = RwLock::new(0u8);
        l.set_audit_name("test.rwlock");
        drop((m.lock(), l.read()));
    }
}
