#![forbid(unsafe_code)]
//! Offline stand-in for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Implements the strategy combinators and the `proptest!` macro surface this
//! workspace uses. Differences from the real crate: no shrinking, a fixed
//! number of cases per property (see [`test_runner::CASES`]), and string
//! "regex" strategies support only the subset actually used here (sequences
//! of character classes with optional `{n,m}` repetition).

pub mod test_runner {
    /// Cases generated per property.
    pub const CASES: usize = 48;

    /// Deterministic splitmix64-based generator for property inputs.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a property name so every property gets its own stream.
        pub fn from_name(name: &str) -> Self {
            let mut state = 0xA076_1D64_78BD_642F_u64;
            for b in name.bytes() {
                state = (state ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform usize in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discard generated values failing a predicate (resampling).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Build a recursive strategy: `f` receives the strategy for the
        /// previous depth level and returns the strategy for one level up.
        /// `_size` / `_branch` are accepted for API compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            f: F,
        ) -> ArcStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(ArcStrategy<Self::Value>) -> S2,
        {
            let leaf = ArcStrategy::new(self);
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = ArcStrategy::new(f(current));
                // Mostly-leaf mix bounds the expected tree size.
                current = ArcStrategy::new(Union::weighted(vec![(2, leaf.clone()), (1, branch)]));
            }
            current
        }

        /// Type-erase into a shareable handle.
        fn boxed(self) -> ArcStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            ArcStrategy::new(self)
        }
    }

    /// Shareable, clonable, type-erased strategy handle.
    pub struct ArcStrategy<V>(Arc<dyn Strategy<Value = V>>);

    impl<V> ArcStrategy<V> {
        /// Erase a concrete strategy.
        pub fn new<S: Strategy<Value = V> + 'static>(inner: S) -> Self {
            ArcStrategy(Arc::new(inner))
        }
    }

    impl<V> Clone for ArcStrategy<V> {
        fn clone(&self) -> Self {
            ArcStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for ArcStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    /// Weighted union of same-valued strategies (backs `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, ArcStrategy<V>)>,
        total: u32,
    }

    impl<V> Union<V> {
        /// Equal-weight union.
        pub fn new(arms: Vec<ArcStrategy<V>>) -> Self {
            Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Weighted union.
        pub fn weighted(arms: Vec<(u32, ArcStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            Union { arms, total }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = (rng.next_u64() % self.total as u64) as u32;
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("union weights exhausted")
        }
    }

    // Ranges ------------------------------------------------------------

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $ty)
                }
            }
        )*};
    }
    int_range_strategy!(i64, u64, usize, i32, u32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // any::<T>() --------------------------------------------------------

    /// Types with a full-domain default strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    /// Strategy for [`Arbitrary`] types; build with [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The default strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    // Tuples ------------------------------------------------------------

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    // String patterns ---------------------------------------------------

    /// One `[class]{min,max}` element of a pattern.
    struct PatternAtom {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Compile the regex subset used in this workspace: a sequence of
    /// character classes, each optionally followed by `{n}` or `{n,m}`.
    fn compile_pattern(pattern: &str) -> Vec<PatternAtom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern '{pattern}'"));
                let class = &chars[i + 1..i + close];
                i += close + 1;
                expand_class(class, pattern)
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern '{pattern}'"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("pattern repeat lower bound"),
                        hi.trim().parse().expect("pattern repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("pattern repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(PatternAtom { alphabet, min, max });
        }
        atoms
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < class.len() {
            let c = match class[i] {
                '\\' if i + 1 < class.len() => {
                    i += 1;
                    match class[i] {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    }
                }
                other => other,
            };
            // Range: current char, '-', and a following non-']' char.
            if i + 2 < class.len() && class[i + 1] == '-' {
                let hi = class[i + 2];
                assert!(c <= hi, "inverted range in pattern '{pattern}'");
                for code in c as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(code) {
                        out.push(ch);
                    }
                }
                i += 3;
            } else {
                out.push(c);
                i += 1;
            }
        }
        assert!(!out.is_empty(), "empty character class in '{pattern}'");
        out
    }

    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let atoms = compile_pattern(self);
            let mut out = String::new();
            for atom in &atoms {
                let count = atom.min + rng.below(atom.max - atom.min + 1);
                for _ in 0..count {
                    out.push(atom.alphabet[rng.below(atom.alphabet.len())]);
                }
            }
            out
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values; build with [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.sizes.end.saturating_sub(self.sizes.start).max(1);
            let len = self.sizes.start + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing `Option`s; build with [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `proptest::option::of(strategy)`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, ArcStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each property runs [`test_runner::CASES`] cases
/// with inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __strategies = ($($strat,)+);
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::sample(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Pick among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::ArcStrategy::new($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_runner::TestRng::from_name("shape");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "got '{s}'");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let p = Strategy::sample(&"[ -~\n]{0,40}", &mut rng);
            assert!(p.len() <= 40);
            assert!(p.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0i64..10, pair in (0usize..5, crate::option::of(0u64..3))) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(pair.0 < 5);
            if let Some(v) = pair.1 {
                prop_assert!(v < 3);
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(0i64),
            (5i64..10).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0 || (10..20).contains(&v));
        }

        #[test]
        fn vectors_respect_size(items in crate::collection::vec(0i64..100, 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
        }

        #[test]
        fn filter_holds(s in "[a-z]{1,6}".prop_filter("not abc", |s| s != "abc")) {
            prop_assert_ne!(s.as_str(), "abc");
        }
    }
}
