#![forbid(unsafe_code)]
//! Offline stand-in for the `criterion` crate (see `crates/shims/README.md`).
//!
//! A real measuring harness, minus criterion's statistics machinery: every
//! benchmark warms up briefly, then runs `sample_size` timed samples and
//! reports min / mean / max per-iteration wall time to stdout. Keeps the
//! `criterion_group!` / `criterion_main!` / `bench_with_input` surface so the
//! bench sources compile unchanged against the real crate.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Run a benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, &mut f);
        self
    }

    /// Finish the group (reporting is per-benchmark; this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    timing: bool,
}

impl Bencher {
    /// Time `routine`, recording one sample of `iters_per_sample` iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.timing {
            // Calibration pass: a single untimed iteration.
            black_box(routine());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration: one untimed run to estimate cost and warm caches.
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        timing: false,
    };
    let calib_start = Instant::now();
    f(&mut bencher);
    let calib = calib_start.elapsed();

    // Aim for ~2ms per sample, capped to keep total runtime bounded.
    let per_iter_ns = calib.as_nanos().max(1);
    let iters = (2_000_000 / per_iter_ns).clamp(1, 10_000) as u64;

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: iters,
        timing: true,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }

    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / iters as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        per_iter.len(),
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declare a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("case", 1), &41, |b, &x| b.iter(|| x + 1));
        group.finish();
    }
}
