#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate (see `crates/shims/README.md`).
//!
//! Implements the subset this workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}` over
//! integer, float and usize ranges. The generator is xoshiro256**-style
//! seeded through splitmix64 — deterministic and well-distributed, but *not*
//! bit-compatible with the real crate's ChaCha-based `StdRng`.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The subset of rand's `Rng` extension trait used by this workspace.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64_dyn(), range)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        to_unit_f64(self.next_u64_dyn()) < p
    }

    /// A uniformly random value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self.next_u64_dyn())
    }
}

/// Core entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64_dyn(&mut self) -> u64;
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::*;

    /// Deterministic xoshiro256**-style generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x1234_5678_9ABC_DEF0;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64_dyn(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Map 64 random bits to a float in `[0, 1)`.
pub(crate) fn to_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleRange: Copy + PartialOrd {
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

impl SampleRange for i64 {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((bits % span) as i64)
    }
}

impl SampleRange for u64 {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        range.start + bits % (range.end - range.start)
    }
}

impl SampleRange for usize {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        range.start + (bits % (range.end - range.start) as u64) as usize
    }
}

impl SampleRange for f64 {
    fn sample(bits: u64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        range.start + to_unit_f64(bits) * (range.end - range.start)
    }
}

/// Types with a "standard" uniform distribution (rand's `Standard`).
pub trait Standard {
    fn standard(bits: u64) -> Self;
}

impl Standard for bool {
    fn standard(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn standard(bits: u64) -> Self {
        bits
    }
}

impl Standard for f64 {
    fn standard(bits: u64) -> Self {
        to_unit_f64(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_dyn(), b.next_u64_dyn());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64_dyn(), c.next_u64_dyn());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&trues), "got {trues}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
