//! Rows and row batches.
//!
//! The executor is a pull-based iterator over [`Row`]s; batches are used at
//! the edges (result sets, LLM completions parsed into groups of rows, CSV
//! loading) where materialization is natural.

use std::fmt;

use crate::schema::RelSchema;
use crate::value::Value;

/// A single tuple: a boxed slice of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Create a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Create an empty row.
    pub fn empty() -> Self {
        Row { values: vec![] }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// True if the row holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Access a value by index, returning NULL when out of bounds (defensive
    /// behaviour for noisy LLM-parsed rows that may be short).
    pub fn get(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.values.get(idx).unwrap_or(&NULL)
    }

    /// Access a value by index, if present.
    pub fn try_get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Mutable access to a value.
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut Value> {
        self.values.get_mut(idx)
    }

    /// Replace the value at `idx`; extends with NULLs when needed.
    pub fn set(&mut self, idx: usize, value: Value) {
        if idx >= self.values.len() {
            self.values.resize(idx + 1, Value::Null);
        }
        self.values[idx] = value;
    }

    /// The underlying values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Append a value.
    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }

    /// Concatenate two rows (used by join operators).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend(self.values.iter().cloned());
        values.extend(other.values.iter().cloned());
        Row { values }
    }

    /// Project a subset of columns by index.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row {
            values: indices.iter().map(|&i| self.get(i).clone()).collect(),
        }
    }

    /// Count NULL values in the row.
    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_null()).count()
    }

    /// True if every value in the row is NULL.
    pub fn all_null(&self) -> bool {
        !self.values.is_empty() && self.values.iter().all(super::value::Value::is_null)
    }

    /// Pad or truncate the row to exactly `arity` values.
    pub fn resize(&mut self, arity: usize) {
        self.values.resize(arity, Value::Null);
    }

    /// Render as a pipe-separated string (used in prompts and debugging).
    pub fn to_pipe_string(&self) -> String {
        self.values
            .iter()
            .map(super::value::Value::to_display_string)
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.to_pipe_string())
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get(index)
    }
}

/// A materialized batch of rows together with its schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    /// Schema describing the rows.
    pub schema: RelSchema,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Batch {
    /// Create a batch.
    pub fn new(schema: RelSchema, rows: Vec<Row>) -> Self {
        Batch { schema, rows }
    }

    /// Create an empty batch with the given schema.
    pub fn empty(schema: RelSchema) -> Self {
        Batch {
            schema,
            rows: vec![],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column names of the schema.
    pub fn column_names(&self) -> Vec<String> {
        self.schema.names()
    }

    /// Extract one column as a vector of values.
    pub fn column(&self, idx: usize) -> Vec<Value> {
        self.rows.iter().map(|r| r.get(idx).clone()).collect()
    }

    /// Render as an ASCII table (for examples and experiment binaries).
    pub fn to_ascii_table(&self) -> String {
        use std::fmt::Write as _;
        let headers: Vec<String> = self
            .schema
            .fields
            .iter()
            .map(super::schema::Field::qualified_name)
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(std::string::String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                (0..headers.len().max(r.arity()))
                    .map(|i| r.get(i).to_display_string())
                    .collect()
            })
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let sep = || {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep());
        out.push('\n');
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            let _ = write!(out, " {h:w$} |");
        }
        out.push('\n');
        out.push_str(&sep());
        out.push('\n');
        for row in &rendered {
            out.push('|');
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                let _ = write!(out, " {cell:w$} |");
            }
            out.push('\n');
        }
        out.push_str(&sep());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn basic_accessors() {
        let r = Row::new(vec![Value::Int(1), Value::Text("a".into())]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(0), &Value::Int(1));
        assert_eq!(r.get(99), &Value::Null);
        assert_eq!(r.try_get(99), None);
        assert_eq!(r[1], Value::Text("a".into()));
    }

    #[test]
    fn set_extends_with_nulls() {
        let mut r = Row::empty();
        r.set(2, Value::Int(9));
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(0), &Value::Null);
        assert_eq!(r.get(2), &Value::Int(9));
    }

    #[test]
    fn concat_and_project() {
        let a = row(&[1, 2]);
        let b = row(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn null_counting() {
        let r = Row::new(vec![Value::Null, Value::Int(1), Value::Null]);
        assert_eq!(r.null_count(), 2);
        assert!(!r.all_null());
        assert!(Row::new(vec![Value::Null, Value::Null]).all_null());
        assert!(!Row::empty().all_null());
    }

    #[test]
    fn resize_pads_and_truncates() {
        let mut r = row(&[1, 2, 3]);
        r.resize(5);
        assert_eq!(r.arity(), 5);
        assert_eq!(r.get(4), &Value::Null);
        r.resize(2);
        assert_eq!(r.arity(), 2);
    }

    #[test]
    fn display_and_pipe() {
        let r = Row::new(vec![Value::Int(1), Value::Text("x".into()), Value::Null]);
        assert_eq!(r.to_pipe_string(), "1 | x | NULL");
        assert_eq!(r.to_string(), "(1 | x | NULL)");
    }

    #[test]
    fn batch_columns() {
        let schema = RelSchema::new(vec![
            Field::new(None, "a", DataType::Int, false),
            Field::new(None, "b", DataType::Int, false),
        ]);
        let batch = Batch::new(schema, vec![row(&[1, 2]), row(&[3, 4])]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.column(1), vec![Value::Int(2), Value::Int(4)]);
        assert_eq!(batch.column_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn ascii_table_renders() {
        let schema = RelSchema::new(vec![
            Field::new(Some("t"), "name", DataType::Text, false),
            Field::new(Some("t"), "pop", DataType::Int, false),
        ]);
        let batch = Batch::new(
            schema,
            vec![Row::new(vec![Value::Text("France".into()), Value::Int(68)])],
        );
        let s = batch.to_ascii_table();
        assert!(s.contains("t.name"));
        assert!(s.contains("France"));
        assert!(s.starts_with('+'));
    }
}
