//! A lock-free exponentially-weighted moving average cell, shared by the
//! latency estimators across crates (per-backend request latency in
//! `llmsql-llm`, per-query run time in `llmsql-sched`).

use std::sync::atomic::{AtomicU64, Ordering};

/// EWMA of a millisecond quantity, stored as the bit pattern of an `f64` in
/// an `AtomicU64`. The bits of `0.0` (which is `0u64`) are the "no sample
/// yet" sentinel; samples are clamped away from it, so an observed average
/// can never be confused with an empty cell.
#[derive(Default)]
pub struct AtomicEwmaMs {
    bits: AtomicU64,
}

/// Smoothing factor: each new sample moves the average a quarter of the
/// way, so a handful of observations adapt the estimate while one outlier
/// cannot whipsaw it.
const ALPHA: f64 = 0.25;

impl AtomicEwmaMs {
    /// An empty cell (no samples).
    pub const fn new() -> Self {
        AtomicEwmaMs {
            bits: AtomicU64::new(0),
        }
    }

    /// Fold one sample into the average (lock-free CAS loop). The first
    /// sample becomes the average; negative/zero samples are clamped to a
    /// tiny positive value to stay clear of the no-sample sentinel.
    pub fn observe(&self, sample_ms: f64) {
        let sample = sample_ms.max(1e-4);
        // ordering: Relaxed throughout — the cell is a self-contained
        // statistic; the CAS only has to be atomic on this one word, and no
        // other memory is published under it.
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = if current == 0 {
                sample
            } else {
                let old = f64::from_bits(current);
                old + ALPHA * (sample - old)
            };
            // ordering: Relaxed success/failure — retry loop re-reads the
            // word itself; stale reads only cost an extra iteration.
            match self.bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Overwrite the average with `sample_ms` (clamped away from the
    /// no-sample sentinel like [`AtomicEwmaMs::observe`]). Used when the
    /// previous estimate has gone stale enough that merging would drag the
    /// fresh observation toward obsolete history — e.g. the first sample a
    /// recovered backend produces after idling several decay half-lives.
    pub fn set(&self, sample_ms: f64) {
        // ordering: Relaxed — single-word overwrite of a statistic; readers
        // tolerate any interleaving with concurrent observe() CASes.
        self.bits
            .store(sample_ms.max(1e-4).to_bits(), Ordering::Relaxed);
    }

    /// The current average in milliseconds, `None` before any sample.
    pub fn get(&self) -> Option<f64> {
        // ordering: Relaxed — advisory read of a statistic; callers make no
        // cross-variable inference from it.
        match self.bits.load(Ordering::Relaxed) {
            0 => None,
            bits => Some(f64::from_bits(bits)),
        }
    }

    /// The average discounted for staleness: the stored value halved once per
    /// `half_life_ms` of `idle_ms` (time since the last sample, tracked by
    /// the caller — this cell carries no clock). A backend that stopped
    /// receiving samples because its average scared routing away thus decays
    /// back toward zero and re-attracts probe traffic, which refreshes the
    /// average with reality. `half_life_ms <= 0` disables decay; `None`
    /// before any sample, like [`AtomicEwmaMs::get`].
    pub fn decayed(&self, idle_ms: f64, half_life_ms: f64) -> Option<f64> {
        let value = self.get()?;
        if half_life_ms <= 0.0 || idle_ms <= 0.0 {
            return Some(value);
        }
        Some(value * 0.5_f64.powf(idle_ms / half_life_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_then_first_sample_then_smoothing() {
        let ewma = AtomicEwmaMs::new();
        assert_eq!(ewma.get(), None);
        ewma.observe(10.0);
        assert_eq!(ewma.get(), Some(10.0));
        ewma.observe(20.0);
        // 10 + 0.25 * (20 - 10) = 12.5
        assert!((ewma.get().unwrap() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn zero_and_negative_samples_never_reset_to_empty() {
        let ewma = AtomicEwmaMs::new();
        ewma.observe(0.0);
        assert!(ewma.get().is_some(), "clamped sample must register");
        ewma.observe(-5.0);
        assert!(ewma.get().unwrap() > 0.0);
    }

    #[test]
    fn decayed_reads_halve_per_half_life_and_respect_the_sentinel() {
        let ewma = AtomicEwmaMs::new();
        assert_eq!(ewma.decayed(1000.0, 100.0), None, "no sample, no estimate");
        ewma.observe(40.0);
        assert_eq!(ewma.decayed(0.0, 100.0), Some(40.0));
        assert!((ewma.decayed(100.0, 100.0).unwrap() - 20.0).abs() < 1e-9);
        assert!((ewma.decayed(200.0, 100.0).unwrap() - 10.0).abs() < 1e-9);
        // Disabled decay returns the raw average.
        assert_eq!(ewma.decayed(10_000.0, 0.0), Some(40.0));
        // The stored value is untouched — decay is a read-side view.
        assert_eq!(ewma.get(), Some(40.0));
    }

    #[test]
    fn concurrent_observers_lose_no_updates() {
        let ewma = AtomicEwmaMs::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ewma = &ewma;
                scope.spawn(move || {
                    for _ in 0..1000 {
                        ewma.observe(5.0);
                    }
                });
            }
        });
        // Every sample equals 5.0, so the average converges there exactly.
        assert!((ewma.get().unwrap() - 5.0).abs() < 1e-9);
    }
}
