//! Logical schema descriptions: data types, columns, table schemas.
//!
//! A schema in this engine may describe either a *materialized* relation held
//! by the relational store, or a *virtual* relation whose contents only exist
//! in the parametric knowledge of the language model. Virtual relations carry
//! extra natural-language metadata (entity description, attribute
//! descriptions) that the prompt builder uses to phrase questions.

use std::fmt;

use crate::error::{Error, Result};

/// The scalar data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
}

impl DataType {
    /// Parse a SQL type name.
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(DataType::Text),
            _ => None,
        }
    }

    /// True for INT / FLOAT.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The wider of two numeric types, used for arithmetic result typing.
    pub fn widen(self, other: DataType) -> DataType {
        if self == DataType::Float || other == DataType::Float {
            DataType::Float
        } else {
            DataType::Int
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
        };
        write!(f, "{s}")
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (lower-cased at bind time).
    pub name: String,
    /// Data type.
    pub data_type: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
    /// Whether this column is (part of) the primary key.
    pub primary_key: bool,
    /// Natural-language description used when prompting the LLM for this
    /// attribute (e.g. "the population of the country in 2023").
    pub description: Option<String>,
}

impl Column {
    /// Create a nullable, non-key column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into(),
            data_type,
            nullable: true,
            primary_key: false,
            description: None,
        }
    }

    /// Mark this column as the primary key (implies NOT NULL).
    pub fn primary_key(mut self) -> Self {
        self.primary_key = true;
        self.nullable = false;
        self
    }

    /// Mark the column NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// Attach a natural-language description used in prompts.
    pub fn with_description(mut self, desc: impl Into<String>) -> Self {
        self.description = Some(desc.into());
        self
    }

    /// The phrase the prompt builder uses for this attribute: the description
    /// if present, otherwise the column name with underscores spelled out.
    pub fn prompt_phrase(&self) -> String {
        match &self.description {
            Some(d) => d.clone(),
            None => self.name.replace('_', " "),
        }
    }
}

/// A relation schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Table name (lower-cased).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Whether the relation is virtual (LLM-backed) rather than materialized.
    pub virtual_table: bool,
    /// Natural-language description of the entity set, e.g.
    /// "sovereign countries of the world as of 2023".
    pub description: Option<String>,
}

impl Schema {
    /// Create a materialized schema.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Schema {
            name: name.into().to_ascii_lowercase(),
            columns,
            virtual_table: false,
            description: None,
        }
    }

    /// Create a virtual (LLM-backed) schema.
    pub fn virtual_table(name: impl Into<String>, columns: Vec<Column>) -> Self {
        let mut s = Schema::new(name, columns);
        s.virtual_table = true;
        s
    }

    /// Attach an entity-set description used in prompts.
    pub fn with_description(mut self, desc: impl Into<String>) -> Self {
        self.description = Some(desc.into());
        self
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Find a column index by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Find a column by name or return a binding error.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                Error::binding(format!(
                    "column '{}' not found in table '{}'",
                    name, self.name
                ))
            })
    }

    /// Names of all columns, in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Indices of primary-key columns.
    pub fn primary_key_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.primary_key)
            .map(|(i, _)| i)
            .collect()
    }

    /// The key column (first PK column, else first column). Virtual tables use
    /// this as the entity identifier when enumerating rows via prompts.
    pub fn key_column(&self) -> &Column {
        self.columns
            .iter()
            .find(|c| c.primary_key)
            .unwrap_or(&self.columns[0])
    }

    /// The phrase describing the entity set for prompt construction.
    pub fn prompt_phrase(&self) -> String {
        match &self.description {
            Some(d) => d.clone(),
            None => self.name.replace('_', " "),
        }
    }

    /// Validate the schema: non-empty, unique column names.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(Error::schema("table name must not be empty"));
        }
        if self.columns.is_empty() {
            return Err(Error::schema(format!(
                "table '{}' must have at least one column",
                self.name
            )));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if c.name.is_empty() {
                return Err(Error::schema(format!(
                    "table '{}' has an unnamed column at position {i}",
                    self.name
                )));
            }
            for other in &self.columns[i + 1..] {
                if c.name.eq_ignore_ascii_case(&other.name) {
                    return Err(Error::schema(format!(
                        "duplicate column '{}' in table '{}'",
                        c.name, self.name
                    )));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if c.primary_key {
                write!(f, " PRIMARY KEY")?;
            } else if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

/// A fully qualified column reference produced by the binder: which input
/// relation (by position in the plan's input list) and which column index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Offset of the column in the flattened input row.
    pub index: usize,
}

/// Schema of an intermediate result: a flat list of named, typed fields,
/// optionally qualified by the relation they came from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelSchema {
    /// Fields in output order.
    pub fields: Vec<Field>,
}

/// One field of an intermediate-result schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Optional qualifier (table name or alias).
    pub qualifier: Option<String>,
    /// Field name.
    pub name: String,
    /// Data type.
    pub data_type: DataType,
    /// Nullability.
    pub nullable: bool,
}

impl Field {
    /// Create a new field.
    pub fn new(
        qualifier: Option<&str>,
        name: impl Into<String>,
        data_type: DataType,
        nullable: bool,
    ) -> Self {
        Field {
            qualifier: qualifier.map(str::to_ascii_lowercase),
            name: name.into().to_ascii_lowercase(),
            data_type,
            nullable,
        }
    }

    /// The qualified display name, e.g. `countries.population`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{}.{}", q, self.name),
            None => self.name.clone(),
        }
    }
}

impl RelSchema {
    /// Create an empty schema.
    pub fn empty() -> Self {
        RelSchema { fields: vec![] }
    }

    /// Build from a list of fields.
    pub fn new(fields: Vec<Field>) -> Self {
        RelSchema { fields }
    }

    /// Build from a base-table [`Schema`], qualifying fields by `alias`.
    pub fn from_table(schema: &Schema, alias: &str) -> Self {
        RelSchema {
            fields: schema
                .columns
                .iter()
                .map(|c| Field::new(Some(alias), c.name.clone(), c.data_type, c.nullable))
                .collect(),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Concatenate two schemas (used for joins).
    pub fn join(&self, other: &RelSchema) -> RelSchema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        RelSchema { fields }
    }

    /// Resolve a possibly-qualified column name to its index.
    ///
    /// Returns an error when the name is ambiguous or unknown.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let name_l = name.to_ascii_lowercase();
        let qual_l = qualifier.map(str::to_ascii_lowercase);
        let mut matches = self.fields.iter().enumerate().filter(|(_, f)| {
            f.name == name_l
                && match &qual_l {
                    Some(q) => f.qualifier.as_deref() == Some(q.as_str()),
                    None => true,
                }
        });
        let first = matches.next();
        let second = matches.next();
        match (first, second) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(Error::binding(format!(
                "ambiguous column reference '{}'",
                match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                }
            ))),
            (None, _) => Err(Error::binding(format!(
                "unknown column '{}'",
                match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.to_string(),
                }
            ))),
        }
    }

    /// Field names (unqualified), in order.
    pub fn names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(
            "Countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("capital", DataType::Text),
                Column::new("population", DataType::Int).with_description("population in 2023"),
                Column::new("area_km2", DataType::Float),
            ],
        )
    }

    #[test]
    fn datatype_parse_and_display() {
        assert_eq!(DataType::parse("integer"), Some(DataType::Int));
        assert_eq!(DataType::parse("VARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::parse("double"), Some(DataType::Float));
        assert_eq!(DataType::parse("bool"), Some(DataType::Bool));
        assert_eq!(DataType::parse("blob"), None);
        assert_eq!(DataType::Int.to_string(), "INTEGER");
    }

    #[test]
    fn datatype_widen() {
        assert_eq!(DataType::Int.widen(DataType::Int), DataType::Int);
        assert_eq!(DataType::Int.widen(DataType::Float), DataType::Float);
        assert_eq!(DataType::Float.widen(DataType::Int), DataType::Float);
    }

    #[test]
    fn schema_lowercases_name() {
        let s = sample_schema();
        assert_eq!(s.name, "countries");
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn index_and_lookup() {
        let s = sample_schema();
        assert_eq!(s.index_of("CAPITAL"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.column("population").is_ok());
        assert!(s.column("missing").is_err());
    }

    #[test]
    fn key_column_prefers_primary_key() {
        let s = sample_schema();
        assert_eq!(s.key_column().name, "name");
        let s2 = Schema::new("t", vec![Column::new("a", DataType::Int)]);
        assert_eq!(s2.key_column().name, "a");
    }

    #[test]
    fn prompt_phrases() {
        let s = sample_schema();
        assert_eq!(s.prompt_phrase(), "countries");
        assert_eq!(
            s.column("population").unwrap().prompt_phrase(),
            "population in 2023"
        );
        assert_eq!(s.column("area_km2").unwrap().prompt_phrase(), "area km2");
    }

    #[test]
    fn validation_catches_duplicates() {
        let s = Schema::new(
            "t",
            vec![
                Column::new("a", DataType::Int),
                Column::new("A", DataType::Text),
            ],
        );
        assert!(s.validate().is_err());
        assert!(sample_schema().validate().is_ok());
        assert!(Schema::new("t", vec![]).validate().is_err());
    }

    #[test]
    fn display_shows_constraints() {
        let s = sample_schema();
        let d = s.to_string();
        assert!(d.contains("countries("));
        assert!(d.contains("name TEXT PRIMARY KEY"));
    }

    #[test]
    fn relschema_resolution() {
        let s = sample_schema();
        let rel = RelSchema::from_table(&s, "c");
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.resolve(None, "capital").unwrap(), 1);
        assert_eq!(rel.resolve(Some("c"), "capital").unwrap(), 1);
        assert!(rel.resolve(Some("x"), "capital").is_err());
        assert!(rel.resolve(None, "missing").is_err());
    }

    #[test]
    fn relschema_join_detects_ambiguity() {
        let s = sample_schema();
        let rel = RelSchema::from_table(&s, "a").join(&RelSchema::from_table(&s, "b"));
        assert_eq!(rel.len(), 8);
        assert!(rel.resolve(None, "capital").is_err());
        assert_eq!(rel.resolve(Some("b"), "capital").unwrap(), 5);
    }

    #[test]
    fn field_qualified_name() {
        let f = Field::new(Some("T"), "Col", DataType::Int, true);
        assert_eq!(f.qualified_name(), "t.col");
        let g = Field::new(None, "col", DataType::Int, true);
        assert_eq!(g.qualified_name(), "col");
    }
}
