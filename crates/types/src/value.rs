//! Dynamically-typed scalar values flowing through the engine.
//!
//! `Value` is the unit of data exchanged between the storage layers (the
//! relational store and the LLM-backed virtual storage), the expression
//! evaluator, and result sets. Values coming back from a language model are
//! textual and noisy, so this module also provides lenient parsing and
//! normalisation helpers used by the completion parser.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};
use crate::schema::DataType;

/// A scalar value.
///
/// `Null` is a first-class member (SQL three-valued logic is implemented in
/// the expression evaluator). Floats are wrapped so that `Value` can be
/// `Eq + Hash` (needed for hash joins and group-by); NaN compares equal to
/// itself and sorts last.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// The textual name of this value's runtime type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOLEAN",
            Value::Int(_) => "INTEGER",
            Value::Float(_) => "FLOAT",
            Value::Text(_) => "TEXT",
        }
    }

    /// The [`DataType`] this value naturally maps to, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as a boolean if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interpret the value as an integer if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interpret the value numerically (ints widen to float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interpret the value as a string slice if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if the value is numeric (int or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Cast this value to the given data type following SQL-ish coercion
    /// rules. NULL casts to NULL for every target type.
    pub fn cast(&self, to: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        let out = match (self, to) {
            (Value::Bool(b), DataType::Bool) => Value::Bool(*b),
            (Value::Bool(b), DataType::Int) => Value::Int(i64::from(*b)),
            (Value::Bool(b), DataType::Float) => Value::Float(f64::from(u8::from(*b))),
            (Value::Bool(b), DataType::Text) => Value::Text(b.to_string()),

            (Value::Int(i), DataType::Int) => Value::Int(*i),
            (Value::Int(i), DataType::Float) => Value::Float(*i as f64),
            (Value::Int(i), DataType::Bool) => Value::Bool(*i != 0),
            (Value::Int(i), DataType::Text) => Value::Text(i.to_string()),

            (Value::Float(f), DataType::Float) => Value::Float(*f),
            (Value::Float(f), DataType::Int) => Value::Int(*f as i64),
            (Value::Float(f), DataType::Bool) => Value::Bool(*f != 0.0),
            (Value::Float(f), DataType::Text) => Value::Text(format_float(*f)),

            (Value::Text(s), DataType::Text) => Value::Text(s.clone()),
            (Value::Text(s), DataType::Int) => {
                let parsed = parse_int_lenient(s)
                    .ok_or_else(|| Error::type_error(format!("cannot cast '{s}' to INTEGER")))?;
                Value::Int(parsed)
            }
            (Value::Text(s), DataType::Float) => {
                let parsed = parse_float_lenient(s)
                    .ok_or_else(|| Error::type_error(format!("cannot cast '{s}' to FLOAT")))?;
                Value::Float(parsed)
            }
            (Value::Text(s), DataType::Bool) => {
                let parsed = parse_bool_lenient(s)
                    .ok_or_else(|| Error::type_error(format!("cannot cast '{s}' to BOOLEAN")))?;
                Value::Bool(parsed)
            }
            (v, t) => {
                return Err(Error::type_error(format!(
                    "cannot cast {} to {}",
                    v.type_name(),
                    t
                )))
            }
        };
        Ok(out)
    }

    /// Lenient parse of text produced by a language model into the requested
    /// type. Unlike [`Value::cast`], failures fall back to `Null` instead of
    /// erroring, because noisy completions must not abort query execution.
    pub fn from_llm_text(raw: &str, ty: DataType) -> Value {
        let trimmed = normalize_llm_text(raw);
        if trimmed.is_empty() || is_nullish(&trimmed) {
            return Value::Null;
        }
        match ty {
            DataType::Text => Value::Text(trimmed),
            DataType::Int => parse_int_lenient(&trimmed).map_or(Value::Null, Value::Int),
            DataType::Float => parse_float_lenient(&trimmed).map_or(Value::Null, Value::Float),
            DataType::Bool => parse_bool_lenient(&trimmed).map_or(Value::Null, Value::Bool),
        }
    }

    /// Total ordering used by ORDER BY and B-tree indexes.
    ///
    /// NULLs sort first; across types the order is
    /// NULL < BOOL < numeric < TEXT; NaN sorts after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Int(_) | Float(_), Text(_)) => Ordering::Less,
            (Text(_), Int(_) | Float(_)) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }

    /// SQL equality with NULL semantics: comparing anything with NULL yields
    /// `None` (unknown); numeric types compare across int/float.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.semantic_eq(other))
    }

    /// Non-SQL equality used for grouping and joining: NULL == NULL and
    /// numerics compare across int/float.
    pub fn semantic_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Text(a), Text(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
            (Float(a), Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            _ => false,
        }
    }

    /// Render the value the way it is embedded into prompts and CSV files.
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Text(s) => s.clone(),
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        // total-order: both sides are non-NaN here, so partial_cmp is total;
        // it is kept over total_cmp so -0.0 and 0.0 stay Equal, matching
        // semantic_eq.
        (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
    }
}

/// Format floats without superfluous trailing zeros but keep a decimal point
/// so that round-tripping preserves the type.
pub fn format_float(f: f64) -> String {
    if f.is_nan() {
        return "NaN".to_string();
    }
    if f.is_infinite() {
        return if f > 0.0 { "inf".into() } else { "-inf".into() };
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

/// Strip markdown/formatting artefacts commonly produced by LLM completions:
/// surrounding whitespace, quotes, backticks, bullets and trailing periods.
pub fn normalize_llm_text(raw: &str) -> String {
    let mut s = raw.trim();
    // strip list bullets like "- " or "* " or "1. "
    if let Some(rest) = s.strip_prefix("- ").or_else(|| s.strip_prefix("* ")) {
        s = rest.trim_start();
    }
    // Repeatedly peel quoting/markdown characters and a single trailing
    // period until the string stabilises ("* `Tokyo`." -> "Tokyo").
    let mut cur = s.to_string();
    loop {
        let trimmed = cur
            .trim_matches(|c| c == '`' || c == '"' || c == '\'' || c == '*')
            .trim();
        let trimmed = trimmed.strip_suffix('.').unwrap_or(trimmed).trim();
        if trimmed == cur {
            break;
        }
        cur = trimmed.to_string();
    }
    cur
}

fn is_nullish(s: &str) -> bool {
    let lower = s.to_ascii_lowercase();
    matches!(
        lower.as_str(),
        "null" | "none" | "n/a" | "na" | "unknown" | "nil" | "-" | "?"
    )
}

/// Parse an integer tolerating thousands separators, surrounding text such as
/// units, and an optional leading sign.
pub fn parse_int_lenient(s: &str) -> Option<i64> {
    let cleaned: String = s.chars().filter(|c| *c != ',' && *c != '_').collect();
    let cleaned = cleaned.trim();
    if let Ok(v) = cleaned.parse::<i64>() {
        return Some(v);
    }
    // Accept floats that are integral ("12.0") and numbers followed by junk
    // ("12 million" is NOT scaled; we only strip trailing non-numerics).
    if let Ok(f) = cleaned.parse::<f64>() {
        if f.fract() == 0.0 && f.abs() < 9.2e18 {
            return Some(f as i64);
        }
    }
    let numeric_prefix: String = cleaned
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-' || *c == '+')
        .collect();
    if numeric_prefix.is_empty() || numeric_prefix == "-" || numeric_prefix == "+" {
        None
    } else {
        numeric_prefix.parse::<i64>().ok()
    }
}

/// Parse a float tolerating thousands separators and trailing units.
pub fn parse_float_lenient(s: &str) -> Option<f64> {
    let cleaned: String = s.chars().filter(|c| *c != ',' && *c != '_').collect();
    let cleaned = cleaned.trim();
    if let Ok(v) = cleaned.parse::<f64>() {
        return Some(v);
    }
    let numeric_prefix: String = cleaned
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-' || *c == '+' || *c == '.' || *c == 'e')
        .collect();
    if numeric_prefix.is_empty() {
        None
    } else {
        numeric_prefix.parse::<f64>().ok()
    }
}

/// Parse a boolean tolerating yes/no style answers.
pub fn parse_bool_lenient(s: &str) -> Option<bool> {
    match s.trim().to_ascii_lowercase().as_str() {
        "true" | "t" | "yes" | "y" | "1" => Some(true),
        "false" | "f" | "no" | "n" | "0" => Some(false),
        _ => None,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.semantic_eq(other)
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Integral values must hash identically whether stored as Int or
            // Float so that hash joins agree with `semantic_eq`.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                if f.is_nan() {
                    f64::NAN.to_bits().hash(state);
                } else {
                    f.to_bits().hash(state);
                }
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
            other => write!(f, "{}", other.to_display_string()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "NULL");
        assert_eq!(Value::Bool(true).type_name(), "BOOLEAN");
        assert_eq!(Value::Int(3).type_name(), "INTEGER");
        assert_eq!(Value::Float(1.5).type_name(), "FLOAT");
        assert_eq!(Value::Text("x".into()).type_name(), "TEXT");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("hi".into()).as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert!(Value::Int(1).is_numeric());
        assert!(!Value::Text("1".into()).is_numeric());
    }

    #[test]
    fn cast_int_to_others() {
        assert_eq!(
            Value::Int(3).cast(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Int(0).cast(DataType::Bool).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Value::Int(42).cast(DataType::Text).unwrap(),
            Value::Text("42".into())
        );
    }

    #[test]
    fn cast_text_to_numeric() {
        assert_eq!(
            Value::Text("1,234".into()).cast(DataType::Int).unwrap(),
            Value::Int(1234)
        );
        assert_eq!(
            Value::Text("3.25".into()).cast(DataType::Float).unwrap(),
            Value::Float(3.25)
        );
        assert!(Value::Text("abc".into()).cast(DataType::Int).is_err());
    }

    #[test]
    fn cast_null_is_null() {
        for ty in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Text,
        ] {
            assert_eq!(Value::Null.cast(ty).unwrap(), Value::Null);
        }
    }

    #[test]
    fn llm_text_parsing_is_lenient() {
        assert_eq!(Value::from_llm_text("  42 ", DataType::Int), Value::Int(42));
        assert_eq!(
            Value::from_llm_text("\"Paris\"", DataType::Text),
            Value::Text("Paris".into())
        );
        assert_eq!(
            Value::from_llm_text("- 1,234 km", DataType::Int),
            Value::Int(1234)
        );
        assert_eq!(Value::from_llm_text("unknown", DataType::Int), Value::Null);
        assert_eq!(Value::from_llm_text("N/A", DataType::Text), Value::Null);
        assert_eq!(
            Value::from_llm_text("yes", DataType::Bool),
            Value::Bool(true)
        );
        assert_eq!(
            Value::from_llm_text("garbage", DataType::Float),
            Value::Null
        );
    }

    #[test]
    fn normalization_strips_markdown() {
        assert_eq!(normalize_llm_text("* `Tokyo`."), "Tokyo");
        assert_eq!(normalize_llm_text("  \"Berlin\"  "), "Berlin");
        assert_eq!(normalize_llm_text("- 12"), "12");
    }

    #[test]
    fn ordering_across_types() {
        let mut vals = vec![
            Value::Text("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(2.5),
                Value::Int(5),
                Value::Text("a".into()),
            ]
        );
    }

    #[test]
    fn nan_sorts_last_among_floats() {
        let mut vals = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(-1.0),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Float(-1.0));
        assert_eq!(vals[1], Value::Float(1.0));
        assert!(matches!(vals[2], Value::Float(f) if f.is_nan()));
    }

    #[test]
    fn sql_eq_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Float(1.0)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn semantic_eq_and_hash_agree_across_int_float() {
        use std::collections::hash_map::DefaultHasher;
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert!(a.semantic_eq(&b));
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn display_quotes_text() {
        assert_eq!(Value::Text("it's".into()).to_string(), "'it''s'");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(2.5), "2.5");
        assert_eq!(format_float(f64::NAN), "NaN");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some(2i64)), Value::Int(2));
    }

    #[test]
    fn lenient_parsers() {
        assert_eq!(parse_int_lenient("1_000"), Some(1000));
        assert_eq!(parse_int_lenient("12.0"), Some(12));
        assert_eq!(parse_int_lenient("12 km"), Some(12));
        assert_eq!(parse_int_lenient("km"), None);
        assert_eq!(parse_float_lenient("3.5 kg"), Some(3.5));
        assert_eq!(parse_bool_lenient("Yes"), Some(true));
        assert_eq!(parse_bool_lenient("nope"), None);
    }
}
