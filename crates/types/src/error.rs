//! The unified error type for the engine.

use std::fmt;

/// Result alias used across all crates.
pub type Result<T> = std::result::Result<T, Error>;

/// The category of an engine error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Lexer / parser errors.
    Parse,
    /// Name-resolution or semantic-analysis errors.
    Binding,
    /// Schema / catalog errors (missing tables, duplicate columns, ...).
    Schema,
    /// Type-system errors (bad casts, incompatible operands).
    Type,
    /// Planner / optimizer errors.
    Plan,
    /// Runtime execution errors.
    Execution,
    /// Errors originating in the language-model storage layer.
    Llm,
    /// Storage-layer errors (constraint violations, missing rows, I/O).
    Storage,
    /// A feature the engine does not (yet) support.
    Unsupported,
    /// Configuration errors.
    Config,
    /// Cross-query scheduler errors (admission rejections, shutdown races).
    Scheduler,
    /// A query exceeded (or could not possibly meet) its deadline. The
    /// message carries the partial accounting at the moment of failure:
    /// elapsed time and LLM calls already issued.
    DeadlineExceeded,
    /// The deployment shed this query at admission to protect itself (rate
    /// limit exhausted, or load-shedding watermark crossed). The work was
    /// never started — resubmitting after `retry_after_ms` is loss-less.
    Overloaded {
        /// Suggested client back-off in milliseconds, computed from the
        /// scheduler's run-time EWMAs and current backlog (always > 0).
        retry_after_ms: u64,
    },
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Parse => "parse error",
            ErrorKind::Binding => "binding error",
            ErrorKind::Schema => "schema error",
            ErrorKind::Type => "type error",
            ErrorKind::Plan => "planning error",
            ErrorKind::Execution => "execution error",
            ErrorKind::Llm => "llm error",
            ErrorKind::Storage => "storage error",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Config => "configuration error",
            ErrorKind::Scheduler => "scheduler error",
            ErrorKind::DeadlineExceeded => "deadline exceeded",
            ErrorKind::Overloaded { .. } => "overloaded",
        };
        write!(f, "{s}")
    }
}

/// An engine error: a kind plus a human-readable message and an optional
/// source location (byte offset in the SQL text, for parse errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// The error category.
    pub kind: ErrorKind,
    /// Human-readable message.
    pub message: String,
    /// Optional byte offset into the query text (parse errors).
    pub offset: Option<usize>,
    /// Suggested client back-off in milliseconds for retryable admission
    /// rejections (overload shed, queue full, projected-wait deadline
    /// rejection). `None` for errors a blind retry cannot help with.
    pub retry_after_ms: Option<u64>,
}

impl Error {
    /// Create an error of the given kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        let retry_after_ms = match kind {
            ErrorKind::Overloaded { retry_after_ms } => Some(retry_after_ms),
            _ => None,
        };
        Error {
            kind,
            message: message.into(),
            offset: None,
            retry_after_ms,
        }
    }

    /// Attach a byte offset (parse errors).
    pub fn at(mut self, offset: usize) -> Self {
        self.offset = Some(offset);
        self
    }

    /// Attach a retry-after hint (admission rejections that a client can
    /// back off on: queue full, projected-wait deadline rejection).
    pub fn with_retry_after(mut self, retry_after_ms: u64) -> Self {
        self.retry_after_ms = Some(retry_after_ms);
        self
    }

    /// The structured retry-after hint, if this rejection carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        self.retry_after_ms.or(match self.kind {
            ErrorKind::Overloaded { retry_after_ms } => Some(retry_after_ms),
            _ => None,
        })
    }

    /// Whether this is an admission-side overload shed / throttle rejection.
    pub fn is_overloaded(&self) -> bool {
        matches!(self.kind, ErrorKind::Overloaded { .. })
    }

    /// Parse error constructor.
    pub fn parse(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Parse, message)
    }
    /// Binding error constructor.
    pub fn binding(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Binding, message)
    }
    /// Schema error constructor.
    pub fn schema(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Schema, message)
    }
    /// Type error constructor.
    pub fn type_error(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Type, message)
    }
    /// Planning error constructor.
    pub fn plan(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Plan, message)
    }
    /// Execution error constructor.
    pub fn execution(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Execution, message)
    }
    /// LLM-layer error constructor.
    pub fn llm(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Llm, message)
    }
    /// Storage error constructor.
    pub fn storage(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Storage, message)
    }
    /// Unsupported-feature error constructor.
    pub fn unsupported(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Unsupported, message)
    }
    /// Configuration error constructor.
    pub fn config(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Config, message)
    }
    /// Scheduler error constructor (admission rejections, shutdown races).
    pub fn scheduler(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Scheduler, message)
    }
    /// Deadline-exceeded constructor. Callers are expected to fold the
    /// partial accounting (elapsed ms, LLM calls issued) into the message.
    pub fn deadline_exceeded(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::DeadlineExceeded, message)
    }
    /// Overload rejection constructor (shed / rate-limited at admission).
    /// `retry_after_ms` is clamped to at least 1 so clients always get a
    /// positive back-off.
    pub fn overloaded(retry_after_ms: u64, message: impl Into<String>) -> Self {
        Error::new(
            ErrorKind::Overloaded {
                retry_after_ms: retry_after_ms.max(1),
            },
            message,
        )
    }
}

/// A structured marker describing why (and where) a query's result was cut
/// short, attached to partial results produced under graceful degradation
/// (`EngineConfig::with_partial_results`). The rows that *were* delivered
/// are always an exact page-aligned prefix of the full result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incomplete {
    /// The category of the triggering fault (deadline lapse, backend-layer
    /// failure, ...).
    pub kind: ErrorKind,
    /// Human-readable description of the triggering fault.
    pub message: String,
    /// Rows delivered before the cut (the page-aligned prefix length).
    pub rows_delivered: u64,
    /// Logical LLM calls already spent when the query was cut short.
    pub calls_spent: u64,
}

impl fmt::Display for Incomplete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incomplete after {} row(s) / {} call(s): {}: {}",
            self.rows_delivered, self.calls_spent, self.kind, self.message
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)?;
        if let Some(off) = self.offset {
            write!(f, " (at offset {off})")?;
        }
        Ok(())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Error::parse("x").kind, ErrorKind::Parse);
        assert_eq!(Error::binding("x").kind, ErrorKind::Binding);
        assert_eq!(Error::schema("x").kind, ErrorKind::Schema);
        assert_eq!(Error::type_error("x").kind, ErrorKind::Type);
        assert_eq!(Error::plan("x").kind, ErrorKind::Plan);
        assert_eq!(Error::execution("x").kind, ErrorKind::Execution);
        assert_eq!(Error::llm("x").kind, ErrorKind::Llm);
        assert_eq!(Error::storage("x").kind, ErrorKind::Storage);
        assert_eq!(Error::unsupported("x").kind, ErrorKind::Unsupported);
        assert_eq!(Error::config("x").kind, ErrorKind::Config);
        assert_eq!(Error::scheduler("x").kind, ErrorKind::Scheduler);
        assert_eq!(
            Error::deadline_exceeded("x").kind,
            ErrorKind::DeadlineExceeded
        );
        assert!(Error::deadline_exceeded("late")
            .to_string()
            .contains("deadline exceeded"));
    }

    #[test]
    fn display_includes_offset() {
        let e = Error::parse("unexpected token").at(17);
        let s = e.to_string();
        assert!(s.contains("parse error"));
        assert!(s.contains("offset 17"));
        let e2 = Error::llm("timeout");
        assert_eq!(e2.to_string(), "llm error: timeout");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::parse("a"), Error::parse("a"));
        assert_ne!(Error::parse("a"), Error::binding("a"));
    }

    #[test]
    fn overloaded_carries_positive_retry_after() {
        let e = Error::overloaded(120, "queue past watermark");
        assert!(e.is_overloaded());
        assert_eq!(e.retry_after_ms(), Some(120));
        assert!(e.to_string().contains("overloaded"));
        // Zero is clamped: clients must never be told to retry immediately.
        assert_eq!(Error::overloaded(0, "x").retry_after_ms(), Some(1));
    }

    #[test]
    fn retry_after_hint_attaches_to_other_rejections() {
        let e = Error::scheduler("admission queue full").with_retry_after(250);
        assert_eq!(e.retry_after_ms(), Some(250));
        assert!(!e.is_overloaded());
        assert_eq!(Error::scheduler("plain").retry_after_ms(), None);
        let d = Error::deadline_exceeded("projected wait too long").with_retry_after(75);
        assert_eq!(d.retry_after_ms(), Some(75));
    }

    #[test]
    fn incomplete_marker_displays_accounting() {
        let m = Incomplete {
            kind: ErrorKind::DeadlineExceeded,
            message: "deadline lapsed mid-wave".to_string(),
            rows_delivered: 40,
            calls_spent: 2,
        };
        let s = m.to_string();
        assert!(s.contains("40 row(s)"));
        assert!(s.contains("2 call(s)"));
        assert!(s.contains("deadline exceeded"));
    }
}
