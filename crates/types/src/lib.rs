#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic exceptions, each a deliberate local judgment call rather than a
// bug class: numeric casts are used where the domain bounds the value, and
// must_use / doc-section lints would add noise to an internal API.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::enum_glob_use,
    clippy::float_cmp,
    clippy::if_not_else,
    clippy::match_same_arms,
    clippy::missing_errors_doc,
    clippy::missing_panics_doc,
    clippy::must_use_candidate,
    clippy::needless_pass_by_value,
    clippy::return_self_not_must_use,
    clippy::single_match_else,
    clippy::struct_excessive_bools,
    clippy::too_many_lines
)]
//! # llmsql-types
//!
//! Shared primitive types for the `llmsql` engine: scalar [`Value`]s, table
//! [`Schema`]s, [`Row`]s and [`Batch`]es, the unified [`Error`] type, and the
//! engine/LLM [`config`] knobs.
//!
//! Every other crate in the workspace depends on this one; it has no
//! dependencies on the rest of the engine.

#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod error;
pub mod ewma;
pub mod row;
pub mod sched;
pub mod schema;
pub mod value;

pub use chaos::{ChaosEffect, ChaosFault, ChaosPlan, ChaosWindow};
pub use config::{
    BackendSpec, EngineConfig, ExecutionMode, LlmCostModel, LlmFidelity, PromptStrategy,
    RoutingPolicy,
};
pub use error::{Error, ErrorKind, Incomplete, Result};
pub use ewma::AtomicEwmaMs;
pub use row::{Batch, Row};
pub use sched::{Priority, SchedConfig, SchedPolicy, TenantId, TenantRateLimit};
pub use schema::{Column, ColumnRef, DataType, Field, RelSchema, Schema};
pub use value::Value;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1e12f64..1e12f64).prop_map(Value::Float),
            "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Text),
        ]
    }

    proptest! {
        /// total_cmp is a total order: antisymmetric and transitive on samples.
        #[test]
        fn value_ordering_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
            use std::cmp::Ordering;
            let ab = a.total_cmp(&b);
            let ba = b.total_cmp(&a);
            prop_assert_eq!(ab, ba.reverse());
            if ab == Ordering::Less && b.total_cmp(&c) == Ordering::Less {
                prop_assert_eq!(a.total_cmp(&c), Ordering::Less);
            }
            prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        }

        /// semantic_eq implies equal hashes (hash-join safety).
        #[test]
        fn eq_implies_same_hash(a in arb_value(), b in arb_value()) {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            if a.semantic_eq(&b) {
                let mut ha = DefaultHasher::new();
                let mut hb = DefaultHasher::new();
                a.hash(&mut ha);
                b.hash(&mut hb);
                prop_assert_eq!(ha.finish(), hb.finish());
            }
        }

        /// Casting to text and leniently parsing back preserves integers.
        #[test]
        fn int_text_roundtrip(i in any::<i64>()) {
            let v = Value::Int(i);
            let t = v.cast(DataType::Text).unwrap();
            let back = t.cast(DataType::Int).unwrap();
            prop_assert_eq!(back, v);
        }

        /// Row project never panics and produces the requested arity.
        #[test]
        fn row_project_arity(vals in proptest::collection::vec(arb_value(), 0..8),
                             idxs in proptest::collection::vec(0usize..10, 0..8)) {
            let row = Row::new(vals);
            let p = row.project(&idxs);
            prop_assert_eq!(p.arity(), idxs.len());
        }
    }
}
