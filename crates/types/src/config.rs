//! Engine-wide configuration: execution modes, prompting strategies, and the
//! fidelity model of the simulated language model.

use std::fmt;

use crate::chaos::ChaosPlan;
use crate::error::{Error, Result};

/// How queries are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionMode {
    /// Classic execution against the relational store only.
    Traditional,
    /// Every base relation is virtual; all data comes from the language model.
    #[default]
    LlmOnly,
    /// Base relations live in the store but may have gaps (NULLs / missing
    /// rows) that the language model fills at query time.
    Hybrid,
}

impl ExecutionMode {
    /// All modes, for sweeps.
    pub const ALL: [ExecutionMode; 3] = [
        ExecutionMode::Traditional,
        ExecutionMode::LlmOnly,
        ExecutionMode::Hybrid,
    ];

    /// Parse from a user-facing name.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "traditional" | "store" | "baseline" => Ok(ExecutionMode::Traditional),
            "llm" | "llm_only" | "llm-only" | "llmonly" => Ok(ExecutionMode::LlmOnly),
            "hybrid" => Ok(ExecutionMode::Hybrid),
            other => Err(Error::config(format!("unknown execution mode '{other}'"))),
        }
    }
}

impl fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecutionMode::Traditional => "traditional",
            ExecutionMode::LlmOnly => "llm-only",
            ExecutionMode::Hybrid => "hybrid",
        };
        write!(f, "{s}")
    }
}

/// How the engine turns relational requests into prompts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PromptStrategy {
    /// The whole SQL statement is sent as a single prompt and the completion
    /// is parsed as the final result table. Cheapest, least reliable.
    FullQuery,
    /// Rows are requested in pages of `batch_size` per prompt; predicates and
    /// projections are pushed into the prompt. The paper-style default.
    #[default]
    BatchedRows,
    /// The engine first enumerates entity keys, then issues one prompt per
    /// tuple (or per attribute). Most calls, highest precision.
    TupleAtATime,
    /// The plan runs operator-at-a-time: scans, filters and joins each map to
    /// dedicated prompts over intermediate results.
    DecomposedOperators,
}

impl PromptStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [PromptStrategy; 4] = [
        PromptStrategy::FullQuery,
        PromptStrategy::BatchedRows,
        PromptStrategy::TupleAtATime,
        PromptStrategy::DecomposedOperators,
    ];

    /// Short label used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            PromptStrategy::FullQuery => "full-query",
            PromptStrategy::BatchedRows => "batched-rows",
            PromptStrategy::TupleAtATime => "tuple-at-a-time",
            PromptStrategy::DecomposedOperators => "decomposed-ops",
        }
    }

    /// Parse from a user-facing name.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "full-query" | "fullquery" | "full" => Ok(PromptStrategy::FullQuery),
            "batched-rows" | "batched" | "batch" => Ok(PromptStrategy::BatchedRows),
            "tuple-at-a-time" | "tuple" => Ok(PromptStrategy::TupleAtATime),
            "decomposed-ops" | "decomposed" | "operators" => {
                Ok(PromptStrategy::DecomposedOperators)
            }
            other => Err(Error::config(format!("unknown prompt strategy '{other}'"))),
        }
    }
}

impl fmt::Display for PromptStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// How the backend pool picks the endpoint serving the next LLM request.
///
/// Routing never changes query *results*: every backend of a pool must be
/// semantically identical (same completion text for the same prompt), so the
/// policy only shifts latency, load distribution and spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingPolicy {
    /// Rotate through the backends in registration order.
    #[default]
    RoundRobin,
    /// Prefer the backend with the fewest requests currently in flight
    /// (ties broken by registration order).
    LeastInFlight,
    /// Prefer the backend with the cheapest per-token pricing (ties broken by
    /// registration order); more expensive backends only serve failover
    /// traffic.
    CostAware,
    /// Start the candidate walk at `hash(prompt) % pool_size`: the backend
    /// serving each prompt is a pure function of the prompt text, so the
    /// *physical* per-backend trace is reproducible at any parallelism —
    /// round robin's cursor advances in request-arrival order, which thread
    /// interleaving scrambles; a prompt hash does not.
    PromptHash,
    /// Prefer the backend with the lowest exponentially-weighted moving
    /// average of *measured* request latency (ties broken by registration
    /// order). Backends without a sample yet sort first, so a cold pool
    /// explores every member once before settling on the fastest. The EWMA
    /// also drives hedged requests when hedging is enabled. Note the EWMA
    /// only updates on success — pair this policy with the circuit breaker
    /// to keep hard-down (sample-less) backends out of rotation.
    LatencyAware,
}

impl RoutingPolicy {
    /// All policies, for sweeps.
    pub const ALL: [RoutingPolicy; 5] = [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastInFlight,
        RoutingPolicy::CostAware,
        RoutingPolicy::PromptHash,
        RoutingPolicy::LatencyAware,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastInFlight => "least-in-flight",
            RoutingPolicy::CostAware => "cost-aware",
            RoutingPolicy::PromptHash => "prompt-hash",
            RoutingPolicy::LatencyAware => "latency-aware",
        }
    }

    /// Parse from a user-facing name.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "round-robin" | "roundrobin" | "rr" => Ok(RoutingPolicy::RoundRobin),
            "least-in-flight" | "least-loaded" | "lif" => Ok(RoutingPolicy::LeastInFlight),
            "cost-aware" | "cheapest" | "cost" => Ok(RoutingPolicy::CostAware),
            "prompt-hash" | "prompthash" | "hash" => Ok(RoutingPolicy::PromptHash),
            "latency-aware" | "latency" | "ewma" => Ok(RoutingPolicy::LatencyAware),
            other => Err(Error::config(format!("unknown routing policy '{other}'"))),
        }
    }
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Declarative description of one LLM endpoint in a multi-backend deployment.
///
/// The engine turns each spec into a deterministic "remote-like" backend
/// wrapping the attached model: same completions, but with the spec's own
/// latency, failure behaviour and pricing. See `llmsql_llm::backend` for the
/// runtime contract.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendSpec {
    /// Unique backend name (shows up in per-backend metrics).
    pub name: String,
    /// Simulated network round-trip per request, in milliseconds.
    pub latency_ms: f64,
    /// Probability in [0, 1] that one attempt on this backend fails with a
    /// transient error (deterministic per `(backend, prompt, attempt)`).
    /// `1.0` means the backend is hard down and every attempt fails.
    pub error_rate: f64,
    /// Per-backend pricing and latency model.
    pub cost_model: LlmCostModel,
}

impl BackendSpec {
    /// A healthy backend with default pricing and no extra latency.
    pub fn new(name: impl Into<String>) -> Self {
        BackendSpec {
            name: name.into(),
            latency_ms: 0.0,
            error_rate: 0.0,
            cost_model: LlmCostModel::default(),
        }
    }

    /// Builder-style: set the simulated per-request latency.
    pub fn with_latency_ms(mut self, latency_ms: f64) -> Self {
        self.latency_ms = latency_ms;
        self
    }

    /// Builder-style: set the per-attempt transient error probability.
    pub fn with_error_rate(mut self, error_rate: f64) -> Self {
        self.error_rate = error_rate;
        self
    }

    /// Builder-style: mark the backend as hard down (every attempt fails).
    pub fn failing(self) -> Self {
        self.with_error_rate(1.0)
    }

    /// Builder-style: set the per-backend pricing model.
    pub fn with_cost_model(mut self, cost_model: LlmCostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Validate the spec.
    pub fn validate(&self) -> Result<()> {
        if self.name.is_empty() {
            return Err(Error::config("backend name must not be empty"));
        }
        if !(0.0..=1.0).contains(&self.error_rate) || self.error_rate.is_nan() {
            return Err(Error::config(format!(
                "backend '{}' error_rate must be in [0,1], got {}",
                self.name, self.error_rate
            )));
        }
        if !self.latency_ms.is_finite() || self.latency_ms < 0.0 {
            return Err(Error::config(format!(
                "backend '{}' latency_ms must be finite and non-negative",
                self.name
            )));
        }
        Ok(())
    }
}

/// The fidelity model of the simulated language model: what fraction of facts
/// it recalls, how often it fabricates, and how noisy its formatting is.
///
/// These knobs stand in for "model quality" (GPT-3.5 vs GPT-4 vs a small open
/// model) in the paper's evaluation and let the experiments sweep model
/// quality reproducibly and offline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmFidelity {
    /// Probability that a fact present in the world is recalled correctly.
    pub recall: f64,
    /// Probability that a requested-but-unknown (or dropped) fact is replaced
    /// by a fabricated, plausible-looking value instead of being omitted.
    pub hallucination: f64,
    /// Probability that a recalled value is corrupted (off-by-some numeric
    /// error, misspelling, stale value).
    pub value_noise: f64,
    /// Probability that a structured response line violates the requested
    /// format (and may be dropped by the parser).
    pub format_noise: f64,
    /// Fraction of the entity population the model can enumerate when asked to
    /// list entities (coverage of the "long tail").
    pub enumeration_coverage: f64,
}

impl LlmFidelity {
    /// A perfect oracle: recalls everything, never fabricates. Useful for
    /// differential testing (LlmOnly at `perfect()` must match Traditional).
    pub fn perfect() -> Self {
        LlmFidelity {
            recall: 1.0,
            hallucination: 0.0,
            value_noise: 0.0,
            format_noise: 0.0,
            enumeration_coverage: 1.0,
        }
    }

    /// Default fidelity approximating a strong commercial model on
    /// head-entity factual queries.
    pub fn strong() -> Self {
        LlmFidelity {
            recall: 0.92,
            hallucination: 0.05,
            value_noise: 0.06,
            format_noise: 0.03,
            enumeration_coverage: 0.90,
        }
    }

    /// Fidelity approximating a mid-size open model.
    pub fn medium() -> Self {
        LlmFidelity {
            recall: 0.78,
            hallucination: 0.12,
            value_noise: 0.15,
            format_noise: 0.08,
            enumeration_coverage: 0.72,
        }
    }

    /// Fidelity approximating a small local model.
    pub fn weak() -> Self {
        LlmFidelity {
            recall: 0.55,
            hallucination: 0.25,
            value_noise: 0.28,
            format_noise: 0.18,
            enumeration_coverage: 0.50,
        }
    }

    /// Linear interpolation between [`weak`](Self::weak) (q = 0) and
    /// [`perfect`](Self::perfect) (q = 1); used for model-quality sweeps.
    pub fn from_quality(q: f64) -> Self {
        let q = q.clamp(0.0, 1.0);
        let lerp = |lo: f64, hi: f64| lo + (hi - lo) * q;
        let weak = Self::weak();
        let perfect = Self::perfect();
        LlmFidelity {
            recall: lerp(weak.recall, perfect.recall),
            hallucination: lerp(weak.hallucination, perfect.hallucination),
            value_noise: lerp(weak.value_noise, perfect.value_noise),
            format_noise: lerp(weak.format_noise, perfect.format_noise),
            enumeration_coverage: lerp(weak.enumeration_coverage, perfect.enumeration_coverage),
        }
    }

    /// Validate that every probability lies in [0, 1].
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("recall", self.recall),
            ("hallucination", self.hallucination),
            ("value_noise", self.value_noise),
            ("format_noise", self.format_noise),
            ("enumeration_coverage", self.enumeration_coverage),
        ] {
            if !(0.0..=1.0).contains(&v) || v.is_nan() {
                return Err(Error::config(format!(
                    "fidelity parameter '{name}' must be in [0,1], got {v}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for LlmFidelity {
    fn default() -> Self {
        LlmFidelity::strong()
    }
}

/// Pricing and latency model of the (simulated) model endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlmCostModel {
    /// Dollars per 1000 prompt tokens.
    pub usd_per_1k_prompt_tokens: f64,
    /// Dollars per 1000 completion tokens.
    pub usd_per_1k_completion_tokens: f64,
    /// Fixed per-request latency in milliseconds (network + queuing).
    pub request_latency_ms: f64,
    /// Additional latency per generated completion token, in milliseconds.
    pub per_token_latency_ms: f64,
}

impl Default for LlmCostModel {
    fn default() -> Self {
        // Ballpark of 2023-era commercial pricing; the absolute numbers only
        // matter for relative comparisons between strategies.
        LlmCostModel {
            usd_per_1k_prompt_tokens: 0.003,
            usd_per_1k_completion_tokens: 0.006,
            request_latency_ms: 350.0,
            per_token_latency_ms: 25.0,
        }
    }
}

impl LlmCostModel {
    /// Cost in dollars of a single request.
    pub fn request_cost_usd(&self, prompt_tokens: usize, completion_tokens: usize) -> f64 {
        prompt_tokens as f64 / 1000.0 * self.usd_per_1k_prompt_tokens
            + completion_tokens as f64 / 1000.0 * self.usd_per_1k_completion_tokens
    }

    /// Simulated latency in milliseconds of a single request.
    pub fn request_latency_ms(&self, completion_tokens: usize) -> f64 {
        self.request_latency_ms + completion_tokens as f64 * self.per_token_latency_ms
    }
}

/// Top-level engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Prompting strategy for LLM-backed operators.
    pub strategy: PromptStrategy,
    /// Fidelity of the simulated model.
    pub fidelity: LlmFidelity,
    /// Cost/latency model of the endpoint.
    pub cost_model: LlmCostModel,
    /// Page size for [`PromptStrategy::BatchedRows`].
    pub batch_size: usize,
    /// Tuple batching: how many per-tuple prompts (lookups, filter checks)
    /// may be packed into one physical LLM call where the scan strategy
    /// allows. The structured answer is split back per tuple, so rows and
    /// *logical* call counts are byte-identical at any setting — only the
    /// physical call count (and therefore cost) changes. `1` (the default)
    /// disables packing and preserves the one-prompt-per-call trace.
    pub batch_rows_per_call: usize,
    /// Hard cap on rows requested from a single virtual-table scan; protects
    /// against unbounded enumeration prompts.
    pub max_scan_rows: usize,
    /// Hard cap on LLM calls per query (budget guard).
    pub max_llm_calls: usize,
    /// Random seed driving the simulator's noise; fixed for reproducibility.
    pub seed: u64,
    /// Worker threads used to dispatch independent LLM requests (and to run
    /// CPU-heavy relational operators) concurrently. `1` means fully
    /// sequential execution; results are identical at any setting because
    /// scans reassemble completions in page/tuple order and the simulator's
    /// noise is a pure function of `(seed, prompt)`.
    pub parallelism: usize,
    /// Multi-backend deployment: when non-empty, the attached model is served
    /// through a pool of these endpoints (with failover) instead of being
    /// called directly. Empty (the default) means a single direct backend.
    pub backends: Vec<BackendSpec>,
    /// How the backend pool routes requests when `backends` is non-empty.
    pub routing_policy: RoutingPolicy,
    /// Retries per backend before failing over to the next one (bounded
    /// retry: a request touches each candidate backend at most
    /// `1 + backend_retries` times).
    pub backend_retries: usize,
    /// Base of the exponential backoff between retry attempts, in
    /// milliseconds (doubled per attempt, capped internally).
    pub backend_backoff_ms: f64,
    /// Circuit breaker: consecutive failed attempts after which a backend is
    /// taken out of the routing rotation ("open"). `0` (the default)
    /// disables the breaker, preserving PR 2's always-attempt behaviour.
    pub breaker_threshold: usize,
    /// Circuit breaker: how long an opened backend stays out of rotation
    /// before one half-open probe request is allowed through, milliseconds.
    pub breaker_cooldown_ms: f64,
    /// Hedged requests: once a dispatched request has been in flight longer
    /// than `hedge_multiplier` times the pool's lowest per-backend latency
    /// EWMA (but at least [`EngineConfig::hedge_min_ms`]), one duplicate of
    /// it is issued to a different healthy backend and the first success
    /// wins. `0.0` (the default) disables hedging; values >= 1.0 set the
    /// lateness threshold as a multiple of the expected latency (2.0 ~ "tail
    /// beyond twice the typical request"). Requires a multi-backend pool.
    pub hedge_multiplier: f64,
    /// Hedged requests: floor on the lateness threshold, milliseconds, so a
    /// near-zero EWMA cannot make every request look late.
    pub hedge_min_ms: f64,
    /// Per-query wall-clock deadline, milliseconds. Scans check it between
    /// dispatch waves and fail the query with
    /// [`crate::ErrorKind::DeadlineExceeded`] (carrying elapsed time and
    /// calls issued so far) once it passes. `None` (the default) means no
    /// deadline.
    pub deadline_ms: Option<f64>,
    /// Graceful degradation: when enabled, a batched LLM scan cut short by a
    /// lapsed deadline or a backend-layer failure returns the completed pages
    /// it already paid for — an exact page-aligned prefix of the full result
    /// — plus a structured [`crate::Incomplete`] marker in the execution
    /// metrics, instead of discarding the work with an error. Off by default
    /// (failures stay failures).
    pub partial_results: bool,
    /// Deterministic fault injection: when set, every backend built from
    /// [`EngineConfig::backends`] consults this seeded [`ChaosPlan`] —
    /// outages, error bursts and latency storms replay identically run after
    /// run. `None` (the default) injects nothing. Test/benchmark harness
    /// knob; see [`crate::chaos`].
    pub chaos: Option<ChaosPlan>,
    /// Whether the prompt cache is enabled.
    pub enable_prompt_cache: bool,
    /// Whether optimizer rules run (turned off by the ablation experiment).
    pub enable_optimizer: bool,
    /// Whether predicate pushdown into prompts is enabled (ablation).
    pub enable_predicate_pushdown: bool,
    /// Whether projection pruning into prompts is enabled (ablation).
    pub enable_projection_pruning: bool,
    /// Per-query spend budget in dollars, checked *statically*: the plan
    /// analyzer flags (and `EXPLAIN` reports) any plan whose estimated LLM
    /// spend exceeds it. `None` (the default) means no budget — nothing is
    /// flagged. Advisory only; the hard runtime cap stays
    /// [`EngineConfig::max_llm_calls`].
    pub cost_budget_usd: Option<f64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ExecutionMode::LlmOnly,
            strategy: PromptStrategy::BatchedRows,
            fidelity: LlmFidelity::default(),
            cost_model: LlmCostModel::default(),
            batch_size: 20,
            batch_rows_per_call: 1,
            max_scan_rows: 1000,
            max_llm_calls: 10_000,
            seed: 42,
            parallelism: 1,
            backends: Vec::new(),
            routing_policy: RoutingPolicy::RoundRobin,
            backend_retries: 1,
            backend_backoff_ms: 1.0,
            breaker_threshold: 0,
            breaker_cooldown_ms: 250.0,
            hedge_multiplier: 0.0,
            hedge_min_ms: 1.0,
            deadline_ms: None,
            partial_results: false,
            chaos: None,
            enable_prompt_cache: true,
            enable_optimizer: true,
            enable_predicate_pushdown: true,
            enable_projection_pruning: true,
            cost_budget_usd: None,
        }
    }
}

impl EngineConfig {
    /// Builder-style: set the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }
    /// Builder-style: set the prompting strategy.
    pub fn with_strategy(mut self, strategy: PromptStrategy) -> Self {
        self.strategy = strategy;
        self
    }
    /// Builder-style: set the simulator fidelity.
    pub fn with_fidelity(mut self, fidelity: LlmFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }
    /// Builder-style: set the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
    /// Builder-style: set the batched-rows page size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }
    /// Builder-style: set how many per-tuple prompts may be packed into one
    /// physical LLM call (see [`EngineConfig::batch_rows_per_call`]).
    pub fn with_batch_rows_per_call(mut self, rows_per_call: usize) -> Self {
        self.batch_rows_per_call = rows_per_call;
        self
    }
    /// Builder-style: set the worker-pool width for concurrent LLM dispatch
    /// and parallel relational operators.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }
    /// Builder-style: serve the attached model through a pool of backends
    /// (with failover) instead of calling it directly.
    pub fn with_backends(mut self, backends: Vec<BackendSpec>) -> Self {
        self.backends = backends;
        self
    }
    /// Builder-style: set the backend-pool routing policy.
    pub fn with_routing_policy(mut self, policy: RoutingPolicy) -> Self {
        self.routing_policy = policy;
        self
    }
    /// Builder-style: enable the backend circuit breaker — a backend is
    /// taken out of rotation after `threshold` consecutive failed attempts
    /// and probed again after `cooldown_ms` (see
    /// [`EngineConfig::breaker_threshold`]).
    pub fn with_circuit_breaker(mut self, threshold: usize, cooldown_ms: f64) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown_ms = cooldown_ms;
        self
    }
    /// Builder-style: enable hedged requests — duplicate a request to a
    /// second backend once it has been in flight longer than `multiplier`
    /// times the pool's lowest latency EWMA (floored at `min_ms`), taking
    /// the first success (see [`EngineConfig::hedge_multiplier`]).
    pub fn with_hedging(mut self, multiplier: f64, min_ms: f64) -> Self {
        self.hedge_multiplier = multiplier;
        self.hedge_min_ms = min_ms;
        self
    }
    /// Builder-style: set the per-query wall-clock deadline in milliseconds
    /// (see [`EngineConfig::deadline_ms`]).
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
    /// Builder-style: opt in to partial results under faults (see
    /// [`EngineConfig::partial_results`]).
    pub fn with_partial_results(mut self) -> Self {
        self.partial_results = true;
        self
    }
    /// Builder-style: inject a deterministic chaos plan into every backend
    /// (see [`EngineConfig::chaos`]).
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }
    /// Builder-style: set the advisory per-query spend budget in dollars
    /// (see [`EngineConfig::cost_budget_usd`]).
    pub fn with_cost_budget_usd(mut self, budget_usd: f64) -> Self {
        self.cost_budget_usd = Some(budget_usd);
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        self.fidelity.validate()?;
        let mut names = std::collections::BTreeSet::new();
        for backend in &self.backends {
            backend.validate()?;
            if !names.insert(backend.name.as_str()) {
                return Err(Error::config(format!(
                    "duplicate backend name '{}'",
                    backend.name
                )));
            }
        }
        if !self.backend_backoff_ms.is_finite() || self.backend_backoff_ms < 0.0 {
            return Err(Error::config(
                "backend_backoff_ms must be finite and non-negative",
            ));
        }
        if !self.breaker_cooldown_ms.is_finite() || self.breaker_cooldown_ms < 0.0 {
            return Err(Error::config(
                "breaker_cooldown_ms must be finite and non-negative",
            ));
        }
        if self.hedge_multiplier != 0.0
            && (!self.hedge_multiplier.is_finite() || self.hedge_multiplier < 1.0)
        {
            return Err(Error::config(
                "hedge_multiplier must be 0 (disabled) or a finite value >= 1",
            ));
        }
        if !self.hedge_min_ms.is_finite() || self.hedge_min_ms < 0.0 {
            return Err(Error::config(
                "hedge_min_ms must be finite and non-negative",
            ));
        }
        if let Some(deadline_ms) = self.deadline_ms {
            if !deadline_ms.is_finite() || deadline_ms <= 0.0 {
                return Err(Error::config(
                    "deadline_ms must be finite and greater than zero",
                ));
            }
        }
        if let Some(chaos) = &self.chaos {
            chaos.validate()?;
        }
        if let Some(budget) = self.cost_budget_usd {
            if !budget.is_finite() || budget <= 0.0 {
                return Err(Error::config(
                    "cost_budget_usd must be finite and greater than zero",
                ));
            }
        }
        if self.batch_size == 0 {
            return Err(Error::config("batch_size must be at least 1"));
        }
        if self.batch_rows_per_call == 0 {
            return Err(Error::config("batch_rows_per_call must be at least 1"));
        }
        if self.max_scan_rows == 0 {
            return Err(Error::config("max_scan_rows must be at least 1"));
        }
        if self.max_llm_calls == 0 {
            return Err(Error::config("max_llm_calls must be at least 1"));
        }
        if self.parallelism == 0 {
            return Err(Error::config("parallelism must be at least 1"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(
            ExecutionMode::parse("traditional").unwrap(),
            ExecutionMode::Traditional
        );
        assert_eq!(
            ExecutionMode::parse("LLM-only").unwrap(),
            ExecutionMode::LlmOnly
        );
        assert_eq!(
            ExecutionMode::parse("hybrid").unwrap(),
            ExecutionMode::Hybrid
        );
        assert!(ExecutionMode::parse("quantum").is_err());
        assert_eq!(ExecutionMode::Traditional.to_string(), "traditional");
    }

    #[test]
    fn strategy_parsing_and_labels() {
        for s in PromptStrategy::ALL {
            assert_eq!(PromptStrategy::parse(s.label()).unwrap(), s);
        }
        assert!(PromptStrategy::parse("telepathy").is_err());
    }

    #[test]
    fn fidelity_presets_are_valid_and_ordered() {
        for f in [
            LlmFidelity::perfect(),
            LlmFidelity::strong(),
            LlmFidelity::medium(),
            LlmFidelity::weak(),
        ] {
            f.validate().unwrap();
        }
        assert!(LlmFidelity::perfect().recall > LlmFidelity::strong().recall);
        assert!(LlmFidelity::strong().recall > LlmFidelity::medium().recall);
        assert!(LlmFidelity::medium().recall > LlmFidelity::weak().recall);
        assert!(LlmFidelity::weak().hallucination > LlmFidelity::strong().hallucination);
    }

    #[test]
    fn fidelity_from_quality_interpolates() {
        let lo = LlmFidelity::from_quality(0.0);
        let hi = LlmFidelity::from_quality(1.0);
        assert!((lo.recall - LlmFidelity::weak().recall).abs() < 1e-9);
        assert!((hi.recall - 1.0).abs() < 1e-9);
        let mid = LlmFidelity::from_quality(0.5);
        assert!(mid.recall > lo.recall && mid.recall < hi.recall);
        // clamped
        assert_eq!(LlmFidelity::from_quality(7.0).recall, 1.0);
    }

    #[test]
    fn fidelity_validation_rejects_out_of_range() {
        let mut f = LlmFidelity {
            recall: 1.5,
            ..LlmFidelity::default()
        };
        assert!(f.validate().is_err());
        f.recall = f64::NAN;
        assert!(f.validate().is_err());
    }

    #[test]
    fn cost_model_math() {
        let m = LlmCostModel::default();
        let c = m.request_cost_usd(1000, 1000);
        assert!((c - 0.009).abs() < 1e-12);
        assert!(m.request_latency_ms(10) > m.request_latency_ms);
    }

    #[test]
    fn config_builder_and_validation() {
        let cfg = EngineConfig::default()
            .with_mode(ExecutionMode::Hybrid)
            .with_strategy(PromptStrategy::TupleAtATime)
            .with_seed(7)
            .with_batch_size(5)
            .with_parallelism(4);
        assert_eq!(cfg.mode, ExecutionMode::Hybrid);
        assert_eq!(cfg.strategy, PromptStrategy::TupleAtATime);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.parallelism, 4);
        cfg.validate().unwrap();

        let bad = EngineConfig::default().with_batch_size(0);
        assert!(bad.validate().is_err());
        let bad = EngineConfig::default().with_parallelism(0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn parallelism_defaults_to_sequential() {
        assert_eq!(EngineConfig::default().parallelism, 1);
    }

    #[test]
    fn routing_policy_parsing_and_labels() {
        for p in RoutingPolicy::ALL {
            assert_eq!(RoutingPolicy::parse(p.label()).unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(
            RoutingPolicy::parse("rr").unwrap(),
            RoutingPolicy::RoundRobin
        );
        assert_eq!(
            RoutingPolicy::parse("cheapest").unwrap(),
            RoutingPolicy::CostAware
        );
        assert!(RoutingPolicy::parse("dowsing").is_err());
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::RoundRobin);
    }

    #[test]
    fn backend_spec_builders_and_validation() {
        let spec = BackendSpec::new("edge-1")
            .with_latency_ms(5.0)
            .with_error_rate(0.25);
        assert_eq!(spec.name, "edge-1");
        assert_eq!(spec.latency_ms, 5.0);
        assert_eq!(spec.error_rate, 0.25);
        spec.validate().unwrap();
        assert_eq!(BackendSpec::new("down").failing().error_rate, 1.0);

        assert!(BackendSpec::new("").validate().is_err());
        assert!(BackendSpec::new("x")
            .with_error_rate(1.5)
            .validate()
            .is_err());
        assert!(BackendSpec::new("x")
            .with_latency_ms(-1.0)
            .validate()
            .is_err());
        assert!(BackendSpec::new("x")
            .with_latency_ms(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn config_validates_backend_lists() {
        let good = EngineConfig::default()
            .with_backends(vec![BackendSpec::new("a"), BackendSpec::new("b").failing()])
            .with_routing_policy(RoutingPolicy::LeastInFlight);
        assert_eq!(good.backends.len(), 2);
        assert_eq!(good.routing_policy, RoutingPolicy::LeastInFlight);
        good.validate().unwrap();

        let dup = EngineConfig::default()
            .with_backends(vec![BackendSpec::new("a"), BackendSpec::new("a")]);
        assert!(dup.validate().is_err());

        let bad_rate = EngineConfig::default()
            .with_backends(vec![BackendSpec::new("a").with_error_rate(f64::NAN)]);
        assert!(bad_rate.validate().is_err());

        let bad_backoff = EngineConfig {
            backend_backoff_ms: -1.0,
            ..EngineConfig::default()
        };
        assert!(bad_backoff.validate().is_err());
    }

    #[test]
    fn hedging_and_deadline_config() {
        // Both off by default: PR 2/3 deployments keep their exact behaviour.
        let default = EngineConfig::default();
        assert_eq!(default.hedge_multiplier, 0.0);
        assert_eq!(default.deadline_ms, None);

        let cfg = EngineConfig::default()
            .with_hedging(2.0, 5.0)
            .with_deadline_ms(1500.0);
        assert_eq!(cfg.hedge_multiplier, 2.0);
        assert_eq!(cfg.hedge_min_ms, 5.0);
        assert_eq!(cfg.deadline_ms, Some(1500.0));
        cfg.validate().unwrap();

        // A sub-1 multiplier would hedge requests that are *faster* than
        // expected; reject it.
        assert!(EngineConfig::default()
            .with_hedging(0.5, 1.0)
            .validate()
            .is_err());
        assert!(EngineConfig::default()
            .with_hedging(f64::NAN, 1.0)
            .validate()
            .is_err());
        assert!(EngineConfig::default()
            .with_hedging(2.0, -1.0)
            .validate()
            .is_err());
        assert!(EngineConfig::default()
            .with_deadline_ms(0.0)
            .validate()
            .is_err());
        assert!(EngineConfig::default()
            .with_deadline_ms(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn chaos_and_partial_results_config() {
        use crate::chaos::{ChaosFault, ChaosPlan};
        // Both off by default: existing deployments keep their behaviour.
        let default = EngineConfig::default();
        assert!(!default.partial_results);
        assert!(default.chaos.is_none());

        let cfg = EngineConfig::default().with_partial_results().with_chaos(
            ChaosPlan::new(7, 10_000).with_window("edge-a", ChaosFault::Outage, 0, 1_000),
        );
        assert!(cfg.partial_results);
        cfg.validate().unwrap();

        // An invalid plan fails engine-config validation too.
        let bad = EngineConfig::default().with_chaos(ChaosPlan::new(7, 0));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn circuit_breaker_config() {
        // Disabled by default: PR 2 deployments keep their exact behaviour.
        assert_eq!(EngineConfig::default().breaker_threshold, 0);
        let cfg = EngineConfig::default().with_circuit_breaker(5, 100.0);
        assert_eq!(cfg.breaker_threshold, 5);
        assert_eq!(cfg.breaker_cooldown_ms, 100.0);
        cfg.validate().unwrap();
        assert!(EngineConfig::default()
            .with_circuit_breaker(5, f64::NAN)
            .validate()
            .is_err());
        assert!(EngineConfig::default()
            .with_circuit_breaker(5, -1.0)
            .validate()
            .is_err());
    }
}
