//! Deterministic fault injection: a seeded, replayable schedule of backend
//! misbehavior (the "chaos plan") that any multi-backend scenario can apply
//! to exercise retries, breakers, hedging, failover and graceful degradation
//! under the *exact same* bad day, run after run.
//!
//! # Virtual time
//!
//! A [`ChaosPlan`] never looks at the wall clock: each prompt is mapped to a
//! deterministic **virtual timestamp** in `[0, horizon_ms)` by hashing the
//! prompt text with the plan's seed ([`ChaosPlan::virtual_ms`]). Every
//! backend sees the *same* virtual time for a given prompt, so an outage
//! window on one backend leaves its siblings healthy for that prompt and
//! failover works exactly like it would against correlated real-world
//! faults — while whether a given prompt lands inside a window is a pure
//! function of `(plan seed, prompt)`, independent of thread interleaving,
//! parallelism, or wall-clock time.
//!
//! # Faults
//!
//! A [`ChaosWindow`] scopes one [`ChaosFault`] to one backend and one
//! virtual-time interval. Several windows may overlap; their effects compose
//! ([`ChaosPlan::effect`]): any active outage (or a flapping window's "down"
//! phase) makes the backend hard-down, error rates take the maximum of the
//! active bursts, latency factors multiply.

use std::fmt;

use crate::error::{Error, Result};

/// One kind of injected backend misbehavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosFault {
    /// The backend is hard-down: every attempt fails immediately.
    Outage,
    /// Attempts fail with the given probability (deterministically derived
    /// per `(backend, prompt, attempt)`), on top of the backend's configured
    /// base error rate.
    ErrorBurst {
        /// Probability in `[0, 1]` that an attempt fails during the window.
        error_rate: f64,
    },
    /// Simulated latency is multiplied by a constant factor for the whole
    /// window (a correlated slowdown: overloaded endpoint, degraded route).
    LatencyStorm {
        /// Multiplier applied to the backend's simulated latency (≥ 1).
        factor: f64,
    },
    /// Simulated latency degrades gradually: the multiplier ramps linearly
    /// from 1× at the window start to `max_factor` at the window end (a
    /// leaking connection pool, a filling disk).
    SlowDrip {
        /// Latency multiplier reached at the end of the window (≥ 1).
        max_factor: f64,
    },
    /// The backend alternates between down and healthy phases of equal
    /// length within the window, starting down (a crash-looping endpoint).
    Flapping {
        /// Length of each down/up phase in virtual milliseconds (≥ 1).
        period_ms: u64,
    },
}

impl fmt::Display for ChaosFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosFault::Outage => write!(f, "outage"),
            ChaosFault::ErrorBurst { error_rate } => write!(f, "error-burst({error_rate})"),
            ChaosFault::LatencyStorm { factor } => write!(f, "latency-storm({factor}x)"),
            ChaosFault::SlowDrip { max_factor } => write!(f, "slow-drip(->{max_factor}x)"),
            ChaosFault::Flapping { period_ms } => write!(f, "flapping({period_ms}ms)"),
        }
    }
}

/// One fault applied to one backend over one virtual-time interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosWindow {
    /// Name of the backend the fault applies to ([`crate::BackendSpec`]
    /// name).
    pub backend: String,
    /// The injected misbehavior.
    pub fault: ChaosFault,
    /// Start of the window in virtual milliseconds (inclusive).
    pub start_ms: u64,
    /// End of the window in virtual milliseconds (exclusive).
    pub end_ms: u64,
}

/// The combined fault effect on one backend at one virtual timestamp, after
/// composing every active [`ChaosWindow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosEffect {
    /// The backend is hard-down (an outage or a flapping down-phase is
    /// active): every attempt must fail without producing a completion.
    pub down: bool,
    /// Additional attempt failure probability in `[0, 1]` (maximum over
    /// active error bursts; 0 when none is active).
    pub error_rate: f64,
    /// Multiplier on the backend's simulated latency (product of active
    /// storms and drips; 1 when none is active).
    pub latency_factor: f64,
}

impl ChaosEffect {
    /// The no-fault effect: healthy backend, no extra errors, 1× latency.
    pub const NONE: ChaosEffect = ChaosEffect {
        down: false,
        error_rate: 0.0,
        latency_factor: 1.0,
    };

    /// Whether this effect changes backend behavior at all.
    pub fn is_none(&self) -> bool {
        !self.down && self.error_rate == 0.0 && self.latency_factor == 1.0
    }
}

/// A seeded, deterministic schedule of backend faults. See the module docs
/// for the virtual-time model.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Seed for the prompt → virtual-time mapping. Two plans with the same
    /// windows but different seeds hit different prompts with each fault.
    pub seed: u64,
    /// Length of the virtual timeline in milliseconds; every prompt maps to
    /// a timestamp in `[0, horizon_ms)`.
    pub horizon_ms: u64,
    /// The scheduled fault windows (order is irrelevant; effects compose).
    pub windows: Vec<ChaosWindow>,
}

impl ChaosPlan {
    /// An empty plan (no faults) over the given virtual horizon.
    pub fn new(seed: u64, horizon_ms: u64) -> Self {
        ChaosPlan {
            seed,
            horizon_ms,
            windows: Vec::new(),
        }
    }

    /// Builder-style: schedule one fault window
    /// (`[start_ms, end_ms)` in virtual time) on the named backend.
    pub fn with_window(
        mut self,
        backend: impl Into<String>,
        fault: ChaosFault,
        start_ms: u64,
        end_ms: u64,
    ) -> Self {
        self.windows.push(ChaosWindow {
            backend: backend.into(),
            fault,
            start_ms,
            end_ms,
        });
        self
    }

    /// Map a prompt to its virtual timestamp in `[0, horizon_ms)`: a pure
    /// function of `(seed, prompt)`, stable across runs, threads, and
    /// backends.
    pub fn virtual_ms(&self, prompt: &str) -> u64 {
        hash_str(prompt, self.seed) % self.horizon_ms.max(1)
    }

    /// The composed fault effect on `backend` at virtual time `vt_ms`.
    pub fn effect(&self, backend: &str, vt_ms: u64) -> ChaosEffect {
        let mut effect = ChaosEffect::NONE;
        for w in &self.windows {
            if w.backend != backend || vt_ms < w.start_ms || vt_ms >= w.end_ms {
                continue;
            }
            match w.fault {
                ChaosFault::Outage => effect.down = true,
                ChaosFault::ErrorBurst { error_rate } => {
                    effect.error_rate = effect.error_rate.max(error_rate);
                }
                ChaosFault::LatencyStorm { factor } => effect.latency_factor *= factor,
                ChaosFault::SlowDrip { max_factor } => {
                    let span = (w.end_ms - w.start_ms).max(1) as f64;
                    let progress = (vt_ms - w.start_ms) as f64 / span;
                    effect.latency_factor *= 1.0 + (max_factor - 1.0) * progress;
                }
                ChaosFault::Flapping { period_ms } => {
                    let phase = (vt_ms - w.start_ms) / period_ms.max(1);
                    if phase.is_multiple_of(2) {
                        effect.down = true;
                    }
                }
            }
        }
        effect
    }

    /// Convenience: the composed effect for a prompt on a backend.
    pub fn effect_for_prompt(&self, backend: &str, prompt: &str) -> ChaosEffect {
        self.effect(backend, self.virtual_ms(prompt))
    }

    /// Validate the plan.
    pub fn validate(&self) -> Result<()> {
        if self.horizon_ms == 0 {
            return Err(Error::config("chaos horizon_ms must be at least 1"));
        }
        for w in &self.windows {
            if w.backend.is_empty() {
                return Err(Error::config("chaos window backend name must be non-empty"));
            }
            if w.end_ms <= w.start_ms {
                return Err(Error::config(format!(
                    "chaos window on '{}' is empty: [{}, {})",
                    w.backend, w.start_ms, w.end_ms
                )));
            }
            match w.fault {
                ChaosFault::ErrorBurst { error_rate } => {
                    if !error_rate.is_finite() || !(0.0..=1.0).contains(&error_rate) {
                        return Err(Error::config(format!(
                            "chaos error burst rate must be in [0, 1], got {error_rate}"
                        )));
                    }
                }
                ChaosFault::LatencyStorm { factor } => {
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(Error::config(format!(
                            "chaos latency storm factor must be finite and >= 1, got {factor}"
                        )));
                    }
                }
                ChaosFault::SlowDrip { max_factor } => {
                    if !max_factor.is_finite() || max_factor < 1.0 {
                        return Err(Error::config(format!(
                            "chaos slow-drip max factor must be finite and >= 1, got {max_factor}"
                        )));
                    }
                }
                ChaosFault::Flapping { period_ms } => {
                    if period_ms == 0 {
                        return Err(Error::config("chaos flapping period_ms must be at least 1"));
                    }
                }
                ChaosFault::Outage => {}
            }
        }
        Ok(())
    }
}

/// Deterministic 64-bit string hash (splitmix64 finalizer folded over the
/// bytes). Self-contained on purpose: `llmsql-types` sits below the LLM
/// crate's noise helpers and must not depend on `std`'s `DefaultHasher`
/// stability either.
fn hash_str(s: &str, seed: u64) -> u64 {
    let mut h = seed ^ 0x51_7C_C1_B7_27_22_0A_95;
    for chunk in s.as_bytes().chunks(8) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= u64::from(b) << (8 * i);
        }
        h = splitmix64(h ^ word);
    }
    splitmix64(h ^ s.len() as u64)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChaosPlan {
        ChaosPlan::new(7, 10_000)
            .with_window("edge-a", ChaosFault::Outage, 0, 3_000)
            .with_window(
                "edge-b",
                ChaosFault::LatencyStorm { factor: 20.0 },
                2_000,
                6_000,
            )
            .with_window(
                "edge-c",
                ChaosFault::ErrorBurst { error_rate: 0.8 },
                4_000,
                8_000,
            )
            .with_window(
                "edge-d",
                ChaosFault::Flapping { period_ms: 500 },
                1_000,
                5_000,
            )
            .with_window(
                "edge-b",
                ChaosFault::SlowDrip { max_factor: 5.0 },
                6_000,
                10_000,
            )
    }

    #[test]
    fn virtual_time_is_deterministic_and_in_range() {
        let p = plan();
        for prompt in ["SELECT 1", "page 3 of countries", ""] {
            let vt = p.virtual_ms(prompt);
            assert!(vt < p.horizon_ms);
            assert_eq!(vt, p.virtual_ms(prompt), "same prompt, same vt");
        }
        // Different seeds shuffle prompts to different timestamps.
        let other = ChaosPlan::new(8, 10_000);
        let hits = ["a", "b", "c", "d", "e", "f", "g", "h"]
            .iter()
            .filter(|s| p.virtual_ms(s) != other.virtual_ms(s))
            .count();
        assert!(hits > 0, "seed must affect the mapping");
    }

    #[test]
    fn effects_compose_per_window() {
        let p = plan();
        assert_eq!(
            p.effect("edge-a", 1_000),
            ChaosEffect {
                down: true,
                error_rate: 0.0,
                latency_factor: 1.0
            }
        );
        assert!(p.effect("edge-a", 3_000).is_none(), "end is exclusive");
        assert_eq!(p.effect("edge-b", 2_500).latency_factor, 20.0);
        assert_eq!(p.effect("edge-c", 4_000).error_rate, 0.8);
        assert!(!p.effect("edge-c", 4_000).down);
        assert!(p.effect("nonexistent", 2_500).is_none());
    }

    #[test]
    fn flapping_alternates_starting_down() {
        let p = plan();
        assert!(p.effect("edge-d", 1_000).down, "phase 0 is down");
        assert!(p.effect("edge-d", 1_499).down);
        assert!(!p.effect("edge-d", 1_500).down, "phase 1 is up");
        assert!(p.effect("edge-d", 2_000).down, "phase 2 is down again");
    }

    #[test]
    fn slow_drip_ramps_linearly() {
        let p = plan();
        let start = p.effect("edge-b", 6_000).latency_factor;
        let mid = p.effect("edge-b", 8_000).latency_factor;
        let late = p.effect("edge-b", 9_999).latency_factor;
        assert_eq!(start, 1.0);
        assert!(
            (mid - 3.0).abs() < 1e-9,
            "midpoint of a 1->5 ramp is 3, got {mid}"
        );
        assert!(late > 4.9 && late < 5.0);
    }

    #[test]
    fn overlapping_latency_windows_multiply() {
        let p = ChaosPlan::new(1, 1_000)
            .with_window("e", ChaosFault::LatencyStorm { factor: 2.0 }, 0, 1_000)
            .with_window("e", ChaosFault::LatencyStorm { factor: 3.0 }, 0, 1_000);
        assert_eq!(p.effect("e", 500).latency_factor, 6.0);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(ChaosPlan::new(1, 0).validate().is_err());
        assert!(plan().validate().is_ok());
        let bad = |f: ChaosFault| {
            ChaosPlan::new(1, 100)
                .with_window("e", f, 0, 50)
                .validate()
                .is_err()
        };
        assert!(bad(ChaosFault::ErrorBurst { error_rate: 1.5 }));
        assert!(bad(ChaosFault::ErrorBurst {
            error_rate: f64::NAN
        }));
        assert!(bad(ChaosFault::LatencyStorm { factor: 0.5 }));
        assert!(bad(ChaosFault::SlowDrip { max_factor: 0.0 }));
        assert!(bad(ChaosFault::Flapping { period_ms: 0 }));
        assert!(ChaosPlan::new(1, 100)
            .with_window("e", ChaosFault::Outage, 50, 50)
            .validate()
            .is_err());
        assert!(ChaosPlan::new(1, 100)
            .with_window("", ChaosFault::Outage, 0, 50)
            .validate()
            .is_err());
    }
}
