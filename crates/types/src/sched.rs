//! Cross-query scheduling types: tenants, priorities, scheduling policies
//! and the [`SchedConfig`] consumed by `llmsql-sched`'s `QueryScheduler`.
//!
//! These live in `llmsql-types` (like [`crate::EngineConfig`]) so every layer
//! can talk about tenants and scheduling without depending on the scheduler
//! runtime itself.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Error, Result};

/// Identifies the tenant (user, team, API key) a query is submitted under.
/// Quotas and fair-share weights are tracked per tenant.
pub type TenantId = String;

/// Query priority: higher values run first under [`SchedPolicy::Priority`].
///
/// Ordering is total (`u8` semantics); ties are broken by admission order, so
/// equal-priority queries never reorder relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u8);

impl Priority {
    /// Background / best-effort work.
    pub const LOW: Priority = Priority(0);
    /// The default for interactive queries.
    pub const NORMAL: Priority = Priority(10);
    /// Latency-sensitive work that should jump the queue.
    pub const HIGH: Priority = Priority(20);
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// How the scheduler picks the next admitted query to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Strict admission order across all tenants.
    #[default]
    Fifo,
    /// Highest [`Priority`] first; admission order within a priority level.
    Priority,
    /// Weighted fair share across tenants via per-tenant deficit counters:
    /// every completed query charges its tenant's counter by the LLM calls it
    /// consumed, and the scheduler always serves the tenant with the smallest
    /// weight-normalized charge. Under sustained backlog, completed-call
    /// shares converge to the configured [`SchedConfig::tenant_weights`].
    WeightedFair,
}

impl SchedPolicy {
    /// All policies, for sweeps.
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::Fifo,
        SchedPolicy::Priority,
        SchedPolicy::WeightedFair,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Priority => "priority",
            SchedPolicy::WeightedFair => "weighted-fair",
        }
    }

    /// Parse from a user-facing name.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "fifo" | "arrival" => Ok(SchedPolicy::Fifo),
            "priority" | "prio" => Ok(SchedPolicy::Priority),
            "weighted-fair" | "fair" | "drr" | "wfq" => Ok(SchedPolicy::WeightedFair),
            other => Err(Error::config(format!(
                "unknown scheduling policy '{other}'"
            ))),
        }
    }
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Per-tenant token-bucket rate limits, enforced at admission. Each axis is
/// independent; a `0` rate disables that axis (unlimited).
///
/// The query axis is pre-paid: a submission takes one token or is rejected
/// with [`crate::ErrorKind::Overloaded`]. The LLM-call axis is post-paid
/// (a query's call count is only known at completion): admission requires
/// positive call credit and completion debits the actual calls consumed, so
/// a burst can overdraw the bucket once but the tenant then waits out the
/// debt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRateLimit {
    /// Sustained admissions per second (0 = unlimited).
    pub queries_per_sec: f64,
    /// Burst capacity of the query bucket, in queries (≥ 1 when the axis is
    /// enabled).
    pub query_burst: f64,
    /// Sustained LLM calls per second (0 = unlimited).
    pub llm_calls_per_sec: f64,
    /// Burst capacity of the call bucket, in calls (≥ 1 when the axis is
    /// enabled).
    pub call_burst: f64,
}

impl TenantRateLimit {
    /// A limit on admissions per second only (call axis unlimited).
    pub fn queries(per_sec: f64, burst: f64) -> Self {
        TenantRateLimit {
            queries_per_sec: per_sec,
            query_burst: burst,
            llm_calls_per_sec: 0.0,
            call_burst: 0.0,
        }
    }

    /// A limit on LLM calls per second only (query axis unlimited).
    pub fn llm_calls(per_sec: f64, burst: f64) -> Self {
        TenantRateLimit {
            queries_per_sec: 0.0,
            query_burst: 0.0,
            llm_calls_per_sec: per_sec,
            call_burst: burst,
        }
    }

    /// Whether any axis is enabled.
    pub fn is_enabled(&self) -> bool {
        self.queries_per_sec > 0.0 || self.llm_calls_per_sec > 0.0
    }

    /// Validate the limit.
    pub fn validate(&self) -> Result<()> {
        for (name, rate, burst) in [
            ("queries", self.queries_per_sec, self.query_burst),
            ("llm_calls", self.llm_calls_per_sec, self.call_burst),
        ] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(Error::config(format!(
                    "{name}_per_sec must be finite and >= 0, got {rate}"
                )));
            }
            if !burst.is_finite() || burst < 0.0 {
                return Err(Error::config(format!(
                    "{name} burst must be finite and >= 0, got {burst}"
                )));
            }
            if rate > 0.0 && burst < 1.0 {
                return Err(Error::config(format!(
                    "{name} burst must be >= 1 when the axis is enabled, got {burst}"
                )));
            }
        }
        Ok(())
    }
}

/// Configuration of the cross-query scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedConfig {
    /// Global pool of LLM-call slots shared by every running query: at most
    /// this many model requests are in flight across the whole deployment,
    /// regardless of how many queries run or what `parallelism` each uses.
    pub llm_slots: usize,
    /// Worker threads executing admitted queries (queries running at once).
    pub workers: usize,
    /// Hard cap on queries queued (admitted but not yet running) across all
    /// tenants; submissions beyond it are rejected at admission.
    pub max_queue_depth: usize,
    /// Per-tenant cap on queued queries, so one tenant cannot fill the whole
    /// admission queue.
    pub tenant_queue_cap: usize,
    /// How the next query is picked from the admission queue.
    pub policy: SchedPolicy,
    /// Fair-share weights per tenant ([`SchedPolicy::WeightedFair`] only).
    /// Tenants absent from the map get [`SchedConfig::default_weight`].
    pub tenant_weights: BTreeMap<TenantId, u32>,
    /// Weight for tenants without an explicit entry in `tenant_weights`.
    pub default_weight: u32,
    /// Start with the workers paused: submissions queue up but nothing runs
    /// until `QueryScheduler::resume` is called. Lets tests (and batch
    /// loads) build a backlog so the policy, not arrival order, decides the
    /// run order.
    pub start_paused: bool,
    /// Rate limit applied to tenants without an explicit entry in
    /// [`SchedConfig::tenant_rate_limits`] (`None` = unlimited).
    pub default_rate_limit: Option<TenantRateLimit>,
    /// Per-tenant token-bucket rate limits, enforced at admission with
    /// structured [`crate::ErrorKind::Overloaded`] rejections.
    pub tenant_rate_limits: BTreeMap<TenantId, TenantRateLimit>,
    /// Load-shedding watermark on queue depth: once this many queries are
    /// queued, an incoming submission with lower priority than the highest
    /// currently queued is shed with [`crate::ErrorKind::Overloaded`]
    /// (0 = disabled). Shedding is loss-less: the query never started.
    pub shed_queue_watermark: usize,
    /// Load-shedding watermark on *projected* queue wait in milliseconds
    /// (run-time EWMA × backlog / workers): same shed-lowest-priority-first
    /// rule as the depth watermark (0.0 = disabled).
    pub shed_wait_watermark_ms: f64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            llm_slots: 8,
            workers: 4,
            max_queue_depth: 256,
            tenant_queue_cap: 64,
            policy: SchedPolicy::Fifo,
            tenant_weights: BTreeMap::new(),
            default_weight: 1,
            start_paused: false,
            default_rate_limit: None,
            tenant_rate_limits: BTreeMap::new(),
            shed_queue_watermark: 0,
            shed_wait_watermark_ms: 0.0,
        }
    }
}

impl SchedConfig {
    /// Builder-style: set the global LLM-call slot pool size.
    pub fn with_llm_slots(mut self, llm_slots: usize) -> Self {
        self.llm_slots = llm_slots;
        self
    }
    /// Builder-style: set the number of query worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
    /// Builder-style: set the global admission-queue depth.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }
    /// Builder-style: set the per-tenant queued-query cap.
    pub fn with_tenant_queue_cap(mut self, cap: usize) -> Self {
        self.tenant_queue_cap = cap;
        self
    }
    /// Builder-style: set the scheduling policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }
    /// Builder-style: set one tenant's fair-share weight.
    pub fn with_tenant_weight(mut self, tenant: impl Into<TenantId>, weight: u32) -> Self {
        self.tenant_weights.insert(tenant.into(), weight);
        self
    }
    /// Builder-style: start paused (see [`SchedConfig::start_paused`]).
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }
    /// Builder-style: set one tenant's token-bucket rate limit.
    pub fn with_tenant_rate_limit(
        mut self,
        tenant: impl Into<TenantId>,
        limit: TenantRateLimit,
    ) -> Self {
        self.tenant_rate_limits.insert(tenant.into(), limit);
        self
    }
    /// Builder-style: set the rate limit for tenants without an explicit one.
    pub fn with_default_rate_limit(mut self, limit: TenantRateLimit) -> Self {
        self.default_rate_limit = Some(limit);
        self
    }
    /// Builder-style: enable shed-lowest-priority-first past a queue depth.
    pub fn with_shed_queue_watermark(mut self, depth: usize) -> Self {
        self.shed_queue_watermark = depth;
        self
    }
    /// Builder-style: enable shedding past a projected queue wait.
    pub fn with_shed_wait_watermark_ms(mut self, wait_ms: f64) -> Self {
        self.shed_wait_watermark_ms = wait_ms;
        self
    }

    /// The rate limit applying to a tenant, if any.
    pub fn rate_limit_of(&self, tenant: &str) -> Option<&TenantRateLimit> {
        self.tenant_rate_limits
            .get(tenant)
            .or(self.default_rate_limit.as_ref())
            .filter(|l| l.is_enabled())
    }

    /// The fair-share weight of a tenant. Never returns zero, even for a
    /// configuration built by struct literal that skipped
    /// [`SchedConfig::validate`]: a zero weight would turn the scheduler's
    /// weight-normalized deficits into `inf`/`NaN` and silently break
    /// ordering, so the accessor clamps defensively.
    pub fn weight_of(&self, tenant: &str) -> u32 {
        self.tenant_weights
            .get(tenant)
            .copied()
            .unwrap_or(self.default_weight)
            .max(1)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.llm_slots == 0 {
            return Err(Error::config("llm_slots must be at least 1"));
        }
        if self.workers == 0 {
            return Err(Error::config("workers must be at least 1"));
        }
        if self.max_queue_depth == 0 {
            return Err(Error::config("max_queue_depth must be at least 1"));
        }
        if self.tenant_queue_cap == 0 {
            return Err(Error::config("tenant_queue_cap must be at least 1"));
        }
        if self.default_weight == 0 {
            return Err(Error::config("default_weight must be at least 1"));
        }
        for (tenant, weight) in &self.tenant_weights {
            if *weight == 0 {
                return Err(Error::config(format!(
                    "tenant '{tenant}' has weight 0; weights must be at least 1"
                )));
            }
        }
        if let Some(limit) = &self.default_rate_limit {
            limit.validate()?;
        }
        for limit in self.tenant_rate_limits.values() {
            limit.validate()?;
        }
        if !self.shed_wait_watermark_ms.is_finite() || self.shed_wait_watermark_ms < 0.0 {
            return Err(Error::config(
                "shed_wait_watermark_ms must be finite and >= 0",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_and_labels() {
        assert!(Priority::HIGH > Priority::NORMAL);
        assert!(Priority::NORMAL > Priority::LOW);
        assert_eq!(Priority::default(), Priority::NORMAL);
        assert_eq!(Priority(7).to_string(), "p7");
    }

    #[test]
    fn policy_parsing_round_trips() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.label()).unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(
            SchedPolicy::parse("drr").unwrap(),
            SchedPolicy::WeightedFair
        );
        assert!(SchedPolicy::parse("lottery").is_err());
        assert_eq!(SchedPolicy::default(), SchedPolicy::Fifo);
    }

    #[test]
    fn config_builders_and_weights() {
        let cfg = SchedConfig::default()
            .with_llm_slots(3)
            .with_workers(2)
            .with_max_queue_depth(10)
            .with_tenant_queue_cap(5)
            .with_policy(SchedPolicy::WeightedFair)
            .with_tenant_weight("gold", 4)
            .paused();
        assert_eq!(cfg.llm_slots, 3);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.weight_of("gold"), 4);
        assert_eq!(cfg.weight_of("anonymous"), 1);
        assert!(cfg.start_paused);
        cfg.validate().unwrap();
    }

    #[test]
    fn config_validation_rejects_zeroes() {
        assert!(SchedConfig::default().with_llm_slots(0).validate().is_err());
        assert!(SchedConfig::default().with_workers(0).validate().is_err());
        assert!(SchedConfig::default()
            .with_max_queue_depth(0)
            .validate()
            .is_err());
        assert!(SchedConfig::default()
            .with_tenant_queue_cap(0)
            .validate()
            .is_err());
        assert!(SchedConfig::default()
            .with_tenant_weight("t", 0)
            .validate()
            .is_err());
        let zero_default = SchedConfig {
            default_weight: 0,
            ..SchedConfig::default()
        };
        assert!(zero_default.validate().is_err());
    }

    #[test]
    fn rate_limit_lookup_and_validation() {
        let cfg = SchedConfig::default()
            .with_default_rate_limit(TenantRateLimit::queries(10.0, 5.0))
            .with_tenant_rate_limit("gold", TenantRateLimit::llm_calls(100.0, 50.0))
            .with_shed_queue_watermark(16)
            .with_shed_wait_watermark_ms(500.0);
        cfg.validate().unwrap();
        assert_eq!(cfg.rate_limit_of("gold").unwrap().llm_calls_per_sec, 100.0);
        assert_eq!(cfg.rate_limit_of("anyone").unwrap().queries_per_sec, 10.0);
        // An explicitly disabled per-tenant limit means "unlimited", even
        // with a default configured.
        let cfg = cfg.with_tenant_rate_limit(
            "free",
            TenantRateLimit {
                queries_per_sec: 0.0,
                query_burst: 0.0,
                llm_calls_per_sec: 0.0,
                call_burst: 0.0,
            },
        );
        assert!(cfg.rate_limit_of("free").is_none());

        // Enabled axes need burst >= 1; rates/bursts must be finite.
        assert!(TenantRateLimit::queries(10.0, 0.5).validate().is_err());
        assert!(TenantRateLimit::queries(-1.0, 5.0).validate().is_err());
        assert!(TenantRateLimit::llm_calls(f64::NAN, 5.0)
            .validate()
            .is_err());
        assert!(TenantRateLimit::queries(10.0, 1.0).validate().is_ok());
        let bad =
            SchedConfig::default().with_tenant_rate_limit("t", TenantRateLimit::queries(5.0, 0.0));
        assert!(bad.validate().is_err());
        let bad_wait = SchedConfig {
            shed_wait_watermark_ms: f64::NAN,
            ..SchedConfig::default()
        };
        assert!(bad_wait.validate().is_err());
    }

    #[test]
    fn weight_of_never_returns_zero() {
        // Validation rejects zero weights, but a struct-literal config can
        // skip validation; the accessor must still never hand the scheduler
        // a divide-by-zero.
        let cfg = SchedConfig {
            default_weight: 0,
            ..SchedConfig::default()
        };
        assert_eq!(cfg.weight_of("anyone"), 1);
        let mut cfg = SchedConfig::default();
        cfg.tenant_weights.insert("broken".to_string(), 0);
        assert_eq!(cfg.weight_of("broken"), 1);
    }
}
