//! Cross-query scheduling types: tenants, priorities, scheduling policies
//! and the [`SchedConfig`] consumed by `llmsql-sched`'s `QueryScheduler`.
//!
//! These live in `llmsql-types` (like [`crate::EngineConfig`]) so every layer
//! can talk about tenants and scheduling without depending on the scheduler
//! runtime itself.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Error, Result};

/// Identifies the tenant (user, team, API key) a query is submitted under.
/// Quotas and fair-share weights are tracked per tenant.
pub type TenantId = String;

/// Query priority: higher values run first under [`SchedPolicy::Priority`].
///
/// Ordering is total (`u8` semantics); ties are broken by admission order, so
/// equal-priority queries never reorder relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u8);

impl Priority {
    /// Background / best-effort work.
    pub const LOW: Priority = Priority(0);
    /// The default for interactive queries.
    pub const NORMAL: Priority = Priority(10);
    /// Latency-sensitive work that should jump the queue.
    pub const HIGH: Priority = Priority(20);
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// How the scheduler picks the next admitted query to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedPolicy {
    /// Strict admission order across all tenants.
    #[default]
    Fifo,
    /// Highest [`Priority`] first; admission order within a priority level.
    Priority,
    /// Weighted fair share across tenants via per-tenant deficit counters:
    /// every completed query charges its tenant's counter by the LLM calls it
    /// consumed, and the scheduler always serves the tenant with the smallest
    /// weight-normalized charge. Under sustained backlog, completed-call
    /// shares converge to the configured [`SchedConfig::tenant_weights`].
    WeightedFair,
}

impl SchedPolicy {
    /// All policies, for sweeps.
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::Fifo,
        SchedPolicy::Priority,
        SchedPolicy::WeightedFair,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Priority => "priority",
            SchedPolicy::WeightedFair => "weighted-fair",
        }
    }

    /// Parse from a user-facing name.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "fifo" | "arrival" => Ok(SchedPolicy::Fifo),
            "priority" | "prio" => Ok(SchedPolicy::Priority),
            "weighted-fair" | "fair" | "drr" | "wfq" => Ok(SchedPolicy::WeightedFair),
            other => Err(Error::config(format!(
                "unknown scheduling policy '{other}'"
            ))),
        }
    }
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Configuration of the cross-query scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedConfig {
    /// Global pool of LLM-call slots shared by every running query: at most
    /// this many model requests are in flight across the whole deployment,
    /// regardless of how many queries run or what `parallelism` each uses.
    pub llm_slots: usize,
    /// Worker threads executing admitted queries (queries running at once).
    pub workers: usize,
    /// Hard cap on queries queued (admitted but not yet running) across all
    /// tenants; submissions beyond it are rejected at admission.
    pub max_queue_depth: usize,
    /// Per-tenant cap on queued queries, so one tenant cannot fill the whole
    /// admission queue.
    pub tenant_queue_cap: usize,
    /// How the next query is picked from the admission queue.
    pub policy: SchedPolicy,
    /// Fair-share weights per tenant ([`SchedPolicy::WeightedFair`] only).
    /// Tenants absent from the map get [`SchedConfig::default_weight`].
    pub tenant_weights: BTreeMap<TenantId, u32>,
    /// Weight for tenants without an explicit entry in `tenant_weights`.
    pub default_weight: u32,
    /// Start with the workers paused: submissions queue up but nothing runs
    /// until `QueryScheduler::resume` is called. Lets tests (and batch
    /// loads) build a backlog so the policy, not arrival order, decides the
    /// run order.
    pub start_paused: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            llm_slots: 8,
            workers: 4,
            max_queue_depth: 256,
            tenant_queue_cap: 64,
            policy: SchedPolicy::Fifo,
            tenant_weights: BTreeMap::new(),
            default_weight: 1,
            start_paused: false,
        }
    }
}

impl SchedConfig {
    /// Builder-style: set the global LLM-call slot pool size.
    pub fn with_llm_slots(mut self, llm_slots: usize) -> Self {
        self.llm_slots = llm_slots;
        self
    }
    /// Builder-style: set the number of query worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
    /// Builder-style: set the global admission-queue depth.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }
    /// Builder-style: set the per-tenant queued-query cap.
    pub fn with_tenant_queue_cap(mut self, cap: usize) -> Self {
        self.tenant_queue_cap = cap;
        self
    }
    /// Builder-style: set the scheduling policy.
    pub fn with_policy(mut self, policy: SchedPolicy) -> Self {
        self.policy = policy;
        self
    }
    /// Builder-style: set one tenant's fair-share weight.
    pub fn with_tenant_weight(mut self, tenant: impl Into<TenantId>, weight: u32) -> Self {
        self.tenant_weights.insert(tenant.into(), weight);
        self
    }
    /// Builder-style: start paused (see [`SchedConfig::start_paused`]).
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// The fair-share weight of a tenant. Never returns zero, even for a
    /// configuration built by struct literal that skipped
    /// [`SchedConfig::validate`]: a zero weight would turn the scheduler's
    /// weight-normalized deficits into `inf`/`NaN` and silently break
    /// ordering, so the accessor clamps defensively.
    pub fn weight_of(&self, tenant: &str) -> u32 {
        self.tenant_weights
            .get(tenant)
            .copied()
            .unwrap_or(self.default_weight)
            .max(1)
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.llm_slots == 0 {
            return Err(Error::config("llm_slots must be at least 1"));
        }
        if self.workers == 0 {
            return Err(Error::config("workers must be at least 1"));
        }
        if self.max_queue_depth == 0 {
            return Err(Error::config("max_queue_depth must be at least 1"));
        }
        if self.tenant_queue_cap == 0 {
            return Err(Error::config("tenant_queue_cap must be at least 1"));
        }
        if self.default_weight == 0 {
            return Err(Error::config("default_weight must be at least 1"));
        }
        for (tenant, weight) in &self.tenant_weights {
            if *weight == 0 {
                return Err(Error::config(format!(
                    "tenant '{tenant}' has weight 0; weights must be at least 1"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering_and_labels() {
        assert!(Priority::HIGH > Priority::NORMAL);
        assert!(Priority::NORMAL > Priority::LOW);
        assert_eq!(Priority::default(), Priority::NORMAL);
        assert_eq!(Priority(7).to_string(), "p7");
    }

    #[test]
    fn policy_parsing_round_trips() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.label()).unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
        assert_eq!(
            SchedPolicy::parse("drr").unwrap(),
            SchedPolicy::WeightedFair
        );
        assert!(SchedPolicy::parse("lottery").is_err());
        assert_eq!(SchedPolicy::default(), SchedPolicy::Fifo);
    }

    #[test]
    fn config_builders_and_weights() {
        let cfg = SchedConfig::default()
            .with_llm_slots(3)
            .with_workers(2)
            .with_max_queue_depth(10)
            .with_tenant_queue_cap(5)
            .with_policy(SchedPolicy::WeightedFair)
            .with_tenant_weight("gold", 4)
            .paused();
        assert_eq!(cfg.llm_slots, 3);
        assert_eq!(cfg.workers, 2);
        assert_eq!(cfg.weight_of("gold"), 4);
        assert_eq!(cfg.weight_of("anonymous"), 1);
        assert!(cfg.start_paused);
        cfg.validate().unwrap();
    }

    #[test]
    fn config_validation_rejects_zeroes() {
        assert!(SchedConfig::default().with_llm_slots(0).validate().is_err());
        assert!(SchedConfig::default().with_workers(0).validate().is_err());
        assert!(SchedConfig::default()
            .with_max_queue_depth(0)
            .validate()
            .is_err());
        assert!(SchedConfig::default()
            .with_tenant_queue_cap(0)
            .validate()
            .is_err());
        assert!(SchedConfig::default()
            .with_tenant_weight("t", 0)
            .validate()
            .is_err());
        let zero_default = SchedConfig {
            default_weight: 0,
            ..SchedConfig::default()
        };
        assert!(zero_default.validate().is_err());
    }

    #[test]
    fn weight_of_never_returns_zero() {
        // Validation rejects zero weights, but a struct-literal config can
        // skip validation; the accessor must still never hand the scheduler
        // a divide-by-zero.
        let cfg = SchedConfig {
            default_weight: 0,
            ..SchedConfig::default()
        };
        assert_eq!(cfg.weight_of("anyone"), 1);
        let mut cfg = SchedConfig::default();
        cfg.tenant_weights.insert("broken".to_string(), 0);
        assert_eq!(cfg.weight_of("broken"), 1);
    }
}
