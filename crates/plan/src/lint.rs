//! Static plan lints: cost hazards detectable before a single model call.
//!
//! The analogue of `llmsql-lint`'s source rules, but over the logical plan:
//! each lint has a stable kebab-case key, a severity, and fires a structured
//! [`PlanDiagnostic`] anchored to the offending node's pre-order path (the
//! same path scheme [`crate::cost`] and the executor's per-operator actuals
//! use). `EXPLAIN` prints them; a driver can refuse to run a plan with
//! critical diagnostics.
//!
//! The lints are written to be *disjoint*: a missed pushdown fires
//! [`LINT_FILTER_ABOVE_LLM_SCAN`] at the Filter node, while
//! [`LINT_LLM_SCAN_NO_FILTER`] judges a scan by what it would look like
//! *after* pushdown — so one seeded hazard trips exactly one lint.

use std::fmt;

use crate::cost::{cost_plan, CostParams};
use crate::logical::LogicalPlan;
use crate::rules::{predicate_pushdown, projection_prune};

/// Lint key: a native Filter sits above an LLM scan instead of being pushed
/// into the prompt.
pub const LINT_FILTER_ABOVE_LLM_SCAN: &str = "filter-above-llm-scan";
/// Lint key: an LLM scan enumerates with no pushed filter and no pushed
/// limit — the model is asked for the whole relation.
pub const LINT_LLM_SCAN_NO_FILTER: &str = "llm-scan-no-filter";
/// Lint key: an LLM scan requests every column although the query consumes
/// only some of them.
pub const LINT_UNPROJECTED_COLUMNS: &str = "unprojected-columns";
/// Lint key: a cross (or ON-less) join over an LLM-backed side.
pub const LINT_CROSS_JOIN_LLM: &str = "cross-join-llm";
/// Lint key: the plan's estimated spend exceeds the configured budget.
pub const LINT_BUDGET_EXCEEDED: &str = "budget-exceeded";

/// How bad a plan hazard is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth knowing; does not change cost materially.
    Info,
    /// Costs real tokens or dollars; the query still completes.
    Warning,
    /// Order-of-magnitude waste or a budget violation.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Critical => write!(f, "critical"),
        }
    }
}

/// One structured plan diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDiagnostic {
    /// Stable lint key (one of the `LINT_*` constants).
    pub rule: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Pre-order path of the offending node (`"0"` = root).
    pub path: String,
    /// Human-readable explanation with the concrete numbers.
    pub message: String,
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] at {}: {}",
            self.severity, self.rule, self.path, self.message
        )
    }
}

/// Lint a plan. `budget_usd` is the advisory per-query spend budget
/// (`EngineConfig::cost_budget_usd`); `None` disables the budget lint.
pub fn lint_plan(
    plan: &LogicalPlan,
    params: &CostParams,
    budget_usd: Option<f64>,
) -> Vec<PlanDiagnostic> {
    let mut diags = Vec::new();

    // What pushdown / pruning would still change tells us what the plan
    // leaves on the table; both rules are idempotent, so a fully-optimized
    // plan passes both probes untouched.
    let pushed = predicate_pushdown::apply(plan.clone());
    let pushdown_would_fire = pushed != *plan;
    let filterless_after_pushdown = filterless_virtual_aliases(&pushed);
    // Pruning is judged only once filters are in their final position —
    // which columns a scan must fetch depends on its pushed filter, so
    // diagnosing both layers at once would double-report one hazard.
    let pruned = projection_prune::apply(plan.clone());
    let prunable = if pushdown_would_fire {
        Vec::new()
    } else {
        prunable_virtual_aliases(plan, &pruned)
    };

    walk(plan, "0", &mut |node, path| match node {
        LogicalPlan::Filter { input, .. } if pushdown_would_fire && input.uses_virtual_tables() => {
            diags.push(PlanDiagnostic {
                rule: LINT_FILTER_ABOVE_LLM_SCAN,
                severity: Severity::Critical,
                path: path.to_string(),
                message: "filter is evaluated natively after the LLM scan returns rows; \
                          pushing it into the scan prompt would cut calls and tokens \
                          (enable predicate pushdown)"
                    .to_string(),
            });
        }
        LogicalPlan::Scan {
            alias,
            virtual_table: true,
            ..
        } if filterless_after_pushdown.contains(&alias.as_str()) => {
            diags.push(PlanDiagnostic {
                rule: LINT_LLM_SCAN_NO_FILTER,
                severity: Severity::Warning,
                path: path.to_string(),
                message: format!(
                    "LLM scan of '{alias}' has no pushed filter or limit: the model \
                     enumerates the entire relation"
                ),
            });
        }
        LogicalPlan::Scan {
            alias,
            virtual_table: true,
            prompt_columns: None,
            table_schema,
            ..
        } if prunable.contains(&alias.as_str()) => {
            diags.push(PlanDiagnostic {
                rule: LINT_UNPROJECTED_COLUMNS,
                severity: Severity::Warning,
                path: path.to_string(),
                message: format!(
                    "LLM scan of '{alias}' requests all {} columns but the query \
                     consumes fewer; pruning would shrink every completion \
                     (enable projection pruning)",
                    table_schema.arity()
                ),
            });
        }
        LogicalPlan::Join {
            left, right, on, ..
        } if on.is_none() && (left.uses_virtual_tables() || right.uses_virtual_tables()) => {
            diags.push(PlanDiagnostic {
                rule: LINT_CROSS_JOIN_LLM,
                severity: Severity::Critical,
                path: path.to_string(),
                message: "cross join over an LLM-backed relation multiplies model-priced \
                          rows; add a join condition"
                    .to_string(),
            });
        }
        _ => {}
    });

    if let Some(budget) = budget_usd {
        let cost = cost_plan(plan, params);
        if cost.total.usd > budget {
            diags.push(PlanDiagnostic {
                rule: LINT_BUDGET_EXCEEDED,
                severity: Severity::Critical,
                path: "0".to_string(),
                message: format!(
                    "estimated cost ${:.4} exceeds the ${:.4} budget ({} LLM calls estimated)",
                    cost.total.usd, budget, cost.total.llm_calls
                ),
            });
        }
    }

    diags
}

/// Pre-order walk handing each node its path.
fn walk(plan: &LogicalPlan, path: &str, f: &mut impl FnMut(&LogicalPlan, &str)) {
    f(plan, path);
    for (i, c) in plan.children().iter().enumerate() {
        walk(c, &format!("{path}.{i}"), f);
    }
}

/// Aliases of virtual scans that remain unfiltered and unlimited even after
/// predicate pushdown has done all it can.
fn filterless_virtual_aliases(pushed: &LogicalPlan) -> Vec<&str> {
    let mut aliases = Vec::new();
    collect(pushed, &mut |n| {
        if let LogicalPlan::Scan {
            alias,
            pushed_filter: None,
            pushed_limit: None,
            virtual_table: true,
            ..
        } = n
        {
            aliases.push(alias.as_str());
        }
    });
    aliases
}

/// Aliases of virtual scans that projection pruning would narrow (currently
/// fetch all columns, but the pruned twin fetches fewer).
fn prunable_virtual_aliases<'a>(plan: &LogicalPlan, pruned: &'a LogicalPlan) -> Vec<&'a str> {
    let mut before: Vec<&str> = Vec::new();
    collect(plan, &mut |n| {
        if let LogicalPlan::Scan {
            alias,
            prompt_columns: None,
            virtual_table: true,
            ..
        } = n
        {
            before.push(alias.as_str());
        }
    });
    let before: Vec<String> = before.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    collect(pruned, &mut |n| {
        if let LogicalPlan::Scan {
            alias,
            prompt_columns: Some(_),
            virtual_table: true,
            ..
        } = n
        {
            if before.iter().any(|b| b == alias) {
                out.push(alias.as_str());
            }
        }
    });
    out
}

fn collect<'a>(plan: &'a LogicalPlan, f: &mut impl FnMut(&'a LogicalPlan)) {
    f(plan);
    for c in plan.children() {
        collect(c, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind_select;
    use crate::optimizer::{optimize, OptimizerOptions};
    use llmsql_sql::{parse_statement, Statement};
    use llmsql_store::Catalog;
    use llmsql_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        for name in ["countries", "cities"] {
            cat.create_virtual_table(Schema::new(
                name,
                vec![
                    Column::new("name", DataType::Text).primary_key(),
                    Column::new("country", DataType::Text),
                    Column::new("region", DataType::Text),
                    Column::new("population", DataType::Int),
                ],
            ))
            .unwrap();
        }
        cat
    }

    fn bound(sql: &str) -> LogicalPlan {
        let stmt = parse_statement(sql).unwrap();
        let select = match stmt {
            Statement::Select(s) => s,
            _ => panic!(),
        };
        bind_select(&catalog(), &select).unwrap()
    }

    fn keys(diags: &[PlanDiagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unpushed_filter_fires_exactly_one_lint() {
        // Unoptimized plan: Filter above a virtual scan. Only the pushdown
        // lint fires — the scan itself is judged post-pushdown, where it
        // *would* carry a filter, and pruning diagnostics need the final
        // filters, so the seeded hazard maps to exactly one diagnostic.
        let plan = bound("SELECT name FROM countries WHERE population > 10");
        let diags = lint_plan(&plan, &CostParams::default(), None);
        assert_eq!(keys(&diags), vec![LINT_FILTER_ABOVE_LLM_SCAN]);
    }

    #[test]
    fn bare_scan_fires_no_filter_lint_only() {
        let plan = bound("SELECT * FROM countries");
        let diags = lint_plan(&plan, &CostParams::default(), None);
        assert_eq!(keys(&diags), vec![LINT_LLM_SCAN_NO_FILTER]);
    }

    #[test]
    fn unprojected_columns_fires_on_narrow_query_without_pruning() {
        // Optimized with pruning disabled but pushdown enabled: the only
        // remaining hazard is the wide prompt.
        let opts = OptimizerOptions {
            projection_pruning: false,
            ..OptimizerOptions::default()
        };
        let plan = optimize(
            bound("SELECT name FROM countries WHERE population > 10"),
            &opts,
        );
        let diags = lint_plan(&plan, &CostParams::default(), None);
        assert_eq!(keys(&diags), vec![LINT_UNPROJECTED_COLUMNS]);
    }

    #[test]
    fn cross_join_over_llm_side_is_critical() {
        let plan = optimize(
            bound("SELECT c.name FROM countries c CROSS JOIN cities ci"),
            &OptimizerOptions::default(),
        );
        let diags = lint_plan(&plan, &CostParams::default(), None);
        assert!(keys(&diags).contains(&LINT_CROSS_JOIN_LLM));
        let cross = diags
            .iter()
            .find(|d| d.rule == LINT_CROSS_JOIN_LLM)
            .unwrap();
        assert_eq!(cross.severity, Severity::Critical);
    }

    #[test]
    fn budget_lint_compares_estimate_to_budget() {
        let plan = optimize(
            bound("SELECT name FROM countries"),
            &OptimizerOptions::default(),
        );
        let params = CostParams::default().with_hint("countries", 1000);
        let tight = lint_plan(&plan, &params, Some(0.000_001));
        assert!(keys(&tight).contains(&LINT_BUDGET_EXCEEDED));
        let generous = lint_plan(&plan, &params, Some(1_000.0));
        assert!(!keys(&generous).contains(&LINT_BUDGET_EXCEEDED));
    }

    #[test]
    fn fully_optimized_filtered_query_is_clean() {
        let plan = optimize(
            bound("SELECT name FROM countries WHERE population > 10"),
            &OptimizerOptions::default(),
        );
        let diags = lint_plan(&plan, &CostParams::default(), None);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
