//! The binder: semantic analysis turning a parsed `SELECT` into a
//! [`LogicalPlan`] against a catalog of schemas.

use llmsql_sql::ast::{Expr, JoinKind, OrderByItem, SelectItem, SelectStatement, TableExpr};
use llmsql_store::Catalog;
use llmsql_types::{DataType, Error, Field, RelSchema, Result, Schema};

use crate::expr::{bind_expr, BoundExpr};
use crate::logical::{LogicalPlan, SortKey};

/// Bind a SELECT statement into a logical plan.
pub fn bind_select(catalog: &Catalog, stmt: &SelectStatement) -> Result<LogicalPlan> {
    Binder { catalog }.bind_select(stmt)
}

struct Binder<'a> {
    catalog: &'a Catalog,
}

impl Binder<'_> {
    fn bind_select(&self, stmt: &SelectStatement) -> Result<LogicalPlan> {
        // FROM
        let mut plan = match &stmt.from {
            Some(from) => self.bind_table_expr(from)?,
            None => LogicalPlan::Values {
                schema: RelSchema::empty(),
                rows: vec![vec![]],
            },
        };

        // WHERE
        if let Some(selection) = &stmt.selection {
            let predicate = bind_expr(selection, &plan.schema())?;
            if predicate.contains_aggregate() {
                return Err(Error::binding(
                    "aggregate functions are not allowed in WHERE",
                ));
            }
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // Projection items (expand wildcards first).
        let input_schema = plan.schema();
        let items = self.expand_projection(&stmt.projection, &input_schema)?;

        if stmt.is_aggregate() {
            plan = self.bind_aggregate(stmt, plan, &items)?;
        } else {
            // Plain projection.
            let mut exprs = Vec::new();
            let mut fields = Vec::new();
            for (expr, alias) in &items {
                let bound = bind_expr(expr, &input_schema)?;
                let name = alias.clone().unwrap_or_else(|| bound.default_name());
                fields.push(Field::new(None, name, bound.data_type(), true));
                exprs.push(bound);
            }
            // ORDER BY: try binding against the projection output first
            // (aliases), falling back to the pre-projection schema (sort
            // below the projection).
            let out_schema = RelSchema::new(fields.clone());
            let (sort_above, sort_below) =
                self.bind_order_by(&stmt.order_by, &out_schema, Some(&input_schema))?;
            if let Some(keys) = sort_below {
                plan = LogicalPlan::Sort {
                    input: Box::new(plan),
                    keys,
                };
            }
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs,
                schema: out_schema,
            };
            if let Some(keys) = sort_above {
                plan = LogicalPlan::Sort {
                    input: Box::new(plan),
                    keys,
                };
            }
        }

        if stmt.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }

        if stmt.limit.is_some() || stmt.offset.is_some() {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                limit: stmt.limit.map(|l| l as usize),
                offset: stmt.offset.unwrap_or(0) as usize,
            };
        }
        Ok(plan)
    }

    /// Expand `*` and `alias.*` into explicit column expressions.
    #[allow(clippy::type_complexity)]
    fn expand_projection(
        &self,
        projection: &[SelectItem],
        schema: &RelSchema,
    ) -> Result<Vec<(Expr, Option<String>)>> {
        let mut out = Vec::new();
        for item in projection {
            match item {
                SelectItem::Wildcard => {
                    if schema.is_empty() {
                        return Err(Error::binding("SELECT * requires a FROM clause"));
                    }
                    for f in &schema.fields {
                        out.push((
                            Expr::Column {
                                qualifier: f.qualifier.clone(),
                                name: f.name.clone(),
                            },
                            None,
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let q_l = q.to_ascii_lowercase();
                    let matched: Vec<&Field> = schema
                        .fields
                        .iter()
                        .filter(|f| f.qualifier.as_deref() == Some(q_l.as_str()))
                        .collect();
                    if matched.is_empty() {
                        return Err(Error::binding(format!(
                            "unknown table alias '{q}' in {q}.*"
                        )));
                    }
                    for f in matched {
                        out.push((
                            Expr::Column {
                                qualifier: f.qualifier.clone(),
                                name: f.name.clone(),
                            },
                            None,
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => out.push((expr.clone(), alias.clone())),
            }
        }
        if out.is_empty() {
            return Err(Error::binding("SELECT list must not be empty"));
        }
        Ok(out)
    }

    fn bind_table_expr(&self, expr: &TableExpr) -> Result<LogicalPlan> {
        match expr {
            TableExpr::Table { name, alias } => {
                let schema = self.catalog.schema_of(name)?;
                let alias = alias
                    .clone()
                    .unwrap_or_else(|| name.clone())
                    .to_ascii_lowercase();
                Ok(LogicalPlan::Scan {
                    table: schema.name.clone(),
                    schema: RelSchema::from_table(&schema, &alias),
                    alias,
                    virtual_table: schema.virtual_table,
                    table_schema: schema,
                    pushed_filter: None,
                    prompt_columns: None,
                    pushed_limit: None,
                })
            }
            TableExpr::Subquery { query, alias } => {
                let inner = self.bind_select(query)?;
                // Re-qualify the subquery's output columns by the alias.
                let fields = inner
                    .schema()
                    .fields
                    .iter()
                    .map(|f| Field::new(Some(alias), f.name.clone(), f.data_type, f.nullable))
                    .collect();
                let schema = RelSchema::new(fields);
                let exprs = inner
                    .schema()
                    .fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| BoundExpr::col(i, &f.name, f.data_type))
                    .collect();
                Ok(LogicalPlan::Project {
                    input: Box::new(inner),
                    exprs,
                    schema,
                })
            }
            TableExpr::Join {
                left,
                right,
                kind,
                on,
            } => {
                let left_plan = self.bind_table_expr(left)?;
                let right_plan = self.bind_table_expr(right)?;
                let schema = left_plan.schema().join(&right_plan.schema());
                let on_bound = match on {
                    Some(on) => {
                        let b = bind_expr(on, &schema)?;
                        if b.contains_aggregate() {
                            return Err(Error::binding(
                                "aggregate functions are not allowed in JOIN conditions",
                            ));
                        }
                        Some(b)
                    }
                    None => {
                        if *kind != JoinKind::Cross {
                            return Err(Error::binding("JOIN requires an ON condition"));
                        }
                        None
                    }
                };
                Ok(LogicalPlan::Join {
                    left: Box::new(left_plan),
                    right: Box::new(right_plan),
                    kind: *kind,
                    on: on_bound,
                    schema,
                })
            }
        }
    }

    /// Bind GROUP BY + aggregate projection (+ HAVING).
    fn bind_aggregate(
        &self,
        stmt: &SelectStatement,
        input: LogicalPlan,
        items: &[(Expr, Option<String>)],
    ) -> Result<LogicalPlan> {
        let input_schema = input.schema();

        // Bind group expressions.
        let group_exprs: Vec<BoundExpr> = stmt
            .group_by
            .iter()
            .map(|e| bind_expr(e, &input_schema))
            .collect::<Result<_>>()?;

        // Collect aggregate calls appearing in the projection and HAVING.
        let mut aggregates: Vec<BoundExpr> = Vec::new();
        let mut collect = |bound: &BoundExpr| {
            bound.visit(&mut |e| {
                if matches!(e, BoundExpr::Aggregate { .. }) && !aggregates.contains(e) {
                    aggregates.push(e.clone());
                }
            });
        };
        let bound_items: Vec<(BoundExpr, Option<String>)> = items
            .iter()
            .map(|(e, a)| Ok((bind_expr(e, &input_schema)?, a.clone())))
            .collect::<Result<_>>()?;
        for (b, _) in &bound_items {
            collect(b);
        }
        let bound_having = match &stmt.having {
            Some(h) => {
                let b = bind_expr(h, &input_schema)?;
                collect(&b);
                Some(b)
            }
            None => None,
        };

        // The aggregate node's output: group columns then aggregate columns.
        let mut agg_fields = Vec::new();
        for g in &group_exprs {
            agg_fields.push(Field::new(None, g.default_name(), g.data_type(), true));
        }
        for a in &aggregates {
            agg_fields.push(Field::new(None, a.default_name(), a.data_type(), true));
        }
        let agg_schema = RelSchema::new(agg_fields);

        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_exprs: group_exprs.clone(),
            aggregates: aggregates.clone(),
            schema: agg_schema.clone(),
        };

        // Rewrite an expression over the aggregate output: group expressions
        // and aggregate calls become column references.
        let rewrite = |expr: &BoundExpr| -> Result<BoundExpr> {
            rewrite_post_aggregate(expr, &group_exprs, &aggregates).ok_or_else(|| {
                Error::binding(format!(
                    "expression '{expr}' must appear in the GROUP BY clause or be used in an aggregate function"
                ))
            })
        };

        // HAVING runs over the aggregate output.
        if let Some(having) = bound_having {
            plan = LogicalPlan::Filter {
                predicate: rewrite(&having)?,
                input: Box::new(plan),
            };
        }

        // Final projection over the aggregate output.
        let mut exprs = Vec::new();
        let mut fields = Vec::new();
        for (b, alias) in &bound_items {
            let rewritten = rewrite(b)?;
            let name = alias.clone().unwrap_or_else(|| b.default_name());
            fields.push(Field::new(None, name, rewritten.data_type(), true));
            exprs.push(rewritten);
        }
        let out_schema = RelSchema::new(fields);

        // ORDER BY: each key is resolved against the projection output
        // (position, alias, or an expression equal to a projected item); keys
        // that cannot be expressed over the output (e.g. a group column that
        // was not projected) are bound against the aggregate output instead,
        // in which case the sort runs below the projection. Mixing the two in
        // one ORDER BY is not supported.
        let mut above_keys: Vec<SortKey> = Vec::new();
        let mut below_keys: Vec<SortKey> = Vec::new();
        for o in &stmt.order_by {
            // 1. positional reference
            if let Expr::Literal(llmsql_types::Value::Int(pos)) = &o.expr {
                let idx = *pos as usize;
                if idx >= 1 && idx <= out_schema.len() {
                    let f = &out_schema.fields[idx - 1];
                    above_keys.push(SortKey {
                        expr: BoundExpr::col(idx - 1, &f.name, f.data_type),
                        ascending: o.ascending,
                    });
                    continue;
                }
            }
            // 2. output alias / name
            if let Ok(bound) = bind_expr(&o.expr, &out_schema) {
                above_keys.push(SortKey {
                    expr: bound,
                    ascending: o.ascending,
                });
                continue;
            }
            // 3. an expression over the input that equals a projected item
            if let Ok(bound_input) = bind_expr(&o.expr, &input_schema) {
                if let Some(pos) = bound_items.iter().position(|(b, _)| *b == bound_input) {
                    let f = &out_schema.fields[pos];
                    above_keys.push(SortKey {
                        expr: BoundExpr::col(pos, &f.name, f.data_type),
                        ascending: o.ascending,
                    });
                    continue;
                }
                // 4. otherwise rewrite it onto the aggregate output
                below_keys.push(SortKey {
                    expr: rewrite(&bound_input)?,
                    ascending: o.ascending,
                });
                continue;
            }
            // 5. last chance: the aggregate output itself
            let bound = bind_expr(&o.expr, &agg_schema)?;
            below_keys.push(SortKey {
                expr: bound,
                ascending: o.ascending,
            });
        }
        if !above_keys.is_empty() && !below_keys.is_empty() {
            return Err(Error::unsupported(
                "ORDER BY mixes projected and non-projected grouped expressions",
            ));
        }
        let sort_above = (!above_keys.is_empty()).then_some(above_keys);
        let sort_below = (!below_keys.is_empty()).then_some(below_keys);
        if let Some(keys) = sort_below {
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
            schema: out_schema,
        };
        if let Some(keys) = sort_above {
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        Ok(plan)
    }

    /// Bind ORDER BY items. Returns `(above, below)`: keys bound against the
    /// projection output (sort goes above the Project) or against the
    /// pre-projection schema (sort goes below). All keys must bind the same
    /// way; output binding is preferred.
    #[allow(clippy::type_complexity)]
    fn bind_order_by(
        &self,
        order_by: &[OrderByItem],
        output: &RelSchema,
        below: Option<&RelSchema>,
    ) -> Result<(Option<Vec<SortKey>>, Option<Vec<SortKey>>)> {
        if order_by.is_empty() {
            return Ok((None, None));
        }
        let try_bind = |schema: &RelSchema| -> Result<Vec<SortKey>> {
            order_by
                .iter()
                .map(|o| {
                    // Positional ORDER BY (1-based) refers to output columns.
                    if let Expr::Literal(llmsql_types::Value::Int(pos)) = &o.expr {
                        let idx = *pos as usize;
                        if idx >= 1 && idx <= schema.len() {
                            let f = &schema.fields[idx - 1];
                            return Ok(SortKey {
                                expr: BoundExpr::col(idx - 1, &f.name, f.data_type),
                                ascending: o.ascending,
                            });
                        }
                    }
                    Ok(SortKey {
                        expr: bind_expr(&o.expr, schema)?,
                        ascending: o.ascending,
                    })
                })
                .collect()
        };
        match try_bind(output) {
            Ok(keys) => Ok((Some(keys), None)),
            Err(out_err) => match below {
                Some(schema) => match try_bind(schema) {
                    Ok(keys) => Ok((None, Some(keys))),
                    Err(_) => Err(out_err),
                },
                None => Err(out_err),
            },
        }
    }
}

/// Rewrite an expression over the aggregate node's output schema: any subtree
/// equal to a group expression becomes a column reference to that group
/// column, any aggregate call becomes a reference to its aggregate column.
/// Returns `None` when a leaf column survives un-grouped (invalid query).
fn rewrite_post_aggregate(
    expr: &BoundExpr,
    group_exprs: &[BoundExpr],
    aggregates: &[BoundExpr],
) -> Option<BoundExpr> {
    // Exact match with a group expression?
    for (i, g) in group_exprs.iter().enumerate() {
        if expr == g {
            return Some(BoundExpr::Column {
                index: i,
                name: g.default_name(),
                data_type: g.data_type(),
            });
        }
    }
    // An aggregate call?
    if matches!(expr, BoundExpr::Aggregate { .. }) {
        let pos = aggregates.iter().position(|a| a == expr)?;
        return Some(BoundExpr::Column {
            index: group_exprs.len() + pos,
            name: expr.default_name(),
            data_type: expr.data_type(),
        });
    }
    // Otherwise recurse; bare columns that are not part of a group expression
    // are invalid.
    let out = match expr {
        BoundExpr::Literal(v) => BoundExpr::Literal(v.clone()),
        BoundExpr::Column { .. } => return None,
        BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(rewrite_post_aggregate(left, group_exprs, aggregates)?),
            op: *op,
            right: Box::new(rewrite_post_aggregate(right, group_exprs, aggregates)?),
        },
        BoundExpr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(rewrite_post_aggregate(expr, group_exprs, aggregates)?),
        },
        BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(rewrite_post_aggregate(expr, group_exprs, aggregates)?),
            negated: *negated,
        },
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(rewrite_post_aggregate(expr, group_exprs, aggregates)?),
            list: list
                .iter()
                .map(|e| rewrite_post_aggregate(e, group_exprs, aggregates))
                .collect::<Option<Vec<_>>>()?,
            negated: *negated,
        },
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(rewrite_post_aggregate(expr, group_exprs, aggregates)?),
            low: Box::new(rewrite_post_aggregate(low, group_exprs, aggregates)?),
            high: Box::new(rewrite_post_aggregate(high, group_exprs, aggregates)?),
            negated: *negated,
        },
        BoundExpr::Cast { expr, data_type } => BoundExpr::Cast {
            expr: Box::new(rewrite_post_aggregate(expr, group_exprs, aggregates)?),
            data_type: *data_type,
        },
        BoundExpr::Case {
            branches,
            else_expr,
        } => BoundExpr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| {
                    Some((
                        rewrite_post_aggregate(c, group_exprs, aggregates)?,
                        rewrite_post_aggregate(v, group_exprs, aggregates)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(rewrite_post_aggregate(
                    e,
                    group_exprs,
                    aggregates,
                )?)),
                None => None,
            },
        },
        BoundExpr::Aggregate { .. } => unreachable!("handled above"),
    };
    Some(out)
}

/// Bind a CREATE TABLE column list into a [`Schema`].
pub fn schema_from_create(
    name: &str,
    columns: &[llmsql_sql::ast::ColumnDef],
    virtual_table: bool,
    comment: Option<&str>,
) -> Result<Schema> {
    let cols = columns
        .iter()
        .map(|c| {
            let mut col = llmsql_types::Column::new(c.name.to_ascii_lowercase(), c.data_type);
            if c.primary_key {
                col = col.primary_key();
            } else if c.not_null {
                col = col.not_null();
            }
            if let Some(comment) = &c.comment {
                col = col.with_description(comment.clone());
            }
            col
        })
        .collect();
    let mut schema = if virtual_table {
        Schema::virtual_table(name, cols)
    } else {
        Schema::new(name, cols)
    };
    if let Some(c) = comment {
        schema = schema.with_description(c);
    }
    schema.validate()?;
    let _ = DataType::Int; // keep DataType import used in all cfgs
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_sql::parse_statement;
    use llmsql_sql::Statement;
    use llmsql_types::Column;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.create_table(Schema::new(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        ))
        .unwrap();
        cat.create_virtual_table(Schema::new(
            "cities",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("country", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        ))
        .unwrap();
        cat
    }

    fn bind(sql: &str) -> Result<LogicalPlan> {
        let stmt = parse_statement(sql).unwrap();
        match stmt {
            Statement::Select(s) => bind_select(&catalog(), &s),
            _ => panic!("not a select"),
        }
    }

    #[test]
    fn simple_select_star() {
        let plan = bind("SELECT * FROM countries").unwrap();
        assert_eq!(plan.schema().len(), 3);
        assert!(matches!(plan, LogicalPlan::Project { .. }));
        assert_eq!(plan.scanned_tables(), vec!["countries".to_string()]);
    }

    #[test]
    fn filter_and_projection() {
        let plan = bind("SELECT name FROM countries WHERE population > 10").unwrap();
        assert_eq!(plan.schema().names(), vec!["name".to_string()]);
        let text = plan.explain();
        assert!(text.contains("Filter"));
        assert!(text.contains("Scan countries"));
    }

    #[test]
    fn virtual_table_flag_propagates() {
        let plan = bind("SELECT * FROM cities").unwrap();
        assert!(plan.uses_virtual_tables());
        assert!(plan.explain().contains("LlmScan"));
    }

    #[test]
    fn join_binding() {
        let plan =
            bind("SELECT c.name, ci.name FROM countries c JOIN cities ci ON ci.country = c.name")
                .unwrap();
        assert_eq!(plan.schema().len(), 2);
        let mut joins = 0;
        plan.visit(&mut |p| {
            if matches!(p, LogicalPlan::Join { .. }) {
                joins += 1;
            }
        });
        assert_eq!(joins, 1);
    }

    #[test]
    fn join_without_on_rejected() {
        assert!(bind("SELECT * FROM countries JOIN cities ON 1 = 1").is_ok());
        // the parser requires ON for non-cross joins, so test cross join path
        assert!(bind("SELECT * FROM countries CROSS JOIN cities").is_ok());
    }

    #[test]
    fn aggregate_group_by() {
        let plan = bind(
            "SELECT region, COUNT(*) AS n, SUM(population) FROM countries \
             GROUP BY region HAVING COUNT(*) > 1 ORDER BY n DESC",
        )
        .unwrap();
        assert_eq!(
            plan.schema().names(),
            vec![
                "region".to_string(),
                "n".to_string(),
                "sum(population)".to_string()
            ]
        );
        let text = plan.explain();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Sort"));
        assert!(text.contains("Filter")); // HAVING
    }

    #[test]
    fn global_aggregate_without_group() {
        let plan = bind("SELECT COUNT(*), MAX(population) FROM countries").unwrap();
        assert_eq!(plan.schema().len(), 2);
        assert!(plan.explain().contains("Aggregate group=[]"));
    }

    #[test]
    fn ungrouped_column_in_aggregate_rejected() {
        let err = bind("SELECT name, COUNT(*) FROM countries GROUP BY region").unwrap_err();
        assert!(err.message.contains("GROUP BY"));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        assert!(bind("SELECT name FROM countries WHERE SUM(population) > 1").is_err());
    }

    #[test]
    fn order_by_column_not_in_projection() {
        let plan = bind("SELECT name FROM countries ORDER BY population DESC").unwrap();
        // Sort must sit below the Project (it references population).
        match &plan {
            LogicalPlan::Project { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Sort { .. }))
            }
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn order_by_alias_and_position() {
        let plan = bind("SELECT name AS n FROM countries ORDER BY n").unwrap();
        assert!(matches!(plan, LogicalPlan::Sort { .. }));
        let plan = bind("SELECT name, population FROM countries ORDER BY 2 DESC").unwrap();
        assert!(matches!(plan, LogicalPlan::Sort { .. }));
    }

    #[test]
    fn limit_offset_distinct() {
        let plan = bind("SELECT DISTINCT region FROM countries LIMIT 5 OFFSET 2").unwrap();
        match &plan {
            LogicalPlan::Limit {
                limit,
                offset,
                input,
            } => {
                assert_eq!(*limit, Some(5));
                assert_eq!(*offset, 2);
                assert!(matches!(**input, LogicalPlan::Distinct { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_without_from() {
        let plan = bind("SELECT 1 + 1 AS two, 'x' AS s").unwrap();
        assert_eq!(
            plan.schema().names(),
            vec!["two".to_string(), "s".to_string()]
        );
    }

    #[test]
    fn select_star_without_from_rejected() {
        assert!(bind("SELECT *").is_err());
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(bind("SELECT * FROM starfleet").is_err());
        assert!(bind("SELECT gdp FROM countries").is_err());
        assert!(bind("SELECT x.* FROM countries c").is_err());
    }

    #[test]
    fn ambiguous_column_rejected() {
        let err =
            bind("SELECT name FROM countries c JOIN cities ci ON ci.country = c.name").unwrap_err();
        assert!(err.message.contains("ambiguous"));
    }

    #[test]
    fn subquery_in_from() {
        let plan = bind(
            "SELECT big.name FROM (SELECT name, population FROM countries WHERE population > 5) AS big",
        )
        .unwrap();
        assert_eq!(plan.schema().names(), vec!["name".to_string()]);
    }

    #[test]
    fn schema_from_create_works() {
        let stmt = parse_statement(
            "CREATE VIRTUAL TABLE t (a INT PRIMARY KEY, b TEXT COMMENT 'the b') COMMENT 'stuff'",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(c) => {
                let schema =
                    schema_from_create(&c.name, &c.columns, c.virtual_table, c.comment.as_deref())
                        .unwrap();
                assert!(schema.virtual_table);
                assert_eq!(schema.description.as_deref(), Some("stuff"));
                assert!(schema.columns[0].primary_key);
                assert_eq!(schema.columns[1].description.as_deref(), Some("the b"));
            }
            _ => panic!(),
        }
    }
}
