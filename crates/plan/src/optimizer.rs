//! The rule-based optimizer driver.
//!
//! For an LLM-backed storage layer the optimizer's job is less about CPU time
//! and more about **minimising model calls and tokens**. The rewrite rules
//! themselves live in [`crate::rules`], one module per rule, each a pure
//! `LogicalPlan -> LogicalPlan` function:
//!
//! * **Constant folding** evaluates literal-only subexpressions at plan time.
//! * **Predicate pushdown** moves filters into scans so that the condition is
//!   rendered into the prompt — the model returns fewer rows, which means
//!   fewer pages and fewer completion tokens.
//! * **Limit pushdown** caps how many rows a scan requests in the first place.
//! * **Conjunct reordering** ranks AND-ed predicates cheapest/most-selective
//!   first.
//! * **Projection pruning** narrows the set of columns a prompt asks for.
//!
//! The driver runs enabled rules in that fixed order and records which ones
//! actually changed the plan in a [`RuleTrace`] (`EXPLAIN` prints it). Each
//! rule can be disabled individually through [`OptimizerOptions`]; the
//! ablation experiment (E9) measures the effect of each.

use crate::logical::LogicalPlan;
use crate::rules::{self, RuleTrace, ALL_RULES};

/// Which rules run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerOptions {
    /// Fold literal-only subexpressions at plan time.
    pub constant_folding: bool,
    /// Push filters into scans (and through joins).
    pub predicate_pushdown: bool,
    /// Push LIMIT into scans when order-insensitive.
    pub limit_pushdown: bool,
    /// Reorder AND-ed conjuncts by estimated selectivity and cost.
    pub conjunct_reordering: bool,
    /// Prune unused columns from LLM scans.
    pub projection_pruning: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            constant_folding: true,
            predicate_pushdown: true,
            limit_pushdown: true,
            conjunct_reordering: true,
            projection_pruning: true,
        }
    }
}

impl OptimizerOptions {
    /// All rules disabled (the ablation baseline).
    pub fn disabled() -> Self {
        OptimizerOptions {
            constant_folding: false,
            predicate_pushdown: false,
            limit_pushdown: false,
            conjunct_reordering: false,
            projection_pruning: false,
        }
    }

    /// Is the rule with the given registry key enabled?
    fn enables(&self, rule: &str) -> bool {
        match rule {
            rules::RULE_CONSTANT_FOLD => self.constant_folding,
            rules::RULE_PREDICATE_PUSHDOWN => self.predicate_pushdown,
            rules::RULE_LIMIT_PUSHDOWN => self.limit_pushdown,
            rules::RULE_LLM_CONJUNCT_REORDER => self.conjunct_reordering,
            rules::RULE_PROJECTION_PRUNE => self.projection_pruning,
            _ => false,
        }
    }
}

/// Optimize a plan with the given options.
pub fn optimize(plan: LogicalPlan, options: &OptimizerOptions) -> LogicalPlan {
    optimize_traced(plan, options).0
}

/// Optimize a plan and report which rules actually changed it.
///
/// A rule "fires" when its output differs structurally from its input
/// (plans are compared with `PartialEq`), so the trace lists rewrites that
/// did something, not merely rules that were enabled.
pub fn optimize_traced(plan: LogicalPlan, options: &OptimizerOptions) -> (LogicalPlan, RuleTrace) {
    let mut plan = plan;
    let mut trace = RuleTrace::default();
    for &(rule, apply) in ALL_RULES {
        if !options.enables(rule) {
            continue;
        }
        let rewritten = apply(plan.clone());
        if rewritten != plan {
            trace.fired.push(rule);
        }
        plan = rewritten;
    }
    (plan, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind_select;
    use llmsql_sql::{parse_statement, Statement};
    use llmsql_store::Catalog;
    use llmsql_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        for name in ["countries", "cities"] {
            cat.create_virtual_table(Schema::new(
                name,
                vec![
                    Column::new("name", DataType::Text).primary_key(),
                    Column::new("country", DataType::Text),
                    Column::new("region", DataType::Text),
                    Column::new("population", DataType::Int),
                ],
            ))
            .unwrap();
        }
        cat
    }

    fn plan(sql: &str, options: &OptimizerOptions) -> LogicalPlan {
        let stmt = parse_statement(sql).unwrap();
        let select = match stmt {
            Statement::Select(s) => s,
            _ => panic!(),
        };
        let bound = bind_select(&catalog(), &select).unwrap();
        optimize(bound, options)
    }

    fn scan_of<'a>(p: &'a LogicalPlan, table: &str) -> &'a LogicalPlan {
        let mut found = None;
        fn walk<'a>(p: &'a LogicalPlan, table: &str, found: &mut Option<&'a LogicalPlan>) {
            if let LogicalPlan::Scan { table: t, .. } = p {
                if t == table {
                    *found = Some(p);
                }
            }
            for c in p.children() {
                walk(c, table, found);
            }
        }
        walk(p, table, &mut found);
        found.expect("scan not found")
    }

    #[test]
    fn filter_pushed_into_scan() {
        let p = plan(
            "SELECT name FROM countries WHERE population > 10 AND region = 'Europe'",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { pushed_filter, .. } => {
                let f = pushed_filter.as_ref().unwrap().to_string();
                assert!(f.contains("population"));
                assert!(f.contains("Europe"));
            }
            _ => unreachable!(),
        }
        // No residual Filter node remains.
        let mut filters = 0;
        p.visit(&mut |n| {
            if matches!(n, LogicalPlan::Filter { .. }) {
                filters += 1;
            }
        });
        assert_eq!(filters, 0);
    }

    #[test]
    fn disabled_pushdown_keeps_filter_node() {
        let p = plan(
            "SELECT name FROM countries WHERE population > 10",
            &OptimizerOptions::disabled(),
        );
        let mut filters = 0;
        p.visit(&mut |n| {
            if matches!(n, LogicalPlan::Filter { .. }) {
                filters += 1;
            }
        });
        assert_eq!(filters, 1);
        match scan_of(&p, "countries") {
            LogicalPlan::Scan {
                pushed_filter,
                prompt_columns,
                pushed_limit,
                ..
            } => {
                assert!(pushed_filter.is_none());
                assert!(prompt_columns.is_none());
                assert!(pushed_limit.is_none());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn filter_split_across_join() {
        let p = plan(
            "SELECT c.name FROM countries c JOIN cities ci ON ci.country = c.name \
             WHERE c.region = 'Europe' AND ci.population > 1000000",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { pushed_filter, .. } => {
                assert!(pushed_filter
                    .as_ref()
                    .unwrap()
                    .to_string()
                    .contains("region"));
            }
            _ => unreachable!(),
        }
        match scan_of(&p, "cities") {
            LogicalPlan::Scan { pushed_filter, .. } => {
                let f = pushed_filter.as_ref().unwrap();
                assert!(f.to_string().contains("population"));
                // indices were remapped to the right side's local schema
                assert!(f.referenced_indices().iter().all(|&i| i < 4));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn left_join_blocks_pushdown_to_right() {
        let p = plan(
            "SELECT c.name FROM countries c LEFT JOIN cities ci ON ci.country = c.name \
             WHERE ci.population > 10",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "cities") {
            LogicalPlan::Scan { pushed_filter, .. } => assert!(pushed_filter.is_none()),
            _ => unreachable!(),
        }
        // the predicate stays as a Filter above the join
        let mut filters = 0;
        p.visit(&mut |n| {
            if matches!(n, LogicalPlan::Filter { .. }) {
                filters += 1;
            }
        });
        assert_eq!(filters, 1);
    }

    #[test]
    fn projection_pruning_sets_prompt_columns() {
        let p = plan(
            "SELECT name FROM countries WHERE population > 10",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan {
                prompt_columns,
                table_schema,
                ..
            } => {
                let cols = prompt_columns.as_ref().unwrap();
                let names: Vec<&str> = cols
                    .iter()
                    .map(|&i| table_schema.columns[i].name.as_str())
                    .collect();
                assert!(names.contains(&"name"));
                assert!(names.contains(&"population")); // needed by the filter
                assert!(!names.contains(&"region"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn select_star_keeps_all_columns() {
        let p = plan("SELECT * FROM countries", &OptimizerOptions::default());
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { prompt_columns, .. } => assert!(prompt_columns.is_none()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn limit_pushdown_through_projection() {
        let p = plan(
            "SELECT name FROM countries LIMIT 7 OFFSET 3",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { pushed_limit, .. } => assert_eq!(*pushed_limit, Some(10)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn sort_blocks_limit_pushdown() {
        let p = plan(
            "SELECT name FROM countries ORDER BY population DESC LIMIT 5",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { pushed_limit, .. } => assert_eq!(*pushed_limit, None),
            _ => unreachable!(),
        }
    }

    #[test]
    fn aggregate_prunes_to_needed_columns() {
        let p = plan(
            "SELECT region, COUNT(*) FROM countries GROUP BY region",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan {
                prompt_columns,
                table_schema,
                ..
            } => {
                let cols = prompt_columns.as_ref().unwrap();
                let names: Vec<&str> = cols
                    .iter()
                    .map(|&i| table_schema.columns[i].name.as_str())
                    .collect();
                assert!(names.contains(&"region"));
                assert!(!names.contains(&"population"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn optimized_plan_keeps_schema() {
        for sql in [
            "SELECT name FROM countries WHERE population > 10 ORDER BY name LIMIT 3",
            "SELECT c.region, COUNT(*) FROM countries c GROUP BY c.region",
            "SELECT c.name, ci.name FROM countries c JOIN cities ci ON ci.country = c.name WHERE c.population > 5",
        ] {
            let unopt = plan(sql, &OptimizerOptions::disabled());
            let opt = plan(sql, &OptimizerOptions::default());
            assert_eq!(unopt.schema().names(), opt.schema().names(), "{sql}");
        }
    }

    #[test]
    fn trace_lists_only_rules_that_changed_the_plan() {
        let stmt =
            parse_statement("SELECT name FROM countries WHERE population > 10 LIMIT 5").unwrap();
        let select = match stmt {
            Statement::Select(s) => s,
            _ => panic!(),
        };
        let bound = bind_select(&catalog(), &select).unwrap();
        let (_, trace) = optimize_traced(bound.clone(), &OptimizerOptions::default());
        assert!(trace.did_fire(rules::RULE_PREDICATE_PUSHDOWN));
        assert!(trace.did_fire(rules::RULE_LIMIT_PUSHDOWN));
        assert!(trace.did_fire(rules::RULE_PROJECTION_PRUNE));
        // Nothing literal-only to fold, single conjunct: neither fires.
        assert!(!trace.did_fire(rules::RULE_CONSTANT_FOLD));
        assert!(!trace.did_fire(rules::RULE_LLM_CONJUNCT_REORDER));
        // Disabled options yield an empty trace and an unchanged plan.
        let (unopt, empty) = optimize_traced(bound.clone(), &OptimizerOptions::disabled());
        assert!(empty.is_empty());
        assert_eq!(unopt, bound);
    }

    #[test]
    fn trace_display_is_readable() {
        let mut t = RuleTrace::default();
        assert_eq!(t.to_string(), "(no rules fired)");
        t.fired.push(rules::RULE_PREDICATE_PUSHDOWN);
        t.fired.push(rules::RULE_PROJECTION_PRUNE);
        assert_eq!(t.to_string(), "predicate-pushdown, projection-prune");
    }
}
