//! The rule-based optimizer.
//!
//! For an LLM-backed storage layer the optimizer's job is less about CPU time
//! and more about **minimising model calls and tokens**:
//!
//! * **Predicate pushdown** moves filters into scans so that the condition is
//!   rendered into the prompt — the model returns fewer rows, which means
//!   fewer pages and fewer completion tokens.
//! * **Projection pruning** narrows the set of columns a prompt asks for.
//! * **Limit pushdown** caps how many rows a scan requests in the first place.
//!
//! Each rule can be disabled individually through [`OptimizerOptions`]; the
//! ablation experiment (E9) measures the effect of each.

use llmsql_sql::ast::JoinKind;

use crate::expr::{conjoin, split_conjunction, BoundExpr};
use crate::logical::LogicalPlan;

/// Which rules run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizerOptions {
    /// Push filters into scans (and through joins).
    pub predicate_pushdown: bool,
    /// Prune unused columns from LLM scans.
    pub projection_pruning: bool,
    /// Push LIMIT into scans when order-insensitive.
    pub limit_pushdown: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            predicate_pushdown: true,
            projection_pruning: true,
            limit_pushdown: true,
        }
    }
}

impl OptimizerOptions {
    /// All rules disabled (the ablation baseline).
    pub fn disabled() -> Self {
        OptimizerOptions {
            predicate_pushdown: false,
            projection_pruning: false,
            limit_pushdown: false,
        }
    }
}

/// Optimize a plan with the given options.
pub fn optimize(plan: LogicalPlan, options: &OptimizerOptions) -> LogicalPlan {
    let mut plan = plan;
    if options.predicate_pushdown {
        plan = push_filters(plan);
    }
    if options.limit_pushdown {
        plan = push_limits(plan, None);
    }
    if options.projection_pruning {
        let all: Vec<usize> = (0..plan.schema().len()).collect();
        plan = prune_columns(plan, &all);
    }
    plan
}

// ---------------------------------------------------------------------------
// Predicate pushdown
// ---------------------------------------------------------------------------

fn push_filters(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_filters(*input);
            push_predicate_into(input, predicate)
        }
        other => map_children(other, push_filters),
    }
}

/// Push a predicate as far down into `plan` as possible; whatever cannot be
/// pushed remains as a Filter node on top.
fn push_predicate_into(plan: LogicalPlan, predicate: BoundExpr) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter,
            prompt_columns,
            virtual_table,
            pushed_limit,
        } => {
            let combined = match pushed_filter {
                Some(existing) => conjoin(&[existing, predicate]).expect("non-empty"),
                None => predicate,
            };
            LogicalPlan::Scan {
                table,
                alias,
                table_schema,
                schema,
                pushed_filter: Some(combined),
                prompt_columns,
                virtual_table,
                pushed_limit,
            }
        }
        LogicalPlan::Filter {
            input,
            predicate: inner,
        } => {
            // Merge consecutive filters and keep pushing.
            let merged = conjoin(&[inner, predicate]).expect("non-empty");
            push_predicate_into(*input, merged)
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let left_arity = left.schema().len();
            let mut to_left: Vec<BoundExpr> = Vec::new();
            let mut to_right: Vec<BoundExpr> = Vec::new();
            let mut keep: Vec<BoundExpr> = Vec::new();
            for conjunct in split_conjunction(&predicate) {
                let refs = conjunct.referenced_indices();
                let only_left = refs.iter().all(|&i| i < left_arity);
                let only_right = refs.iter().all(|&i| i >= left_arity);
                // Pushing below an outer join's preserved side changes
                // semantics; only push into the side that cannot produce
                // padded NULLs.
                match (only_left, only_right, kind) {
                    (true, _, JoinKind::Inner | JoinKind::Left | JoinKind::Cross) => {
                        to_left.push(conjunct)
                    }
                    (_, true, JoinKind::Inner | JoinKind::Right | JoinKind::Cross) => {
                        let remapped = conjunct
                            .remap_columns(&|i| i.checked_sub(left_arity))
                            .expect("all refs on the right side");
                        to_right.push(remapped);
                    }
                    _ => keep.push(conjunct),
                }
            }
            let new_left = match conjoin(&to_left) {
                Some(p) => push_predicate_into(*left, p),
                None => push_filters(*left),
            };
            let new_right = match conjoin(&to_right) {
                Some(p) => push_predicate_into(*right, p),
                None => push_filters(*right),
            };
            let join = LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
                schema,
            };
            match conjoin(&keep) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(join),
                    predicate: p,
                },
                None => join,
            }
        }
        // It is not worth rewriting predicates through projections or
        // aggregates for this engine; keep the filter where it is.
        other => LogicalPlan::Filter {
            input: Box::new(map_children(other, push_filters)),
            predicate,
        },
    }
}

// ---------------------------------------------------------------------------
// Limit pushdown
// ---------------------------------------------------------------------------

/// Push `LIMIT n` into a scan when no operator between the limit and the scan
/// can change which rows are needed (filters, joins, aggregates, sorts and
/// DISTINCT all block the push; projections do not).
fn push_limits(plan: LogicalPlan, pending: Option<usize>) -> LogicalPlan {
    match plan {
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            // The scan must produce offset + limit rows for the limit node to
            // work with.
            let pushed = limit.map(|l| l + offset);
            LogicalPlan::Limit {
                input: Box::new(push_limits(*input, pushed)),
                limit,
                offset,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(push_limits(*input, pending)),
            exprs,
            schema,
        },
        LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter,
            prompt_columns,
            virtual_table,
            pushed_limit,
        } => {
            // A scan with a pushed filter still benefits: the model applies
            // the filter before returning rows, so the cap stays correct.
            let new_limit = match (pending, pushed_limit) {
                (Some(p), Some(existing)) => Some(existing.min(p)),
                (Some(p), None) => Some(p),
                (None, existing) => existing,
            };
            LogicalPlan::Scan {
                table,
                alias,
                table_schema,
                schema,
                pushed_filter,
                prompt_columns,
                virtual_table,
                pushed_limit: new_limit,
            }
        }
        // Any other operator blocks the push (it may need to see all input
        // rows), but keep descending to handle nested Limit nodes.
        other => map_children(other, |c| push_limits(c, None)),
    }
}

// ---------------------------------------------------------------------------
// Projection pruning
// ---------------------------------------------------------------------------

/// `required` lists the output-column indices of `plan` that the parent
/// actually consumes. Scans remember the required base columns (plus their
/// pushed filter's columns and the key column) as `prompt_columns`.
fn prune_columns(plan: LogicalPlan, required: &[usize]) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter,
            prompt_columns: _,
            virtual_table,
            pushed_limit,
        } => {
            let mut needed: Vec<usize> = required.to_vec();
            if let Some(f) = &pushed_filter {
                needed.extend(f.referenced_indices());
            }
            // Always fetch the key column: LLM scans identify entities by it.
            let key_idx = table_schema
                .columns
                .iter()
                .position(|c| c.primary_key)
                .unwrap_or(0);
            needed.push(key_idx);
            needed.sort_unstable();
            needed.dedup();
            needed.retain(|&i| i < table_schema.arity());
            let prompt_columns = if needed.len() == table_schema.arity() {
                None
            } else {
                Some(needed)
            };
            LogicalPlan::Scan {
                table,
                alias,
                table_schema,
                schema,
                pushed_filter,
                prompt_columns,
                virtual_table,
                pushed_limit,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let mut needed: Vec<usize> = Vec::new();
            for e in &exprs {
                needed.extend(e.referenced_indices());
            }
            needed.sort_unstable();
            needed.dedup();
            LogicalPlan::Project {
                input: Box::new(prune_columns(*input, &needed)),
                exprs,
                schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut needed: Vec<usize> = required.to_vec();
            needed.extend(predicate.referenced_indices());
            needed.sort_unstable();
            needed.dedup();
            LogicalPlan::Filter {
                input: Box::new(prune_columns(*input, &needed)),
                predicate,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let left_arity = left.schema().len();
            let mut needed: Vec<usize> = required.to_vec();
            if let Some(on) = &on {
                needed.extend(on.referenced_indices());
            }
            let left_req: Vec<usize> = needed.iter().copied().filter(|&i| i < left_arity).collect();
            let right_req: Vec<usize> = needed
                .iter()
                .copied()
                .filter(|&i| i >= left_arity)
                .map(|i| i - left_arity)
                .collect();
            LogicalPlan::Join {
                left: Box::new(prune_columns(*left, &left_req)),
                right: Box::new(prune_columns(*right, &right_req)),
                kind,
                on,
                schema,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => {
            let mut needed: Vec<usize> = Vec::new();
            for e in group_exprs.iter().chain(aggregates.iter()) {
                needed.extend(e.referenced_indices());
            }
            needed.sort_unstable();
            needed.dedup();
            LogicalPlan::Aggregate {
                input: Box::new(prune_columns(*input, &needed)),
                group_exprs,
                aggregates,
                schema,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let mut needed: Vec<usize> = required.to_vec();
            for k in &keys {
                needed.extend(k.expr.referenced_indices());
            }
            needed.sort_unstable();
            needed.dedup();
            LogicalPlan::Sort {
                input: Box::new(prune_columns(*input, &needed)),
                keys,
            }
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(prune_columns(*input, required)),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => {
            // DISTINCT compares whole rows: every input column is required.
            let all: Vec<usize> = (0..input.schema().len()).collect();
            LogicalPlan::Distinct {
                input: Box::new(prune_columns(*input, &all)),
            }
        }
        LogicalPlan::Values { schema, rows } => LogicalPlan::Values { schema, rows },
    }
}

// ---------------------------------------------------------------------------

/// Rebuild a node with each child transformed by `f`.
fn map_children(plan: LogicalPlan, mut f: impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let left = f(*left);
            let right = f(*right);
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                schema,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group_exprs,
            aggregates,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind_select;
    use llmsql_sql::{parse_statement, Statement};
    use llmsql_store::Catalog;
    use llmsql_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        for name in ["countries", "cities"] {
            cat.create_virtual_table(Schema::new(
                name,
                vec![
                    Column::new("name", DataType::Text).primary_key(),
                    Column::new("country", DataType::Text),
                    Column::new("region", DataType::Text),
                    Column::new("population", DataType::Int),
                ],
            ))
            .unwrap();
        }
        cat
    }

    fn plan(sql: &str, options: &OptimizerOptions) -> LogicalPlan {
        let stmt = parse_statement(sql).unwrap();
        let select = match stmt {
            Statement::Select(s) => s,
            _ => panic!(),
        };
        let bound = bind_select(&catalog(), &select).unwrap();
        optimize(bound, options)
    }

    fn scan_of<'a>(p: &'a LogicalPlan, table: &str) -> &'a LogicalPlan {
        let mut found = None;
        fn walk<'a>(p: &'a LogicalPlan, table: &str, found: &mut Option<&'a LogicalPlan>) {
            if let LogicalPlan::Scan { table: t, .. } = p {
                if t == table {
                    *found = Some(p);
                }
            }
            for c in p.children() {
                walk(c, table, found);
            }
        }
        walk(p, table, &mut found);
        found.expect("scan not found")
    }

    #[test]
    fn filter_pushed_into_scan() {
        let p = plan(
            "SELECT name FROM countries WHERE population > 10 AND region = 'Europe'",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { pushed_filter, .. } => {
                let f = pushed_filter.as_ref().unwrap().to_string();
                assert!(f.contains("population"));
                assert!(f.contains("Europe"));
            }
            _ => unreachable!(),
        }
        // No residual Filter node remains.
        let mut filters = 0;
        p.visit(&mut |n| {
            if matches!(n, LogicalPlan::Filter { .. }) {
                filters += 1;
            }
        });
        assert_eq!(filters, 0);
    }

    #[test]
    fn disabled_pushdown_keeps_filter_node() {
        let p = plan(
            "SELECT name FROM countries WHERE population > 10",
            &OptimizerOptions::disabled(),
        );
        let mut filters = 0;
        p.visit(&mut |n| {
            if matches!(n, LogicalPlan::Filter { .. }) {
                filters += 1;
            }
        });
        assert_eq!(filters, 1);
        match scan_of(&p, "countries") {
            LogicalPlan::Scan {
                pushed_filter,
                prompt_columns,
                pushed_limit,
                ..
            } => {
                assert!(pushed_filter.is_none());
                assert!(prompt_columns.is_none());
                assert!(pushed_limit.is_none());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn filter_split_across_join() {
        let p = plan(
            "SELECT c.name FROM countries c JOIN cities ci ON ci.country = c.name \
             WHERE c.region = 'Europe' AND ci.population > 1000000",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { pushed_filter, .. } => {
                assert!(pushed_filter
                    .as_ref()
                    .unwrap()
                    .to_string()
                    .contains("region"));
            }
            _ => unreachable!(),
        }
        match scan_of(&p, "cities") {
            LogicalPlan::Scan { pushed_filter, .. } => {
                let f = pushed_filter.as_ref().unwrap();
                assert!(f.to_string().contains("population"));
                // indices were remapped to the right side's local schema
                assert!(f.referenced_indices().iter().all(|&i| i < 4));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn left_join_blocks_pushdown_to_right() {
        let p = plan(
            "SELECT c.name FROM countries c LEFT JOIN cities ci ON ci.country = c.name \
             WHERE ci.population > 10",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "cities") {
            LogicalPlan::Scan { pushed_filter, .. } => assert!(pushed_filter.is_none()),
            _ => unreachable!(),
        }
        // the predicate stays as a Filter above the join
        let mut filters = 0;
        p.visit(&mut |n| {
            if matches!(n, LogicalPlan::Filter { .. }) {
                filters += 1;
            }
        });
        assert_eq!(filters, 1);
    }

    #[test]
    fn projection_pruning_sets_prompt_columns() {
        let p = plan(
            "SELECT name FROM countries WHERE population > 10",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan {
                prompt_columns,
                table_schema,
                ..
            } => {
                let cols = prompt_columns.as_ref().unwrap();
                let names: Vec<&str> = cols
                    .iter()
                    .map(|&i| table_schema.columns[i].name.as_str())
                    .collect();
                assert!(names.contains(&"name"));
                assert!(names.contains(&"population")); // needed by the filter
                assert!(!names.contains(&"region"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn select_star_keeps_all_columns() {
        let p = plan("SELECT * FROM countries", &OptimizerOptions::default());
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { prompt_columns, .. } => assert!(prompt_columns.is_none()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn limit_pushdown_through_projection() {
        let p = plan(
            "SELECT name FROM countries LIMIT 7 OFFSET 3",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { pushed_limit, .. } => assert_eq!(*pushed_limit, Some(10)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn sort_blocks_limit_pushdown() {
        let p = plan(
            "SELECT name FROM countries ORDER BY population DESC LIMIT 5",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan { pushed_limit, .. } => assert_eq!(*pushed_limit, None),
            _ => unreachable!(),
        }
    }

    #[test]
    fn aggregate_prunes_to_needed_columns() {
        let p = plan(
            "SELECT region, COUNT(*) FROM countries GROUP BY region",
            &OptimizerOptions::default(),
        );
        match scan_of(&p, "countries") {
            LogicalPlan::Scan {
                prompt_columns,
                table_schema,
                ..
            } => {
                let cols = prompt_columns.as_ref().unwrap();
                let names: Vec<&str> = cols
                    .iter()
                    .map(|&i| table_schema.columns[i].name.as_str())
                    .collect();
                assert!(names.contains(&"region"));
                assert!(!names.contains(&"population"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn optimized_plan_keeps_schema() {
        for sql in [
            "SELECT name FROM countries WHERE population > 10 ORDER BY name LIMIT 3",
            "SELECT c.region, COUNT(*) FROM countries c GROUP BY c.region",
            "SELECT c.name, ci.name FROM countries c JOIN cities ci ON ci.country = c.name WHERE c.population > 5",
        ] {
            let unopt = plan(sql, &OptimizerOptions::disabled());
            let opt = plan(sql, &OptimizerOptions::default());
            assert_eq!(unopt.schema().names(), opt.schema().names(), "{sql}");
        }
    }
}
