//! Conjunct reordering: evaluate the cheapest, most selective predicates
//! first.
//!
//! `AND` is commutative under SQL's three-valued logic, so reordering a
//! conjunction never changes which rows pass — but it changes how much work
//! decides each row. Putting the most selective conjunct first lets
//! short-circuit evaluation (and, for pushed scan filters, the model's own
//! reading of the prompt) reject rows before the expensive clauses run. The
//! sort is stable: equally-ranked conjuncts keep their written order, so a
//! plan with nothing to gain is returned unchanged (and the rule does not
//! report as fired).

use crate::cost::{conjunct_weight, estimate_selectivity};
use crate::expr::{conjoin, split_conjunction, BoundExpr};
use crate::logical::LogicalPlan;
use crate::rules::map_children;

/// Apply the rule to a whole plan: Filter predicates and pushed scan
/// filters both get their conjunctions re-ranked.
pub fn apply(plan: LogicalPlan) -> LogicalPlan {
    let plan = map_children(plan, apply);
    match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input,
            predicate: reorder(predicate),
        },
        LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter,
            prompt_columns,
            virtual_table,
            pushed_limit,
        } => LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter: pushed_filter.map(reorder),
            prompt_columns,
            virtual_table,
            pushed_limit,
        },
        other => other,
    }
}

/// Re-rank one predicate's top-level conjunction by `(selectivity,
/// evaluation weight)`, ascending. Single-conjunct predicates pass through
/// untouched.
pub fn reorder(predicate: BoundExpr) -> BoundExpr {
    let conjuncts = split_conjunction(&predicate);
    if conjuncts.len() < 2 {
        return predicate;
    }
    let mut ranked: Vec<(f64, f64, BoundExpr)> = conjuncts
        .into_iter()
        .map(|c| (estimate_selectivity(&c), conjunct_weight(&c), c))
        .collect();
    // total-order: selectivities and weights are finite by construction
    // (both come from bounded heuristics), but total_cmp keeps the sort
    // well-defined regardless.
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let ordered: Vec<BoundExpr> = ranked.into_iter().map(|(_, _, c)| c).collect();
    conjoin(&ordered).unwrap_or(predicate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_sql::ast::BinaryOp;
    use llmsql_types::DataType;

    fn cmp(op: BinaryOp, idx: usize) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(BoundExpr::col(idx, "c", DataType::Int)),
            op,
            right: Box::new(BoundExpr::lit(1i64)),
        }
    }

    fn and(l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(l),
            op: BinaryOp::And,
            right: Box::new(r),
        }
    }

    #[test]
    fn selective_conjunct_moves_first() {
        // `c0 > 1 AND c1 = 1` reorders to `c1 = 1 AND c0 > 1` (Eq is the
        // more selective form).
        let reordered = reorder(and(cmp(BinaryOp::Gt, 0), cmp(BinaryOp::Eq, 1)));
        let parts = split_conjunction(&reordered);
        assert_eq!(parts[0], cmp(BinaryOp::Eq, 1));
        assert_eq!(parts[1], cmp(BinaryOp::Gt, 0));
    }

    #[test]
    fn equal_ranks_keep_written_order() {
        let original = and(cmp(BinaryOp::Eq, 0), cmp(BinaryOp::Eq, 1));
        assert_eq!(reorder(original.clone()), original);
    }

    #[test]
    fn single_conjunct_untouched() {
        let original = cmp(BinaryOp::Gt, 0);
        assert_eq!(reorder(original.clone()), original);
    }
}
