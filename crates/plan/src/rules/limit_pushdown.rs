//! Limit pushdown: cap how many rows a scan requests in the first place.
//!
//! A pushed limit bounds the number of enumeration pages an LLM scan pays
//! for. Only operators that cannot change *which* rows are needed may sit
//! between the LIMIT and the scan: projections pass the push through,
//! everything else (filters, joins, aggregates, sorts, DISTINCT) blocks it.

use crate::logical::LogicalPlan;
use crate::rules::map_children;

/// Apply the rule to a whole plan.
pub fn apply(plan: LogicalPlan) -> LogicalPlan {
    push_limits(plan, None)
}

fn push_limits(plan: LogicalPlan, pending: Option<usize>) -> LogicalPlan {
    match plan {
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            // The scan must produce offset + limit rows for the limit node to
            // work with.
            let pushed = limit.map(|l| l + offset);
            LogicalPlan::Limit {
                input: Box::new(push_limits(*input, pushed)),
                limit,
                offset,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(push_limits(*input, pending)),
            exprs,
            schema,
        },
        LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter,
            prompt_columns,
            virtual_table,
            pushed_limit,
        } => {
            // A scan with a pushed filter still benefits: the model applies
            // the filter before returning rows, so the cap stays correct.
            let new_limit = match (pending, pushed_limit) {
                (Some(p), Some(existing)) => Some(existing.min(p)),
                (Some(p), None) => Some(p),
                (None, existing) => existing,
            };
            LogicalPlan::Scan {
                table,
                alias,
                table_schema,
                schema,
                pushed_filter,
                prompt_columns,
                virtual_table,
                pushed_limit: new_limit,
            }
        }
        // Any other operator blocks the push (it may need to see all input
        // rows), but keep descending to handle nested Limit nodes.
        other => map_children(other, |c| push_limits(c, None)),
    }
}
