//! Projection pruning: narrow the set of columns an LLM scan's prompt asks
//! for.
//!
//! Every column a prompt requests costs completion tokens on every returned
//! row. This rule walks the plan top-down tracking which output columns each
//! parent actually consumes; scans remember the required base columns (plus
//! their pushed filter's columns and the key column) as `prompt_columns`.

use crate::logical::LogicalPlan;

/// Apply the rule to a whole plan (every root output column is required).
pub fn apply(plan: LogicalPlan) -> LogicalPlan {
    let all: Vec<usize> = (0..plan.schema().len()).collect();
    prune_columns(plan, &all)
}

/// `required` lists the output-column indices of `plan` that the parent
/// actually consumes.
fn prune_columns(plan: LogicalPlan, required: &[usize]) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter,
            prompt_columns: _,
            virtual_table,
            pushed_limit,
        } => {
            let mut needed: Vec<usize> = required.to_vec();
            if let Some(f) = &pushed_filter {
                needed.extend(f.referenced_indices());
            }
            // Always fetch the key column: LLM scans identify entities by it.
            let key_idx = table_schema
                .columns
                .iter()
                .position(|c| c.primary_key)
                .unwrap_or(0);
            needed.push(key_idx);
            needed.sort_unstable();
            needed.dedup();
            needed.retain(|&i| i < table_schema.arity());
            let prompt_columns = if needed.len() == table_schema.arity() {
                None
            } else {
                Some(needed)
            };
            LogicalPlan::Scan {
                table,
                alias,
                table_schema,
                schema,
                pushed_filter,
                prompt_columns,
                virtual_table,
                pushed_limit,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => {
            let mut needed: Vec<usize> = Vec::new();
            for e in &exprs {
                needed.extend(e.referenced_indices());
            }
            needed.sort_unstable();
            needed.dedup();
            LogicalPlan::Project {
                input: Box::new(prune_columns(*input, &needed)),
                exprs,
                schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut needed: Vec<usize> = required.to_vec();
            needed.extend(predicate.referenced_indices());
            needed.sort_unstable();
            needed.dedup();
            LogicalPlan::Filter {
                input: Box::new(prune_columns(*input, &needed)),
                predicate,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let left_arity = left.schema().len();
            let mut needed: Vec<usize> = required.to_vec();
            if let Some(on) = &on {
                needed.extend(on.referenced_indices());
            }
            let left_req: Vec<usize> = needed.iter().copied().filter(|&i| i < left_arity).collect();
            let right_req: Vec<usize> = needed
                .iter()
                .copied()
                .filter(|&i| i >= left_arity)
                .map(|i| i - left_arity)
                .collect();
            LogicalPlan::Join {
                left: Box::new(prune_columns(*left, &left_req)),
                right: Box::new(prune_columns(*right, &right_req)),
                kind,
                on,
                schema,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => {
            let mut needed: Vec<usize> = Vec::new();
            for e in group_exprs.iter().chain(aggregates.iter()) {
                needed.extend(e.referenced_indices());
            }
            needed.sort_unstable();
            needed.dedup();
            LogicalPlan::Aggregate {
                input: Box::new(prune_columns(*input, &needed)),
                group_exprs,
                aggregates,
                schema,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let mut needed: Vec<usize> = required.to_vec();
            for k in &keys {
                needed.extend(k.expr.referenced_indices());
            }
            needed.sort_unstable();
            needed.dedup();
            LogicalPlan::Sort {
                input: Box::new(prune_columns(*input, &needed)),
                keys,
            }
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(prune_columns(*input, required)),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => {
            // DISTINCT compares whole rows: every input column is required.
            let all: Vec<usize> = (0..input.schema().len()).collect();
            LogicalPlan::Distinct {
                input: Box::new(prune_columns(*input, &all)),
            }
        }
        LogicalPlan::Values { schema, rows } => LogicalPlan::Values { schema, rows },
    }
}
