//! Constant folding: evaluate literal-only subexpressions at plan time.
//!
//! Anything folded here is a token the prompt renderer never has to spell
//! out and a predicate the executor never has to re-evaluate per row. The
//! rule is deliberately conservative: it only folds non-NULL literals of
//! matching types and the three-valued-logic-safe boolean identities
//! (`TRUE AND x → x`, `FALSE AND x → FALSE`, duals for OR), so folding can
//! never change a query's result rows. A `WHERE` clause that folds to `TRUE`
//! removes its Filter node entirely.

use llmsql_sql::ast::{BinaryOp, UnaryOp};
use llmsql_types::Value;

use crate::expr::BoundExpr;
use crate::logical::LogicalPlan;
use crate::rules::map_children;

/// Apply the rule to a whole plan.
pub fn apply(plan: LogicalPlan) -> LogicalPlan {
    let plan = map_children(plan, apply);
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            match fold_expr(predicate) {
                // WHERE TRUE filters nothing: drop the node.
                BoundExpr::Literal(Value::Bool(true)) => *input,
                folded => LogicalPlan::Filter {
                    input,
                    predicate: folded,
                },
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input,
            exprs: exprs.into_iter().map(fold_expr).collect(),
            schema,
        },
        LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter,
            prompt_columns,
            virtual_table,
            pushed_limit,
        } => LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter: pushed_filter.map(fold_expr),
            prompt_columns,
            virtual_table,
            pushed_limit,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => LogicalPlan::Join {
            left,
            right,
            kind,
            on: on.map(fold_expr),
            schema,
        },
        LogicalPlan::Values { schema, rows } => LogicalPlan::Values {
            schema,
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(fold_expr).collect())
                .collect(),
        },
        other => other,
    }
}

/// Fold one expression bottom-up.
pub fn fold_expr(expr: BoundExpr) -> BoundExpr {
    match expr {
        BoundExpr::Binary { left, op, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            fold_binary(left, op, right)
        }
        BoundExpr::Unary { op, expr } => {
            let inner = fold_expr(*expr);
            match (op, &inner) {
                (UnaryOp::Not, BoundExpr::Literal(Value::Bool(b))) => BoundExpr::lit(!*b),
                (UnaryOp::Neg, BoundExpr::Literal(Value::Int(i))) => match i.checked_neg() {
                    Some(n) => BoundExpr::lit(n),
                    None => BoundExpr::Unary {
                        op,
                        expr: Box::new(inner),
                    },
                },
                _ => BoundExpr::Unary {
                    op,
                    expr: Box::new(inner),
                },
            }
        }
        BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(fold_expr(*expr)),
            negated,
        },
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(fold_expr(*expr)),
            list: list.into_iter().map(fold_expr).collect(),
            negated,
        },
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(fold_expr(*expr)),
            low: Box::new(fold_expr(*low)),
            high: Box::new(fold_expr(*high)),
            negated,
        },
        BoundExpr::Cast { expr, data_type } => BoundExpr::Cast {
            expr: Box::new(fold_expr(*expr)),
            data_type,
        },
        BoundExpr::Case {
            branches,
            else_expr,
        } => BoundExpr::Case {
            branches: branches
                .into_iter()
                .map(|(w, t)| (fold_expr(w), fold_expr(t)))
                .collect(),
            else_expr: else_expr.map(|e| Box::new(fold_expr(*e))),
        },
        BoundExpr::Aggregate {
            func,
            arg,
            distinct,
        } => BoundExpr::Aggregate {
            func,
            arg: arg.map(|a| Box::new(fold_expr(*a))),
            distinct,
        },
        leaf @ (BoundExpr::Literal(_) | BoundExpr::Column { .. }) => leaf,
    }
}

fn fold_binary(left: BoundExpr, op: BinaryOp, right: BoundExpr) -> BoundExpr {
    use BoundExpr::Literal;
    // Three-valued-logic-safe boolean identities. `FALSE AND x` is FALSE and
    // `TRUE OR x` is TRUE even when x is NULL, so both eliminations hold.
    match (op, &left, &right) {
        (BinaryOp::And, Literal(Value::Bool(true)), _) => return right,
        (BinaryOp::And, _, Literal(Value::Bool(true))) => return left,
        (BinaryOp::And, Literal(Value::Bool(false)), _)
        | (BinaryOp::And, _, Literal(Value::Bool(false))) => return BoundExpr::lit(false),
        (BinaryOp::Or, Literal(Value::Bool(false)), _) => return right,
        (BinaryOp::Or, _, Literal(Value::Bool(false))) => return left,
        (BinaryOp::Or, Literal(Value::Bool(true)), _)
        | (BinaryOp::Or, _, Literal(Value::Bool(true))) => return BoundExpr::lit(true),
        _ => {}
    }
    // Literal-only arithmetic and comparisons, same-type and non-NULL only
    // (mixed-type coercion stays with the runtime evaluator).
    if let (Literal(a), Literal(b)) = (&left, &right) {
        if let Some(folded) = fold_literals(a, op, b) {
            return folded;
        }
    }
    BoundExpr::Binary {
        left: Box::new(left),
        op,
        right: Box::new(right),
    }
}

fn fold_literals(a: &Value, op: BinaryOp, b: &Value) -> Option<BoundExpr> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            BinaryOp::Plus => x.checked_add(*y).map(BoundExpr::lit),
            BinaryOp::Minus => x.checked_sub(*y).map(BoundExpr::lit),
            BinaryOp::Multiply => x.checked_mul(*y).map(BoundExpr::lit),
            BinaryOp::Eq => Some(BoundExpr::lit(x == y)),
            BinaryOp::NotEq => Some(BoundExpr::lit(x != y)),
            BinaryOp::Lt => Some(BoundExpr::lit(x < y)),
            BinaryOp::LtEq => Some(BoundExpr::lit(x <= y)),
            BinaryOp::Gt => Some(BoundExpr::lit(x > y)),
            BinaryOp::GtEq => Some(BoundExpr::lit(x >= y)),
            _ => None,
        },
        (Value::Text(x), Value::Text(y)) => match op {
            BinaryOp::Eq => Some(BoundExpr::lit(x == y)),
            BinaryOp::NotEq => Some(BoundExpr::lit(x != y)),
            BinaryOp::Lt => Some(BoundExpr::lit(x < y)),
            BinaryOp::LtEq => Some(BoundExpr::lit(x <= y)),
            BinaryOp::Gt => Some(BoundExpr::lit(x > y)),
            BinaryOp::GtEq => Some(BoundExpr::lit(x >= y)),
            BinaryOp::Concat => Some(BoundExpr::lit(format!("{x}{y}"))),
            _ => None,
        },
        (Value::Bool(x), Value::Bool(y)) => match op {
            BinaryOp::Eq => Some(BoundExpr::lit(x == y)),
            BinaryOp::NotEq => Some(BoundExpr::lit(x != y)),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::DataType;

    fn bin(l: BoundExpr, op: BinaryOp, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    #[test]
    fn folds_integer_arithmetic_and_comparisons() {
        let e = bin(BoundExpr::lit(2i64), BinaryOp::Plus, BoundExpr::lit(3i64));
        assert_eq!(fold_expr(e), BoundExpr::lit(5i64));
        let e = bin(BoundExpr::lit(2i64), BinaryOp::Gt, BoundExpr::lit(3i64));
        assert_eq!(fold_expr(e), BoundExpr::lit(false));
    }

    #[test]
    fn overflow_is_left_unfolded() {
        let e = bin(
            BoundExpr::lit(i64::MAX),
            BinaryOp::Plus,
            BoundExpr::lit(1i64),
        );
        assert!(matches!(fold_expr(e), BoundExpr::Binary { .. }));
    }

    #[test]
    fn boolean_identities_respect_three_valued_logic() {
        let col = BoundExpr::col(0, "x", DataType::Bool);
        // TRUE AND x -> x
        let e = bin(BoundExpr::lit(true), BinaryOp::And, col.clone());
        assert_eq!(fold_expr(e), col);
        // x AND FALSE -> FALSE (even if x is NULL at runtime)
        let e = bin(col.clone(), BinaryOp::And, BoundExpr::lit(false));
        assert_eq!(fold_expr(e), BoundExpr::lit(false));
        // x OR TRUE -> TRUE
        let e = bin(col.clone(), BinaryOp::Or, BoundExpr::lit(true));
        assert_eq!(fold_expr(e), BoundExpr::lit(true));
        // NOT folding
        let e = BoundExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(BoundExpr::lit(false)),
        };
        assert_eq!(fold_expr(e), BoundExpr::lit(true));
    }

    #[test]
    fn text_concat_and_comparison() {
        let e = bin(BoundExpr::lit("ab"), BinaryOp::Concat, BoundExpr::lit("cd"));
        assert_eq!(fold_expr(e), BoundExpr::lit("abcd"));
    }

    #[test]
    fn null_literals_are_never_folded() {
        let e = bin(
            BoundExpr::Literal(Value::Null),
            BinaryOp::Eq,
            BoundExpr::lit(1i64),
        );
        assert!(matches!(fold_expr(e), BoundExpr::Binary { .. }));
    }
}
