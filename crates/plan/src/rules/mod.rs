//! The optimizer's rewrite-rule registry.
//!
//! Each rule lives in its own module as a pure `LogicalPlan -> LogicalPlan`
//! function and is named by a stable key (the same registry style as
//! `llmsql-lint`'s source rules). The driver in [`crate::optimizer`] applies
//! the enabled rules in a fixed order and records which of them changed the
//! plan in a [`RuleTrace`]; `EXPLAIN` prints the trace so a surprising plan
//! can be attributed to the rule that produced it.

use std::fmt;

pub mod constant_fold;
pub mod limit_pushdown;
pub mod llm_conjunct_reorder;
pub mod predicate_pushdown;
pub mod projection_prune;

/// Rule key: [`constant_fold`].
pub const RULE_CONSTANT_FOLD: &str = "constant-fold";
/// Rule key: [`predicate_pushdown`].
pub const RULE_PREDICATE_PUSHDOWN: &str = "predicate-pushdown";
/// Rule key: [`limit_pushdown`].
pub const RULE_LIMIT_PUSHDOWN: &str = "limit-pushdown";
/// Rule key: [`llm_conjunct_reorder`].
pub const RULE_LLM_CONJUNCT_REORDER: &str = "llm-conjunct-reorder";
/// Rule key: [`projection_prune`].
pub const RULE_PROJECTION_PRUNE: &str = "projection-prune";

/// A rewrite rule's entry point: a pure plan-to-plan function.
pub type RewriteRule = fn(LogicalPlan) -> LogicalPlan;

/// The registry: every rule's key and entry point, in the order the driver
/// applies them. Fold first (simplified predicates push better), pushdowns
/// before reorder (so pushed scan filters get ranked too), pruning last (it
/// must see the final pushed filters to keep their columns).
pub const ALL_RULES: &[(&str, RewriteRule)] = &[
    (RULE_CONSTANT_FOLD, constant_fold::apply),
    (RULE_PREDICATE_PUSHDOWN, predicate_pushdown::apply),
    (RULE_LIMIT_PUSHDOWN, limit_pushdown::apply),
    (RULE_LLM_CONJUNCT_REORDER, llm_conjunct_reorder::apply),
    (RULE_PROJECTION_PRUNE, projection_prune::apply),
];

/// Which rules changed the plan, in application order. A rule "fires" when
/// its output differs structurally from its input; applying a rule to its own
/// output never fires again (the rules are idempotent).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleTrace {
    /// Keys of the rules that changed the plan, in application order.
    pub fired: Vec<&'static str>,
}

impl RuleTrace {
    /// Whether the named rule changed the plan.
    pub fn did_fire(&self, rule: &str) -> bool {
        self.fired.contains(&rule)
    }

    /// True when no rule changed the plan.
    pub fn is_empty(&self) -> bool {
        self.fired.is_empty()
    }
}

impl fmt::Display for RuleTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fired.is_empty() {
            write!(f, "(no rules fired)")
        } else {
            write!(f, "{}", self.fired.join(", "))
        }
    }
}

use crate::logical::LogicalPlan;

/// Rebuild a node with each child transformed by `f` (shared by the rules).
pub(crate) fn map_children(
    plan: LogicalPlan,
    mut f: impl FnMut(LogicalPlan) -> LogicalPlan,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            schema,
        } => LogicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
            schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let left = f(*left);
            let right = f(*right);
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                schema,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group_exprs,
            aggregates,
            schema,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            limit,
            offset,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
    }
}
