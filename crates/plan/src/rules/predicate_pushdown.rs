//! Predicate pushdown: move filters into scans (and through joins).
//!
//! For a virtual relation the pushed condition is rendered into the prompt,
//! so the model returns only matching rows — fewer pages, fewer completion
//! tokens, fewer dollars. This is the single highest-leverage rewrite in the
//! engine: an LLM predicate costs ~6 orders of magnitude more than a native
//! one, so every row the prompt filters out is a row never paid for.

use llmsql_sql::ast::{BinaryOp, JoinKind};

use crate::expr::{conjoin, split_conjunction, BoundExpr};
use crate::logical::LogicalPlan;
use crate::rules::map_children;

/// Conjoin exactly two predicates (total, unlike the slice-based
/// [`conjoin`], which returns `None` for an empty slice).
fn and2(a: BoundExpr, b: BoundExpr) -> BoundExpr {
    BoundExpr::Binary {
        left: Box::new(a),
        op: BinaryOp::And,
        right: Box::new(b),
    }
}

/// Apply the rule to a whole plan.
pub fn apply(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = apply(*input);
            push_predicate_into(input, predicate)
        }
        other => map_children(other, apply),
    }
}

/// Push a predicate as far down into `plan` as possible; whatever cannot be
/// pushed remains as a Filter node on top.
fn push_predicate_into(plan: LogicalPlan, predicate: BoundExpr) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            alias,
            table_schema,
            schema,
            pushed_filter,
            prompt_columns,
            virtual_table,
            pushed_limit,
        } => {
            let combined = match pushed_filter {
                Some(existing) => and2(existing, predicate),
                None => predicate,
            };
            LogicalPlan::Scan {
                table,
                alias,
                table_schema,
                schema,
                pushed_filter: Some(combined),
                prompt_columns,
                virtual_table,
                pushed_limit,
            }
        }
        LogicalPlan::Filter {
            input,
            predicate: inner,
        } => {
            // Merge consecutive filters and keep pushing.
            push_predicate_into(*input, and2(inner, predicate))
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => {
            let left_arity = left.schema().len();
            let mut to_left: Vec<BoundExpr> = Vec::new();
            let mut to_right: Vec<BoundExpr> = Vec::new();
            let mut keep: Vec<BoundExpr> = Vec::new();
            for conjunct in split_conjunction(&predicate) {
                let refs = conjunct.referenced_indices();
                let only_left = refs.iter().all(|&i| i < left_arity);
                let only_right = refs.iter().all(|&i| i >= left_arity);
                // Pushing below an outer join's preserved side changes
                // semantics; only push into the side that cannot produce
                // padded NULLs.
                match (only_left, only_right, kind) {
                    (true, _, JoinKind::Inner | JoinKind::Left | JoinKind::Cross) => {
                        to_left.push(conjunct)
                    }
                    (_, true, JoinKind::Inner | JoinKind::Right | JoinKind::Cross) => {
                        match conjunct.remap_columns(&|i| i.checked_sub(left_arity)) {
                            Some(remapped) => to_right.push(remapped),
                            // Unreachable (all refs are on the right side),
                            // but keeping the conjunct above the join is
                            // always sound.
                            None => keep.push(conjunct),
                        }
                    }
                    _ => keep.push(conjunct),
                }
            }
            let new_left = match conjoin(&to_left) {
                Some(p) => push_predicate_into(*left, p),
                None => apply(*left),
            };
            let new_right = match conjoin(&to_right) {
                Some(p) => push_predicate_into(*right, p),
                None => apply(*right),
            };
            let join = LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
                schema,
            };
            match conjoin(&keep) {
                Some(p) => LogicalPlan::Filter {
                    input: Box::new(join),
                    predicate: p,
                },
                None => join,
            }
        }
        // It is not worth rewriting predicates through projections or
        // aggregates for this engine; keep the filter where it is.
        other => LogicalPlan::Filter {
            input: Box::new(map_children(other, apply)),
            predicate,
        },
    }
}
