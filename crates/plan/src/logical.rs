//! The logical query plan.
//!
//! Plans are produced by the [binder](crate::binder), transformed by the
//! [optimizer](crate::optimizer) and interpreted by the executor
//! (`llmsql-exec`). LLM-specific knowledge lives in the `Scan` node: a scan of
//! a *virtual* relation carries the pushed-down filter (rendered into the
//! prompt) and the set of columns that actually need to be requested from the
//! model.

use llmsql_sql::ast::JoinKind;
use llmsql_types::{RelSchema, Schema};

use crate::expr::BoundExpr;

/// A sort key: expression plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The sort expression (bound against the node's input).
    pub expr: BoundExpr,
    /// Ascending?
    pub ascending: bool,
}

/// A node of the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of a base relation, materialized or virtual.
    Scan {
        /// Catalog name of the relation.
        table: String,
        /// Alias the query knows it by.
        alias: String,
        /// The base-table schema (with prompt descriptions).
        table_schema: Schema,
        /// Output schema: all base columns qualified by the alias.
        schema: RelSchema,
        /// Filter pushed into the scan, bound against the base columns.
        /// For virtual relations it is rendered into the prompt; for
        /// materialized ones it is evaluated during the scan.
        pushed_filter: Option<BoundExpr>,
        /// The base columns that must actually be fetched (prompt projection).
        /// `None` means all. Columns outside this set are emitted as NULL by
        /// LLM-backed scans; the pruning rule guarantees nothing reads them.
        prompt_columns: Option<Vec<usize>>,
        /// Whether the relation is virtual (LLM-backed).
        virtual_table: bool,
        /// A limit pushed into the scan (from a top-level LIMIT with no
        /// intervening order-sensitive operators).
        pushed_limit: Option<usize>,
    },
    /// A constant relation (SELECT without FROM, or VALUES).
    Values {
        /// Output schema.
        schema: RelSchema,
        /// Row expressions.
        rows: Vec<Vec<BoundExpr>>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: BoundExpr,
    },
    /// Projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions.
        exprs: Vec<BoundExpr>,
        /// Output schema (names/aliases).
        schema: RelSchema,
    },
    /// Join of two inputs.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join kind.
        kind: JoinKind,
        /// Join condition over the concatenated schema.
        on: Option<BoundExpr>,
        /// Output schema (left ++ right).
        schema: RelSchema,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping expressions over the input.
        group_exprs: Vec<BoundExpr>,
        /// Aggregate calls over the input (each is `BoundExpr::Aggregate`).
        aggregates: Vec<BoundExpr>,
        /// Output schema: group columns then aggregate columns.
        schema: RelSchema,
    },
    /// Sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys over the input schema.
        keys: Vec<SortKey>,
    },
    /// Limit/offset.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows to emit (`None` = unlimited, offset only).
        limit: Option<usize>,
        /// Rows to skip.
        offset: usize,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// The output schema of this node.
    pub fn schema(&self) -> RelSchema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::Values { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. } => schema.clone(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => input.schema(),
        }
    }

    /// The direct children of this node.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Number of plan nodes (for tests and metrics).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Names of all scanned base tables.
    pub fn scanned_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let LogicalPlan::Scan { table, .. } = p {
                out.push(table.clone());
            }
        });
        out
    }

    /// A copy of the plan with every scan marked virtual (LLM-backed).
    ///
    /// The per-scan flag mirrors the schema, but in `LlmOnly` execution
    /// every scan hits the model regardless; the engine applies this before
    /// cost estimation and plan linting so the static analysis sees the
    /// scans the executor will actually run.
    pub fn with_scans_marked_virtual(self) -> LogicalPlan {
        match self {
            LogicalPlan::Scan {
                table,
                alias,
                table_schema,
                schema,
                pushed_filter,
                prompt_columns,
                virtual_table: _,
                pushed_limit,
            } => LogicalPlan::Scan {
                table,
                alias,
                table_schema,
                schema,
                pushed_filter,
                prompt_columns,
                virtual_table: true,
                pushed_limit,
            },
            other => crate::rules::map_children(other, LogicalPlan::with_scans_marked_virtual),
        }
    }

    /// True if any scanned relation is virtual (LLM-backed).
    pub fn uses_virtual_tables(&self) -> bool {
        let mut any = false;
        self.visit(&mut |p| {
            if let LogicalPlan::Scan { virtual_table, .. } = p {
                any |= *virtual_table;
            }
        });
        any
    }

    /// Visit every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&LogicalPlan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Render an EXPLAIN-style indented tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        let line = match self {
            LogicalPlan::Scan {
                table,
                alias,
                pushed_filter,
                prompt_columns,
                virtual_table,
                pushed_limit,
                table_schema,
                ..
            } => {
                let mut s = format!(
                    "{}Scan {}{}",
                    if *virtual_table { "Llm" } else { "" },
                    table,
                    if alias != table {
                        format!(" AS {alias}")
                    } else {
                        String::new()
                    }
                );
                if let Some(cols) = prompt_columns {
                    let names: Vec<&str> = cols
                        .iter()
                        .filter_map(|&i| table_schema.columns.get(i).map(|c| c.name.as_str()))
                        .collect();
                    s.push_str(&format!(" columns=[{}]", names.join(", ")));
                }
                if let Some(f) = pushed_filter {
                    s.push_str(&format!(" filter={f}"));
                }
                if let Some(l) = pushed_limit {
                    s.push_str(&format!(" limit={l}"));
                }
                s
            }
            LogicalPlan::Values { rows, .. } => format!("Values rows={}", rows.len()),
            LogicalPlan::Filter { predicate, .. } => format!("Filter {predicate}"),
            LogicalPlan::Project { exprs, schema, .. } => {
                let items: Vec<String> = exprs
                    .iter()
                    .zip(&schema.fields)
                    .map(|(e, f)| format!("{e} AS {}", f.name))
                    .collect();
                format!("Project [{}]", items.join(", "))
            }
            LogicalPlan::Join { kind, on, .. } => match on {
                Some(on) => format!("{kind} ON {on}"),
                None => format!("{kind}"),
            },
            LogicalPlan::Aggregate {
                group_exprs,
                aggregates,
                ..
            } => format!(
                "Aggregate group=[{}] aggs=[{}]",
                group_exprs
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                aggregates
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Sort { keys, .. } => format!(
                "Sort [{}]",
                keys.iter()
                    .map(|k| format!("{}{}", k.expr, if k.ascending { "" } else { " DESC" }))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            LogicalPlan::Limit { limit, offset, .. } => {
                format!("Limit limit={limit:?} offset={offset}")
            }
            LogicalPlan::Distinct { .. } => "Distinct".to_string(),
        };
        out.push_str(&indent);
        out.push_str(&line);
        out.push('\n');
        for c in self.children() {
            c.explain_into(out, depth + 1);
        }
    }
}

/// A rough estimate of the number of LLM calls a plan will issue under the
/// given batch size, assuming `est_rows` rows per virtual relation. Used by
/// EXPLAIN output and by the ablation experiment's reporting.
pub fn estimate_llm_calls(plan: &LogicalPlan, batch_size: usize, est_rows: usize) -> usize {
    let mut calls = 0usize;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan {
            virtual_table: true,
            pushed_limit,
            ..
        } = p
        {
            let rows = pushed_limit.map(|l| l.min(est_rows)).unwrap_or(est_rows);
            calls += rows.div_ceil(batch_size.max(1)).max(1);
        }
    });
    calls
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::{Column, DataType, Field};

    fn scan(virtual_table: bool) -> LogicalPlan {
        let table_schema = Schema::new(
            "t",
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("x", DataType::Int),
            ],
        );
        LogicalPlan::Scan {
            table: "t".into(),
            alias: "t".into(),
            schema: RelSchema::from_table(&table_schema, "t"),
            table_schema,
            pushed_filter: None,
            prompt_columns: None,
            virtual_table,
            pushed_limit: None,
        }
    }

    #[test]
    fn schema_propagates_through_wrappers() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan(false)),
                predicate: BoundExpr::lit(true),
            }),
            limit: Some(5),
            offset: 0,
        };
        assert_eq!(plan.schema().len(), 2);
        assert_eq!(plan.node_count(), 3);
        assert_eq!(plan.scanned_tables(), vec!["t".to_string()]);
        assert!(!plan.uses_virtual_tables());
    }

    #[test]
    fn join_schema_concatenates() {
        let join = LogicalPlan::Join {
            schema: scan(false).schema().join(&scan(true).schema()),
            left: Box::new(scan(false)),
            right: Box::new(scan(true)),
            kind: JoinKind::Inner,
            on: None,
        };
        assert_eq!(join.schema().len(), 4);
        assert!(join.uses_virtual_tables());
        assert_eq!(join.children().len(), 2);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = LogicalPlan::Project {
            schema: RelSchema::new(vec![Field::new(None, "x", DataType::Int, true)]),
            exprs: vec![BoundExpr::col(1, "x", DataType::Int)],
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan(true)),
                predicate: BoundExpr::Binary {
                    left: Box::new(BoundExpr::col(1, "x", DataType::Int)),
                    op: llmsql_sql::ast::BinaryOp::Gt,
                    right: Box::new(BoundExpr::lit(5i64)),
                },
            }),
        };
        let text = plan.explain();
        assert!(text.contains("Project"));
        assert!(text.contains("Filter"));
        assert!(text.contains("LlmScan t"));
        // indentation increases with depth
        assert!(text.lines().nth(2).unwrap().starts_with("    "));
    }

    #[test]
    fn llm_call_estimate() {
        let plan = scan(true);
        assert_eq!(estimate_llm_calls(&plan, 20, 100), 5);
        assert_eq!(estimate_llm_calls(&plan, 200, 100), 1);
        assert_eq!(estimate_llm_calls(&scan(false), 20, 100), 0);
        // A pushed limit caps the estimate.
        let mut limited = scan(true);
        if let LogicalPlan::Scan { pushed_limit, .. } = &mut limited {
            *pushed_limit = Some(10);
        }
        assert_eq!(estimate_llm_calls(&limited, 20, 100), 1);
    }
}
