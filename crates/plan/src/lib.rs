#![forbid(unsafe_code)]
//! # llmsql-plan
//!
//! Query planning and static plan analysis: [`BoundExpr`] (resolved
//! expressions), [`LogicalPlan`] construction from the parsed AST
//! ([`binder`]), the call-minimising rule-based [`optimizer`] (rules live in
//! [`rules`], one module each), the per-operator LLM [`cost`] model, and the
//! [`lint`] pass that flags statically-detectable cost hazards. `EXPLAIN`
//! stitches all three together.

#![warn(missing_docs)]

pub mod binder;
pub mod cost;
pub mod expr;
pub mod lint;
pub mod logical;
pub mod optimizer;
pub mod rules;

pub use binder::{bind_select, schema_from_create};
pub use cost::{cost_plan, CostParams, NodeCost, OperatorCost, PlanCost};
pub use expr::{bind_expr, conjoin, split_conjunction, BoundExpr};
pub use lint::{lint_plan, PlanDiagnostic, Severity};
pub use logical::{estimate_llm_calls, LogicalPlan, SortKey};
pub use optimizer::{optimize, optimize_traced, OptimizerOptions};
pub use rules::RuleTrace;

#[cfg(test)]
mod proptests {
    use super::*;
    use llmsql_sql::{parse_statement, Statement};
    use llmsql_store::Catalog;
    use llmsql_types::{Column, DataType, Schema};
    use proptest::prelude::*;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.create_virtual_table(Schema::new(
            "t",
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Text),
                Column::new("c", DataType::Float),
            ],
        ))
        .unwrap();
        cat
    }

    /// Generate simple single-table SQL queries.
    fn arb_query() -> impl Strategy<Value = String> {
        let col = prop_oneof![Just("id"), Just("a"), Just("b"), Just("c")];
        let pred = (col.clone(), 0i64..100).prop_map(|(c, v)| {
            if c == "b" {
                "b LIKE '%x%'".to_string()
            } else {
                format!("{c} > {v}")
            }
        });
        (
            proptest::collection::vec(col, 1..3),
            proptest::option::of(pred),
            proptest::option::of(0u64..50),
            any::<bool>(),
        )
            .prop_map(|(cols, pred, limit, order)| {
                let mut sql = format!("SELECT {} FROM t", cols.join(", "));
                if let Some(p) = pred {
                    sql.push_str(&format!(" WHERE {p}"));
                }
                if order {
                    sql.push_str(" ORDER BY a");
                }
                if let Some(l) = limit {
                    sql.push_str(&format!(" LIMIT {l}"));
                }
                sql
            })
    }

    proptest! {
        /// The optimizer never changes the output schema of a plan.
        #[test]
        fn optimizer_preserves_schema(sql in arb_query()) {
            let cat = catalog();
            let stmt = parse_statement(&sql).unwrap();
            let select = match stmt { Statement::Select(s) => s, _ => unreachable!() };
            let bound = bind_select(&cat, &select).unwrap();
            let before = bound.schema();
            let after = optimize(bound, &OptimizerOptions::default()).schema();
            prop_assert_eq!(before.names(), after.names());
        }

        /// Pushed filters never reference out-of-range base columns.
        #[test]
        fn pushed_filters_reference_valid_columns(sql in arb_query()) {
            let cat = catalog();
            let stmt = parse_statement(&sql).unwrap();
            let select = match stmt { Statement::Select(s) => s, _ => unreachable!() };
            let bound = bind_select(&cat, &select).unwrap();
            let opt = optimize(bound, &OptimizerOptions::default());
            let mut ok = true;
            opt.visit(&mut |p| {
                if let LogicalPlan::Scan { pushed_filter: Some(f), table_schema, .. } = p {
                    ok &= f.referenced_indices().iter().all(|&i| i < table_schema.arity());
                }
            });
            prop_assert!(ok);
        }
    }
}
