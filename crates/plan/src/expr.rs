//! Bound (resolved) expressions.
//!
//! The binder turns AST expressions into [`BoundExpr`]s whose column
//! references carry the flat input-row index, the original name and the data
//! type. Bound expressions can be rendered back to SQL text (used when a
//! predicate is pushed down into a prompt) and report their result type.

use std::fmt;

use llmsql_sql::ast::{AggregateFunc, BinaryOp, Expr, UnaryOp};
use llmsql_types::{DataType, Error, RelSchema, Result, Value};

/// An expression with resolved column references.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// A literal value.
    Literal(Value),
    /// A resolved column reference.
    Column {
        /// Index into the flattened input row.
        index: usize,
        /// Column name (for display / prompt rendering).
        name: String,
        /// Data type of the column.
        data_type: DataType,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<BoundExpr>,
    },
    /// IS NULL / IS NOT NULL.
    IsNull {
        /// Operand.
        expr: Box<BoundExpr>,
        /// Negated (IS NOT NULL).
        negated: bool,
    },
    /// IN list.
    InList {
        /// Operand.
        expr: Box<BoundExpr>,
        /// List items.
        list: Vec<BoundExpr>,
        /// Negated (NOT IN).
        negated: bool,
    },
    /// BETWEEN.
    Between {
        /// Operand.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
        /// Negated (NOT BETWEEN).
        negated: bool,
    },
    /// CAST.
    Cast {
        /// Operand.
        expr: Box<BoundExpr>,
        /// Target type.
        data_type: DataType,
    },
    /// CASE WHEN.
    Case {
        /// WHEN/THEN branches.
        branches: Vec<(BoundExpr, BoundExpr)>,
        /// ELSE expression.
        else_expr: Option<Box<BoundExpr>>,
    },
    /// An aggregate call. Only valid underneath an Aggregate plan node; the
    /// executor's scalar evaluator rejects it.
    Aggregate {
        /// Which aggregate.
        func: AggregateFunc,
        /// Argument (`None` = COUNT(*)).
        arg: Option<Box<BoundExpr>>,
        /// DISTINCT aggregate.
        distinct: bool,
    },
}

impl BoundExpr {
    /// Convenience: a literal.
    pub fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    /// Convenience: a column reference.
    pub fn col(index: usize, name: &str, data_type: DataType) -> BoundExpr {
        BoundExpr::Column {
            index,
            name: name.to_string(),
            data_type,
        }
    }

    /// The static result type of the expression (best effort).
    pub fn data_type(&self) -> DataType {
        match self {
            BoundExpr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
            BoundExpr::Column { data_type, .. } => *data_type,
            BoundExpr::Binary { left, op, right } => match op {
                BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
                | BinaryOp::Like => DataType::Bool,
                BinaryOp::Concat => DataType::Text,
                BinaryOp::Divide => DataType::Float,
                _ => left.data_type().widen(right.data_type()),
            },
            BoundExpr::Unary { op, expr } => match op {
                UnaryOp::Not => DataType::Bool,
                UnaryOp::Neg => expr.data_type(),
            },
            BoundExpr::IsNull { .. } => DataType::Bool,
            BoundExpr::InList { .. } | BoundExpr::Between { .. } => DataType::Bool,
            BoundExpr::Cast { data_type, .. } => *data_type,
            BoundExpr::Case {
                branches,
                else_expr,
            } => branches
                .first()
                .map(|(_, v)| v.data_type())
                .or_else(|| else_expr.as_ref().map(|e| e.data_type()))
                .unwrap_or(DataType::Text),
            BoundExpr::Aggregate { func, arg, .. } => match func {
                AggregateFunc::Count => DataType::Int,
                AggregateFunc::Avg => DataType::Float,
                AggregateFunc::Sum | AggregateFunc::Min | AggregateFunc::Max => {
                    arg.as_ref().map(|a| a.data_type()).unwrap_or(DataType::Int)
                }
            },
        }
    }

    /// True if this expression (recursively) contains an aggregate.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            BoundExpr::Aggregate { .. } => true,
            BoundExpr::Literal(_) | BoundExpr::Column { .. } => false,
            BoundExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            BoundExpr::Unary { expr, .. }
            | BoundExpr::IsNull { expr, .. }
            | BoundExpr::Cast { expr, .. } => expr.contains_aggregate(),
            BoundExpr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            BoundExpr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr
                        .as_ref()
                        .map(|e| e.contains_aggregate())
                        .unwrap_or(false)
            }
        }
    }

    /// Indices of all referenced input columns.
    pub fn referenced_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let BoundExpr::Column { index, .. } = e {
                out.push(*index);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Visit every node of the expression tree.
    pub fn visit(&self, f: &mut impl FnMut(&BoundExpr)) {
        f(self);
        match self {
            BoundExpr::Literal(_) | BoundExpr::Column { .. } => {}
            BoundExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            BoundExpr::Unary { expr, .. }
            | BoundExpr::IsNull { expr, .. }
            | BoundExpr::Cast { expr, .. } => expr.visit(f),
            BoundExpr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            BoundExpr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.visit(f);
                    v.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            BoundExpr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.visit(f);
                }
            }
        }
    }

    /// Rewrite column indices through a mapping (used when pushing
    /// expressions through projections or to one side of a join). Returns
    /// `None` when a referenced column is not present in the mapping.
    pub fn remap_columns(&self, map: &impl Fn(usize) -> Option<usize>) -> Option<BoundExpr> {
        Some(match self {
            BoundExpr::Literal(v) => BoundExpr::Literal(v.clone()),
            BoundExpr::Column {
                index,
                name,
                data_type,
            } => BoundExpr::Column {
                index: map(*index)?,
                name: name.clone(),
                data_type: *data_type,
            },
            BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
                left: Box::new(left.remap_columns(map)?),
                op: *op,
                right: Box::new(right.remap_columns(map)?),
            },
            BoundExpr::Unary { op, expr } => BoundExpr::Unary {
                op: *op,
                expr: Box::new(expr.remap_columns(map)?),
            },
            BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.remap_columns(map)?),
                negated: *negated,
            },
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.remap_columns(map)?),
                list: list
                    .iter()
                    .map(|e| e.remap_columns(map))
                    .collect::<Option<Vec<_>>>()?,
                negated: *negated,
            },
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(expr.remap_columns(map)?),
                low: Box::new(low.remap_columns(map)?),
                high: Box::new(high.remap_columns(map)?),
                negated: *negated,
            },
            BoundExpr::Cast { expr, data_type } => BoundExpr::Cast {
                expr: Box::new(expr.remap_columns(map)?),
                data_type: *data_type,
            },
            BoundExpr::Case {
                branches,
                else_expr,
            } => BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Some((c.remap_columns(map)?, v.remap_columns(map)?)))
                    .collect::<Option<Vec<_>>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(e.remap_columns(map)?)),
                    None => None,
                },
            },
            BoundExpr::Aggregate {
                func,
                arg,
                distinct,
            } => BoundExpr::Aggregate {
                func: *func,
                arg: match arg {
                    Some(a) => Some(Box::new(a.remap_columns(map)?)),
                    None => None,
                },
                distinct: *distinct,
            },
        })
    }

    /// Render the expression as SQL text over the referenced column *names*
    /// (used when pushing a predicate into a prompt). Fails if the expression
    /// contains an aggregate.
    pub fn to_sql_text(&self) -> Result<String> {
        if self.contains_aggregate() {
            return Err(Error::plan("cannot push an aggregate into a prompt"));
        }
        Ok(self.to_string())
    }

    /// A default output name for this expression.
    pub fn default_name(&self) -> String {
        match self {
            BoundExpr::Column { name, .. } => name.clone(),
            BoundExpr::Aggregate { func, arg, .. } => match arg {
                Some(a) => format!("{}({})", func.sql().to_ascii_lowercase(), a.default_name()),
                None => format!("{}(*)", func.sql().to_ascii_lowercase()),
            },
            BoundExpr::Literal(v) => v.to_display_string(),
            other => other.to_string().to_ascii_lowercase(),
        }
    }
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundExpr::Literal(v) => match v {
                Value::Null => write!(f, "NULL"),
                Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
                other => write!(f, "{other}"),
            },
            BoundExpr::Column { name, .. } => write!(f, "{name}"),
            BoundExpr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            BoundExpr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            BoundExpr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "({expr} IS NOT NULL)")
                } else {
                    write!(f, "({expr} IS NULL)")
                }
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} ")?;
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write!(f, "({expr} ")?;
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "BETWEEN {low} AND {high})")
            }
            BoundExpr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
            BoundExpr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            BoundExpr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                write!(f, "{func}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    Some(a) => write!(f, "{a}")?,
                    None => write!(f, "*")?,
                }
                write!(f, ")")
            }
        }
    }
}

/// Bind an AST expression against an input schema.
pub fn bind_expr(expr: &Expr, schema: &RelSchema) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Column { qualifier, name } => {
            let index = schema.resolve(qualifier.as_deref(), name)?;
            let field = &schema.fields[index];
            BoundExpr::Column {
                index,
                name: field.name.clone(),
                data_type: field.data_type,
            }
        }
        Expr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(bind_expr(left, schema)?),
            op: *op,
            right: Box::new(bind_expr(right, schema)?),
        },
        Expr::Unary { op, expr } => BoundExpr::Unary {
            op: *op,
            expr: Box::new(bind_expr(expr, schema)?),
        },
        Expr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(bind_expr(expr, schema)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BoundExpr::InList {
            expr: Box::new(bind_expr(expr, schema)?),
            list: list
                .iter()
                .map(|e| bind_expr(e, schema))
                .collect::<Result<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            expr: Box::new(bind_expr(expr, schema)?),
            low: Box::new(bind_expr(low, schema)?),
            high: Box::new(bind_expr(high, schema)?),
            negated: *negated,
        },
        Expr::Cast { expr, data_type } => BoundExpr::Cast {
            expr: Box::new(bind_expr(expr, schema)?),
            data_type: *data_type,
        },
        Expr::Case {
            branches,
            else_expr,
        } => BoundExpr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((bind_expr(c, schema)?, bind_expr(v, schema)?)))
                .collect::<Result<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(bind_expr(e, schema)?)),
                None => None,
            },
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => BoundExpr::Aggregate {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(bind_expr(a, schema)?)),
                None => None,
            },
            distinct: *distinct,
        },
    })
}

/// Split a predicate into its top-level conjuncts.
pub fn split_conjunction(expr: &BoundExpr) -> Vec<BoundExpr> {
    match expr {
        BoundExpr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut out = split_conjunction(left);
            out.extend(split_conjunction(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// Combine predicates with AND; `None` when the slice is empty.
pub fn conjoin(exprs: &[BoundExpr]) -> Option<BoundExpr> {
    let mut iter = exprs.iter().cloned();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, e| BoundExpr::Binary {
        left: Box::new(acc),
        op: BinaryOp::And,
        right: Box::new(e),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_sql::parse_expression;
    use llmsql_types::Field;

    fn schema() -> RelSchema {
        RelSchema::new(vec![
            Field::new(Some("c"), "name", DataType::Text, false),
            Field::new(Some("c"), "region", DataType::Text, true),
            Field::new(Some("c"), "population", DataType::Int, true),
        ])
    }

    fn bind(sql: &str) -> BoundExpr {
        bind_expr(&parse_expression(sql).unwrap(), &schema()).unwrap()
    }

    #[test]
    fn binds_columns_to_indices() {
        let e = bind("population > 10");
        assert_eq!(e.referenced_indices(), vec![2]);
        assert_eq!(e.data_type(), DataType::Bool);
        let e = bind("c.name = 'France' AND region = 'Europe'");
        assert_eq!(e.referenced_indices(), vec![0, 1]);
    }

    #[test]
    fn unknown_column_fails() {
        assert!(bind_expr(&parse_expression("gdp > 1").unwrap(), &schema()).is_err());
    }

    #[test]
    fn data_types() {
        assert_eq!(bind("population + 1").data_type(), DataType::Int);
        assert_eq!(bind("population / 2").data_type(), DataType::Float);
        assert_eq!(bind("name || region").data_type(), DataType::Text);
        assert_eq!(bind("population IS NULL").data_type(), DataType::Bool);
        assert_eq!(bind("CAST(population AS TEXT)").data_type(), DataType::Text);
        assert_eq!(bind("COUNT(*)").data_type(), DataType::Int);
        assert_eq!(bind("AVG(population)").data_type(), DataType::Float);
    }

    #[test]
    fn aggregate_detection_and_pushdown_guard() {
        let agg = bind("SUM(population)");
        assert!(agg.contains_aggregate());
        assert!(agg.to_sql_text().is_err());
        let plain = bind("population > 5");
        assert!(!plain.contains_aggregate());
        assert_eq!(plain.to_sql_text().unwrap(), "(population > 5)");
    }

    #[test]
    fn sql_text_roundtrips_through_parser() {
        for sql in [
            "population > 10 AND region = 'Europe'",
            "name LIKE 'F%'",
            "population BETWEEN 1 AND 10",
            "region IN ('Europe', 'Asia')",
            "region IS NOT NULL",
        ] {
            let text = bind(sql).to_sql_text().unwrap();
            // must be parseable again
            assert!(parse_expression(&text).is_ok(), "text: {text}");
        }
    }

    #[test]
    fn split_and_conjoin() {
        let e = bind("population > 1 AND region = 'Europe' AND name <> 'X'");
        let parts = split_conjunction(&e);
        assert_eq!(parts.len(), 3);
        let back = conjoin(&parts).unwrap();
        assert_eq!(split_conjunction(&back).len(), 3);
        assert!(conjoin(&[]).is_none());
    }

    #[test]
    fn remap_columns() {
        let e = bind("population > 10 AND region = 'Europe'");
        // map input indices 1,2 -> 0,1
        let remapped = e.remap_columns(&|i| i.checked_sub(1)).unwrap();
        assert_eq!(remapped.referenced_indices(), vec![0, 1]);
        // mapping that loses a column fails
        let gone = e.remap_columns(&|i| if i == 2 { None } else { Some(i) });
        assert!(gone.is_none());
    }

    #[test]
    fn default_names() {
        assert_eq!(bind("population").default_name(), "population");
        assert_eq!(bind("COUNT(*)").default_name(), "count(*)");
        assert_eq!(bind("SUM(population)").default_name(), "sum(population)");
    }

    #[test]
    fn display_case() {
        let e = bind("CASE WHEN population > 5 THEN 'big' ELSE 'small' END");
        let s = e.to_string();
        assert!(s.contains("CASE WHEN"));
        assert!(s.contains("ELSE"));
    }
}
