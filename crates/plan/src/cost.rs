//! The static per-operator cost model.
//!
//! Costs a [`LogicalPlan`] *before execution*: estimated output rows, LLM
//! calls, dollars and latency per operator, from three inputs the engine
//! already keeps — per-call pricing ([`LlmCostModel`], per backend via
//! `BackendSpec`), relation-cardinality hints (`relation_cardinality`), and
//! textbook selectivity heuristics per predicate form. The numbers are
//! deliberately coarse (System-R-style constants, not histograms): their job
//! is to *rank* plans and to flag hazards, and `EXPLAIN ANALYZE` reports the
//! estimated-vs-actual drift so the constants can be audited per query.
//!
//! Only `Scan` nodes of virtual relations spend model calls in this engine
//! (every other operator is native), so the LLM column concentrates there;
//! rows estimates still flow through every operator because they drive the
//! scan estimates of everything downstream of a join.

use std::collections::BTreeMap;

use llmsql_sql::ast::{BinaryOp, JoinKind};
use llmsql_types::{EngineConfig, LlmCostModel};

use crate::expr::{split_conjunction, BoundExpr};
use crate::logical::LogicalPlan;

/// Everything the cost model needs to know about the deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Rows requested per LLM enumeration page.
    pub batch_size: usize,
    /// Hard cap on rows a single virtual-table scan may request.
    pub max_scan_rows: usize,
    /// Per-call pricing and latency of the endpoint (for multi-backend
    /// deployments, pass the cheapest backend's model for a lower bound or
    /// the default model for the blended estimate).
    pub cost_model: LlmCostModel,
    /// Fallback cardinality for a relation with no hint.
    pub default_rows: u64,
    /// Known relation cardinalities, by table name (from
    /// `LanguageModel::relation_cardinality` or the catalog).
    pub cardinality_hints: BTreeMap<String, u64>,
}

impl CostParams {
    /// Derive parameters from an engine configuration. Cardinality hints
    /// start empty; add them with [`CostParams::with_hint`].
    pub fn from_config(config: &EngineConfig) -> Self {
        CostParams {
            batch_size: config.batch_size.max(1),
            max_scan_rows: config.max_scan_rows.max(1),
            cost_model: config.cost_model,
            default_rows: config.max_scan_rows.max(1) as u64,
            cardinality_hints: BTreeMap::new(),
        }
    }

    /// Builder-style: record that `table` holds `rows` rows.
    pub fn with_hint(mut self, table: impl Into<String>, rows: u64) -> Self {
        self.cardinality_hints.insert(table.into(), rows);
        self
    }

    /// Estimated base cardinality of a relation, capped by `max_scan_rows`
    /// (a scan never requests more).
    fn base_rows(&self, table: &str) -> f64 {
        let rows = self
            .cardinality_hints
            .get(table)
            .copied()
            .unwrap_or(self.default_rows);
        (rows.min(self.max_scan_rows as u64)) as f64
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::from_config(&EngineConfig::default())
    }
}

/// Estimated cost of one operator (exclusive of its children except for
/// `rows_out`, which is this operator's own output estimate).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OperatorCost {
    /// Estimated rows this operator emits.
    pub rows_out: f64,
    /// Estimated LLM calls this operator itself issues.
    pub llm_calls: u64,
    /// Estimated spend of those calls, dollars.
    pub usd: f64,
    /// Estimated wall time of those calls under sequential dispatch,
    /// milliseconds (an upper bound: `parallelism > 1` divides it).
    pub latency_ms: f64,
}

/// One costed plan node, identified by its pre-order path (root = `"0"`,
/// the i-th child of `p` = `"p.i"` — the same scheme the executor uses for
/// its per-operator actuals, so estimates and actuals join on this key).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCost {
    /// Pre-order path of the node.
    pub path: String,
    /// Operator name (matches the `ExecMetrics::operators` keys).
    pub operator: &'static str,
    /// The estimate.
    pub cost: OperatorCost,
}

/// The costed plan: per-node estimates in pre-order plus plan-wide totals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanCost {
    /// Per-node costs, in the same pre-order as `LogicalPlan::explain`.
    pub nodes: Vec<NodeCost>,
    /// Plan totals: summed calls/usd/latency; `rows_out` is the root's.
    pub total: OperatorCost,
}

impl PlanCost {
    /// Look up a node's cost by its pre-order path.
    pub fn get(&self, path: &str) -> Option<&NodeCost> {
        self.nodes.iter().find(|n| n.path == path)
    }
}

/// The operator name of a plan node, matching `ExecMetrics::operators` keys.
pub fn operator_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::Values { .. } => "Values",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Limit { .. } => "Limit",
        LogicalPlan::Distinct { .. } => "Distinct",
    }
}

/// Cost a whole plan.
pub fn cost_plan(plan: &LogicalPlan, params: &CostParams) -> PlanCost {
    let mut nodes = Vec::with_capacity(plan.node_count());
    let root = cost_node(plan, params, "0", &mut nodes);
    let mut total = OperatorCost {
        rows_out: root.rows_out,
        ..OperatorCost::default()
    };
    for n in &nodes {
        total.llm_calls += n.cost.llm_calls;
        total.usd += n.cost.usd;
        total.latency_ms += n.cost.latency_ms;
    }
    PlanCost { nodes, total }
}

fn cost_node(
    plan: &LogicalPlan,
    params: &CostParams,
    path: &str,
    out: &mut Vec<NodeCost>,
) -> OperatorCost {
    // Reserve this node's pre-order slot before descending.
    let slot = out.len();
    out.push(NodeCost {
        path: path.to_string(),
        operator: operator_name(plan),
        cost: OperatorCost::default(),
    });
    let child_costs: Vec<OperatorCost> = plan
        .children()
        .iter()
        .enumerate()
        .map(|(i, c)| cost_node(c, params, &format!("{path}.{i}"), out))
        .collect();

    let cost = match plan {
        LogicalPlan::Scan {
            table,
            table_schema,
            pushed_filter,
            prompt_columns,
            virtual_table,
            pushed_limit,
            ..
        } => {
            let base = params.base_rows(table);
            let sel = pushed_filter
                .as_ref()
                .map(estimate_selectivity)
                .unwrap_or(1.0);
            let mut rows = base * sel;
            if let Some(limit) = pushed_limit {
                rows = rows.min(*limit as f64);
            }
            if !virtual_table {
                OperatorCost {
                    rows_out: rows,
                    ..OperatorCost::default()
                }
            } else {
                let batch = params.batch_size as f64;
                let calls = (rows / batch).ceil().max(1.0) as u64;
                let ncols = prompt_columns
                    .as_ref()
                    .map(Vec::len)
                    .unwrap_or(table_schema.arity());
                // Rough token heuristics: a fixed prompt preamble, ~10
                // tokens per requested column name/description, ~8 per
                // filter conjunct rendered into the prompt; completions run
                // ~6 tokens per cell. Coarse on purpose — see module docs.
                let conjuncts = pushed_filter
                    .as_ref()
                    .map(|f| split_conjunction(f).len())
                    .unwrap_or(0);
                let prompt_tokens = 30 + 10 * ncols + 8 * conjuncts;
                let rows_per_call = rows / calls as f64;
                let completion_tokens = (rows_per_call * ncols as f64 * 6.0).ceil() as usize;
                OperatorCost {
                    rows_out: rows,
                    llm_calls: calls,
                    usd: calls as f64
                        * params
                            .cost_model
                            .request_cost_usd(prompt_tokens, completion_tokens),
                    latency_ms: calls as f64
                        * params.cost_model.request_latency_ms(completion_tokens),
                }
            }
        }
        LogicalPlan::Values { rows, .. } => OperatorCost {
            rows_out: rows.len() as f64,
            ..OperatorCost::default()
        },
        LogicalPlan::Filter { predicate, .. } => OperatorCost {
            rows_out: child_costs[0].rows_out * estimate_selectivity(predicate),
            ..OperatorCost::default()
        },
        LogicalPlan::Project { .. } => OperatorCost {
            rows_out: child_costs[0].rows_out,
            ..OperatorCost::default()
        },
        LogicalPlan::Join { kind, on, .. } => {
            let l = child_costs[0].rows_out;
            let r = child_costs[1].rows_out;
            let est = match on {
                // ON-less / CROSS: the full Cartesian product.
                None => l * r,
                Some(on) if has_equi_conjunct(on) => {
                    // Equi join: assume the larger side carries the join key
                    // as (near-)unique — classic |L|*|R| / max(|L|,|R|).
                    l * r / l.max(r).max(1.0)
                }
                Some(on) => l * r * estimate_selectivity(on),
            };
            let rows = match kind {
                JoinKind::Left => est.max(l),
                JoinKind::Right => est.max(r),
                JoinKind::Inner | JoinKind::Cross => est,
            };
            OperatorCost {
                rows_out: rows,
                ..OperatorCost::default()
            }
        }
        LogicalPlan::Aggregate { group_exprs, .. } => OperatorCost {
            rows_out: if group_exprs.is_empty() {
                1.0
            } else {
                // Square-root rule of thumb for the number of groups.
                child_costs[0].rows_out.sqrt().ceil().max(1.0)
            },
            ..OperatorCost::default()
        },
        LogicalPlan::Sort { .. } => OperatorCost {
            rows_out: child_costs[0].rows_out,
            ..OperatorCost::default()
        },
        LogicalPlan::Limit { limit, offset, .. } => {
            let input = child_costs[0].rows_out;
            let after_offset = (input - *offset as f64).max(0.0);
            OperatorCost {
                rows_out: match limit {
                    Some(l) => after_offset.min(*l as f64),
                    None => after_offset,
                },
                ..OperatorCost::default()
            }
        }
        LogicalPlan::Distinct { .. } => OperatorCost {
            // Assume moderate duplication.
            rows_out: (child_costs[0].rows_out * 0.5).max(1.0),
            ..OperatorCost::default()
        },
    };
    out[slot].cost = cost;
    cost
}

// ---------------------------------------------------------------------------
// Selectivity heuristics
// ---------------------------------------------------------------------------

/// Estimated fraction of rows a predicate keeps, in `[0.001, 1.0]` (the
/// floor keeps downstream estimates from collapsing to zero — a plan still
/// pays at least one page per scan). Conjunctions multiply; the per-form
/// constants are the System-R classics.
pub fn estimate_selectivity(predicate: &BoundExpr) -> f64 {
    let sel: f64 = split_conjunction(predicate)
        .iter()
        .map(conjunct_selectivity)
        .product();
    sel.clamp(0.001, 1.0)
}

fn conjunct_selectivity(expr: &BoundExpr) -> f64 {
    match expr {
        BoundExpr::Literal(v) => match v.as_bool() {
            Some(true) => 1.0,
            Some(false) => 0.001,
            None => 0.5,
        },
        BoundExpr::Binary { op, .. } => match op {
            BinaryOp::Eq => 0.1,
            BinaryOp::NotEq => 0.9,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => 0.33,
            BinaryOp::Like => 0.25,
            BinaryOp::Or => {
                // Union bound via inclusion-exclusion on the two sides.
                if let BoundExpr::Binary { left, right, .. } = expr {
                    let l = conjunct_selectivity(left);
                    let r = conjunct_selectivity(right);
                    (l + r - l * r).clamp(0.0, 1.0)
                } else {
                    0.5
                }
            }
            BinaryOp::And => estimate_selectivity(expr),
            _ => 0.5,
        },
        BoundExpr::Unary { .. } => 0.5,
        BoundExpr::IsNull { negated, .. } => {
            if *negated {
                0.9
            } else {
                0.1
            }
        }
        BoundExpr::InList { list, negated, .. } => {
            let s = (0.1 * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        BoundExpr::Between { negated, .. } => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        _ => 0.5,
    }
}

/// Relative evaluation weight of a conjunct (drives
/// [`crate::rules::llm_conjunct_reorder`]): expression size, with LIKE
/// counted heavier than plain comparisons.
pub fn conjunct_weight(expr: &BoundExpr) -> f64 {
    let mut weight = 0.0;
    expr.visit(&mut |e| {
        weight += match e {
            BoundExpr::Binary {
                op: BinaryOp::Like, ..
            } => 4.0,
            _ => 1.0,
        };
    });
    weight
}

fn has_equi_conjunct(on: &BoundExpr) -> bool {
    split_conjunction(on).iter().any(|c| {
        matches!(
            c,
            BoundExpr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } if matches!(left.as_ref(), BoundExpr::Column { .. })
                && matches!(right.as_ref(), BoundExpr::Column { .. })
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::{Column, DataType, RelSchema, Schema};

    fn scan(virtual_table: bool, filter: Option<BoundExpr>, limit: Option<usize>) -> LogicalPlan {
        let table_schema = Schema::new(
            "t",
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("x", DataType::Int),
                Column::new("y", DataType::Text),
            ],
        );
        LogicalPlan::Scan {
            table: "t".into(),
            alias: "t".into(),
            schema: RelSchema::from_table(&table_schema, "t"),
            table_schema,
            pushed_filter: filter,
            prompt_columns: None,
            virtual_table,
            pushed_limit: limit,
        }
    }

    fn gt(index: usize) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(BoundExpr::col(index, "x", DataType::Int)),
            op: BinaryOp::Gt,
            right: Box::new(BoundExpr::lit(5i64)),
        }
    }

    #[test]
    fn pushed_filter_cuts_calls_and_dollars() {
        let params = CostParams::default().with_hint("t", 1000);
        let unfiltered = cost_plan(&scan(true, None, None), &params);
        let filtered = cost_plan(&scan(true, Some(gt(1)), None), &params);
        assert!(filtered.total.llm_calls < unfiltered.total.llm_calls);
        assert!(filtered.total.usd < unfiltered.total.usd);
        assert!(filtered.total.rows_out < unfiltered.total.rows_out);
    }

    #[test]
    fn materialized_scans_are_free() {
        let params = CostParams::default().with_hint("t", 1000);
        let c = cost_plan(&scan(false, None, None), &params);
        assert_eq!(c.total.llm_calls, 0);
        assert_eq!(c.total.usd, 0.0);
        assert_eq!(c.total.rows_out, 1000.0);
    }

    #[test]
    fn cardinality_hint_caps_at_max_scan_rows() {
        let params = CostParams::default().with_hint("t", 1_000_000);
        let c = cost_plan(&scan(true, None, None), &params);
        assert!(c.total.rows_out <= params.max_scan_rows as f64);
    }

    #[test]
    fn pushed_limit_caps_rows_and_calls() {
        let params = CostParams::default().with_hint("t", 1000);
        let c = cost_plan(&scan(true, None, Some(10)), &params);
        assert_eq!(c.total.rows_out, 10.0);
        assert_eq!(c.total.llm_calls, 1);
    }

    #[test]
    fn node_paths_are_preorder() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan(true, None, None)),
                predicate: gt(1),
            }),
            limit: Some(5),
            offset: 0,
        };
        let c = cost_plan(&plan, &CostParams::default());
        let paths: Vec<&str> = c.nodes.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, vec!["0", "0.0", "0.0.0"]);
        assert_eq!(c.get("0").map(|n| n.operator), Some("Limit"));
        assert_eq!(c.get("0.0.0").map(|n| n.operator), Some("Scan"));
    }

    #[test]
    fn selectivity_forms_are_ordered_sensibly() {
        let eq = BoundExpr::Binary {
            left: Box::new(BoundExpr::col(0, "x", DataType::Int)),
            op: BinaryOp::Eq,
            right: Box::new(BoundExpr::lit(1i64)),
        };
        assert!(estimate_selectivity(&eq) < estimate_selectivity(&gt(0)));
        // Conjunctions multiply.
        let both = BoundExpr::Binary {
            left: Box::new(eq.clone()),
            op: BinaryOp::And,
            right: Box::new(gt(0)),
        };
        assert!(estimate_selectivity(&both) < estimate_selectivity(&eq));
    }
}
