//! SQL tokens and keywords.

use std::fmt;

/// A SQL keyword. The lexer upper-cases identifiers to match; the parser
/// treats non-reserved words as identifiers where the grammar allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Asc,
    Desc,
    Limit,
    Offset,
    As,
    And,
    Or,
    Not,
    Null,
    True,
    False,
    Is,
    In,
    Like,
    Between,
    Join,
    Inner,
    Left,
    Right,
    Full,
    Outer,
    Cross,
    On,
    Distinct,
    All,
    Create,
    Table,
    Virtual,
    Primary,
    Key,
    Insert,
    Into,
    Values,
    Drop,
    If,
    Exists,
    Explain,
    Analyze,
    Describe,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Cast,
    Case,
    When,
    Then,
    Else,
    End,
    Union,
    Comment,
    With,
}

impl Keyword {
    /// Try to interpret a word as a keyword (case-insensitive).
    pub fn parse(word: &str) -> Option<Keyword> {
        let up = word.to_ascii_uppercase();
        let kw = match up.as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "HAVING" => Keyword::Having,
            "ORDER" => Keyword::Order,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "LIMIT" => Keyword::Limit,
            "OFFSET" => Keyword::Offset,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "NULL" => Keyword::Null,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "IS" => Keyword::Is,
            "IN" => Keyword::In,
            "LIKE" => Keyword::Like,
            "BETWEEN" => Keyword::Between,
            "JOIN" => Keyword::Join,
            "INNER" => Keyword::Inner,
            "LEFT" => Keyword::Left,
            "RIGHT" => Keyword::Right,
            "FULL" => Keyword::Full,
            "OUTER" => Keyword::Outer,
            "CROSS" => Keyword::Cross,
            "ON" => Keyword::On,
            "DISTINCT" => Keyword::Distinct,
            "ALL" => Keyword::All,
            "CREATE" => Keyword::Create,
            "TABLE" => Keyword::Table,
            "VIRTUAL" => Keyword::Virtual,
            "PRIMARY" => Keyword::Primary,
            "KEY" => Keyword::Key,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "VALUES" => Keyword::Values,
            "DROP" => Keyword::Drop,
            "IF" => Keyword::If,
            "EXISTS" => Keyword::Exists,
            "EXPLAIN" => Keyword::Explain,
            "ANALYZE" => Keyword::Analyze,
            "DESCRIBE" => Keyword::Describe,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "AVG" => Keyword::Avg,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "CAST" => Keyword::Cast,
            "CASE" => Keyword::Case,
            "WHEN" => Keyword::When,
            "THEN" => Keyword::Then,
            "ELSE" => Keyword::Else,
            "END" => Keyword::End,
            "UNION" => Keyword::Union,
            "COMMENT" => Keyword::Comment,
            "WITH" => Keyword::With,
            _ => return None,
        };
        Some(kw)
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)?;
        Ok(())
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword such as SELECT.
    Keyword(Keyword),
    /// An identifier (table/column/alias name). The original spelling is kept.
    Ident(String),
    /// An integer literal.
    Integer(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal (quotes removed, escapes resolved).
    String(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `||` string concatenation
    Concat,
    /// End of input.
    Eof,
}

impl Token {
    /// True if this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        matches!(self, Token::Keyword(k) if *k == kw)
    }

    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Token::Keyword(k) => format!("keyword {}", format!("{k:?}").to_uppercase()),
            Token::Ident(s) => format!("identifier '{s}'"),
            Token::Integer(i) => format!("integer {i}"),
            Token::Float(f) => format!("float {f}"),
            Token::String(s) => format!("string '{s}'"),
            Token::Eof => "end of input".to_string(),
            other => format!("'{}'", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            Token::LParen => "(",
            Token::RParen => ")",
            Token::Comma => ",",
            Token::Dot => ".",
            Token::Semicolon => ";",
            Token::Star => "*",
            Token::Plus => "+",
            Token::Minus => "-",
            Token::Slash => "/",
            Token::Percent => "%",
            Token::Eq => "=",
            Token::NotEq => "<>",
            Token::Lt => "<",
            Token::LtEq => "<=",
            Token::Gt => ">",
            Token::GtEq => ">=",
            Token::Concat => "||",
            _ => "?",
        }
    }
}

/// A token plus its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_parse_case_insensitive() {
        assert_eq!(Keyword::parse("select"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::parse("frobnicate"), None);
        assert_eq!(Keyword::parse("between"), Some(Keyword::Between));
    }

    #[test]
    fn token_keyword_check() {
        assert!(Token::Keyword(Keyword::From).is_keyword(Keyword::From));
        assert!(!Token::Keyword(Keyword::From).is_keyword(Keyword::Where));
        assert!(!Token::Comma.is_keyword(Keyword::From));
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(Token::Comma.describe(), "','");
        assert_eq!(Token::Ident("foo".into()).describe(), "identifier 'foo'");
        assert_eq!(Token::Integer(5).describe(), "integer 5");
        assert_eq!(Token::Eof.describe(), "end of input");
        assert!(Token::Keyword(Keyword::Select)
            .describe()
            .contains("SELECT"));
    }
}
