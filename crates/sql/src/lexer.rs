//! A hand-written SQL lexer.
//!
//! Produces a vector of [`SpannedToken`]s. Supports single-quoted strings with
//! `''` escaping, double-quoted identifiers, line comments (`-- ...`), block
//! comments (`/* ... */`), integer and float literals (including exponents),
//! and the usual operator set.

use llmsql_types::{Error, Result};

use crate::token::{Keyword, SpannedToken, Token};

/// Tokenize a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<SpannedToken>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<SpannedToken>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.bytes[self.pos] as char;
            match c {
                c if c.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                '-' => {
                    if self.peek(1) == Some('-') {
                        self.skip_line_comment();
                    } else {
                        self.push(Token::Minus, start);
                        self.pos += 1;
                    }
                }
                '/' => {
                    if self.peek(1) == Some('*') {
                        self.skip_block_comment()?;
                    } else {
                        self.push(Token::Slash, start);
                        self.pos += 1;
                    }
                }
                '(' => {
                    self.push(Token::LParen, start);
                    self.pos += 1;
                }
                ')' => {
                    self.push(Token::RParen, start);
                    self.pos += 1;
                }
                ',' => {
                    self.push(Token::Comma, start);
                    self.pos += 1;
                }
                '.' => {
                    // A dot starting a number like ".5" is handled in number
                    // lexing only when preceded by nothing useful; standalone
                    // dots are member access.
                    if self.peek(1).map(|c| c.is_ascii_digit()).unwrap_or(false)
                        && !self.last_token_is_value_like()
                    {
                        self.lex_number()?;
                    } else {
                        self.push(Token::Dot, start);
                        self.pos += 1;
                    }
                }
                ';' => {
                    self.push(Token::Semicolon, start);
                    self.pos += 1;
                }
                '*' => {
                    self.push(Token::Star, start);
                    self.pos += 1;
                }
                '+' => {
                    self.push(Token::Plus, start);
                    self.pos += 1;
                }
                '%' => {
                    self.push(Token::Percent, start);
                    self.pos += 1;
                }
                '=' => {
                    self.push(Token::Eq, start);
                    self.pos += 1;
                    // tolerate '=='
                    if self.peek(0) == Some('=') {
                        self.pos += 1;
                    }
                }
                '!' => {
                    if self.peek(1) == Some('=') {
                        self.push(Token::NotEq, start);
                        self.pos += 2;
                    } else {
                        return Err(Error::parse("unexpected character '!'").at(start));
                    }
                }
                '<' => match self.peek(1) {
                    Some('=') => {
                        self.push(Token::LtEq, start);
                        self.pos += 2;
                    }
                    Some('>') => {
                        self.push(Token::NotEq, start);
                        self.pos += 2;
                    }
                    _ => {
                        self.push(Token::Lt, start);
                        self.pos += 1;
                    }
                },
                '>' => {
                    if self.peek(1) == Some('=') {
                        self.push(Token::GtEq, start);
                        self.pos += 2;
                    } else {
                        self.push(Token::Gt, start);
                        self.pos += 1;
                    }
                }
                '|' => {
                    if self.peek(1) == Some('|') {
                        self.push(Token::Concat, start);
                        self.pos += 2;
                    } else {
                        return Err(Error::parse("unexpected character '|'").at(start));
                    }
                }
                '\'' => self.lex_string()?,
                '"' => self.lex_quoted_ident()?,
                c if c.is_ascii_digit() => self.lex_number()?,
                c if c.is_ascii_alphabetic() || c == '_' => self.lex_word(),
                other => {
                    return Err(Error::parse(format!("unexpected character '{other}'")).at(start))
                }
            }
        }
        self.push(Token::Eof, self.pos);
        Ok(self.tokens)
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.bytes.get(self.pos + ahead).map(|b| *b as char)
    }

    fn push(&mut self, token: Token, offset: usize) {
        self.tokens.push(SpannedToken { token, offset });
    }

    fn last_token_is_value_like(&self) -> bool {
        matches!(
            self.tokens.last().map(|t| &t.token),
            Some(Token::Ident(_))
                | Some(Token::Integer(_))
                | Some(Token::Float(_))
                | Some(Token::RParen)
        )
    }

    fn skip_line_comment(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self) -> Result<()> {
        let start = self.pos;
        self.pos += 2;
        loop {
            if self.pos + 1 >= self.bytes.len() {
                return Err(Error::parse("unterminated block comment").at(start));
            }
            if self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/' {
                self.pos += 2;
                return Ok(());
            }
            self.pos += 1;
        }
    }

    fn lex_string(&mut self) -> Result<()> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek(0) {
                None => return Err(Error::parse("unterminated string literal").at(start)),
                Some('\'') => {
                    if self.peek(1) == Some('\'') {
                        out.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        self.push(Token::String(out), start);
        Ok(())
    }

    fn lex_quoted_ident(&mut self) -> Result<()> {
        let start = self.pos;
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek(0) {
                None => return Err(Error::parse("unterminated quoted identifier").at(start)),
                Some('"') => {
                    self.pos += 1;
                    break;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        self.push(Token::Ident(out), start);
        Ok(())
    }

    fn lex_number(&mut self) -> Result<()> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else if c == '.' && !saw_dot && !saw_exp {
                // only treat as part of the number if followed by a digit
                if self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                    saw_dot = true;
                    self.pos += 1;
                } else {
                    break;
                }
            } else if (c == 'e' || c == 'E') && !saw_exp {
                let next = self.peek(1);
                let next2 = self.peek(2);
                let exp_ok = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some('+') | Some('-') => next2.map(|d| d.is_ascii_digit()).unwrap_or(false),
                    _ => false,
                };
                if exp_ok {
                    saw_exp = true;
                    self.pos += 2; // consume e and sign/digit
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        if saw_dot || saw_exp {
            let v: f64 = text
                .parse()
                .map_err(|_| Error::parse(format!("invalid float literal '{text}'")).at(start))?;
            self.push(Token::Float(v), start);
        } else {
            match text.parse::<i64>() {
                Ok(v) => self.push(Token::Integer(v), start),
                Err(_) => {
                    let v: f64 = text.parse().map_err(|_| {
                        Error::parse(format!("invalid numeric literal '{text}'")).at(start)
                    })?;
                    self.push(Token::Float(v), start);
                }
            }
        }
        Ok(())
    }

    fn lex_word(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &self.src[start..self.pos];
        match Keyword::parse(word) {
            Some(kw) => self.push(Token::Keyword(kw), start),
            None => self.push(Token::Ident(word.to_string()), start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        let t = toks("SELECT name FROM countries");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Ident("name".into()),
                Token::Keyword(Keyword::From),
                Token::Ident("countries".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 1e3 3.25e-2"),
            vec![
                Token::Integer(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Float(0.0325),
                Token::Eof
            ]
        );
        // A leading-dot float is recognised when it cannot be member access.
        assert_eq!(toks(".5"), vec![Token::Float(0.5), Token::Eof]);
    }

    #[test]
    fn huge_integer_becomes_float() {
        let t = toks("99999999999999999999");
        assert!(matches!(t[0], Token::Float(_)));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("'it''s' 'a'"),
            vec![
                Token::String("it's".into()),
                Token::String("a".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(
            toks(r#""Weird Name" "#),
            vec![Token::Ident("Weird Name".into()), Token::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= <> != < <= > >= + - * / % || ."),
            vec![
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
                Token::Concat,
                Token::Dot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn qualified_column_is_ident_dot_ident() {
        assert_eq!(
            toks("t.population"),
            vec![
                Token::Ident("t".into()),
                Token::Dot,
                Token::Ident("population".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("SELECT -- trailing comment\n 1 /* block\ncomment */ + 2"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Integer(1),
                Token::Plus,
                Token::Integer(2),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = tokenize("SELECT @").unwrap_err();
        assert_eq!(err.offset, Some(7));
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a | b").is_err());
    }

    #[test]
    fn offsets_are_recorded() {
        let spanned = tokenize("SELECT a").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 7);
    }
}
