//! Recursive-descent SQL parser.
//!
//! Grammar (informal):
//!
//! ```text
//! statement   := select | create | drop | insert | explain | describe
//! select      := SELECT [DISTINCT] items [FROM table_expr] [WHERE expr]
//!                [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
//!                [LIMIT n] [OFFSET n]
//! table_expr  := table_factor { join_clause }
//! join_clause := [INNER|LEFT [OUTER]|RIGHT [OUTER]|CROSS] JOIN table_factor [ON expr]
//! expr        := Pratt-parsed with precedence:
//!                OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE < +- < */% < unary < primary
//! ```

use llmsql_types::{DataType, Error, Result, Value};

use crate::ast::*;
use crate::lexer::tokenize;
use crate::token::{Keyword, SpannedToken, Token};

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut parser = Parser::new(sql)?;
    let stmt = parser.parse_statement()?;
    parser.expect_end()?;
    Ok(stmt)
}

/// Parse a script of semicolon-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let mut parser = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        parser.skip_semicolons();
        if parser.peek().is_keyword_eof() {
            break;
        }
        out.push(parser.parse_statement()?);
        if !parser.consume_token(&Token::Semicolon) {
            break;
        }
    }
    parser.expect_end()?;
    Ok(out)
}

/// Parse a standalone scalar expression (used in tests and by the workload
/// query generators).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let mut parser = Parser::new(sql)?;
    let expr = parser.parse_expr()?;
    parser.expect_end()?;
    Ok(expr)
}

trait TokenExt {
    fn is_keyword_eof(&self) -> bool;
}
impl TokenExt for Token {
    fn is_keyword_eof(&self) -> bool {
        matches!(self, Token::Eof)
    }
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].token
    }

    fn peek_at(&self, ahead: usize) -> &Token {
        let idx = (self.pos + ahead).min(self.tokens.len() - 1);
        &self.tokens[idx].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].offset
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .token
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn consume_token(&mut self, tok: &Token) -> bool {
        if self.peek() == tok {
            self.advance();
            true
        } else {
            false
        }
    }

    fn consume_keyword(&mut self, kw: Keyword) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        if self.consume_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("{kw:?}").to_uppercase()))
        }
    }

    fn expect_token(&mut self, tok: Token) -> Result<()> {
        if self.consume_token(&tok) {
            Ok(())
        } else {
            Err(self.unexpected(&tok.describe()))
        }
    }

    fn unexpected(&self, expected: &str) -> Error {
        Error::parse(format!(
            "expected {expected}, found {}",
            self.peek().describe()
        ))
        .at(self.offset())
    }

    fn expect_end(&mut self) -> Result<()> {
        self.skip_semicolons();
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(self.unexpected("end of statement"))
        }
    }

    fn skip_semicolons(&mut self) {
        while self.consume_token(&Token::Semicolon) {}
    }

    fn parse_identifier(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.advance();
                Ok(name)
            }
            // Allow a handful of non-reserved keywords to be used as
            // identifiers (aggregate names, KEY, COMMENT ...).
            Token::Keyword(kw)
                if matches!(
                    kw,
                    Keyword::Count
                        | Keyword::Sum
                        | Keyword::Avg
                        | Keyword::Min
                        | Keyword::Max
                        | Keyword::Key
                        | Keyword::Comment
                        | Keyword::Virtual
                ) =>
            {
                self.advance();
                Ok(format!("{kw:?}").to_ascii_lowercase())
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek().clone() {
            Token::Keyword(Keyword::Select) => {
                Ok(Statement::Select(Box::new(self.parse_select()?)))
            }
            Token::Keyword(Keyword::Create) => self.parse_create_table(),
            Token::Keyword(Keyword::Drop) => self.parse_drop_table(),
            Token::Keyword(Keyword::Insert) => self.parse_insert(),
            Token::Keyword(Keyword::Explain) => {
                self.advance();
                let analyze = self.consume_keyword(Keyword::Analyze);
                let inner = self.parse_statement()?;
                Ok(Statement::Explain {
                    statement: Box::new(inner),
                    analyze,
                })
            }
            Token::Keyword(Keyword::Describe) => {
                self.advance();
                let name = self.parse_identifier()?;
                Ok(Statement::Describe { name })
            }
            _ => Err(self.unexpected("a statement (SELECT, CREATE, DROP, INSERT, EXPLAIN)")),
        }
    }

    fn parse_select(&mut self) -> Result<SelectStatement> {
        self.expect_keyword(Keyword::Select)?;
        let mut stmt = SelectStatement::empty();
        stmt.distinct = self.consume_keyword(Keyword::Distinct);
        if !stmt.distinct {
            self.consume_keyword(Keyword::All);
        }

        loop {
            stmt.projection.push(self.parse_select_item()?);
            if !self.consume_token(&Token::Comma) {
                break;
            }
        }

        if self.consume_keyword(Keyword::From) {
            stmt.from = Some(self.parse_table_expr()?);
        }
        if self.consume_keyword(Keyword::Where) {
            stmt.selection = Some(self.parse_expr()?);
        }
        if self.consume_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            loop {
                stmt.group_by.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.consume_keyword(Keyword::Having) {
            stmt.having = Some(self.parse_expr()?);
        }
        if self.consume_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.consume_keyword(Keyword::Desc) {
                    false
                } else {
                    self.consume_keyword(Keyword::Asc);
                    true
                };
                stmt.order_by.push(OrderByItem { expr, ascending });
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
        }
        if self.consume_keyword(Keyword::Limit) {
            stmt.limit = Some(self.parse_unsigned()?);
        }
        if self.consume_keyword(Keyword::Offset) {
            stmt.offset = Some(self.parse_unsigned()?);
        }
        Ok(stmt)
    }

    fn parse_unsigned(&mut self) -> Result<u64> {
        match self.peek().clone() {
            Token::Integer(i) if i >= 0 => {
                self.advance();
                Ok(i as u64)
            }
            _ => Err(self.unexpected("a non-negative integer")),
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.consume_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* form
        if let (Token::Ident(name), Token::Dot, Token::Star) = (
            self.peek().clone(),
            self.peek_at(1).clone(),
            self.peek_at(2).clone(),
        ) {
            self.advance();
            self.advance();
            self.advance();
            return Ok(SelectItem::QualifiedWildcard(name));
        }
        let expr = self.parse_expr()?;
        let alias = if self.consume_keyword(Keyword::As) {
            Some(self.parse_identifier()?)
        } else if let Token::Ident(_) = self.peek() {
            Some(self.parse_identifier()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_expr(&mut self) -> Result<TableExpr> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.consume_keyword(Keyword::Cross) {
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Cross)
            } else if self.consume_keyword(Keyword::Inner) {
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Inner)
            } else if self.consume_keyword(Keyword::Left) {
                self.consume_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Left)
            } else if self.consume_keyword(Keyword::Right) {
                self.consume_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Right)
            } else if self.consume_keyword(Keyword::Join) {
                Some(JoinKind::Inner)
            } else {
                None
            };
            let Some(kind) = kind else { break };
            let right = self.parse_table_factor()?;
            let on = if kind != JoinKind::Cross {
                self.expect_keyword(Keyword::On)?;
                Some(self.parse_expr()?)
            } else {
                None
            };
            left = TableExpr::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> Result<TableExpr> {
        if self.consume_token(&Token::LParen) {
            // subquery
            let query = self.parse_select()?;
            self.expect_token(Token::RParen)?;
            self.consume_keyword(Keyword::As);
            let alias = self.parse_identifier()?;
            return Ok(TableExpr::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.parse_identifier()?;
        let alias = if self.consume_keyword(Keyword::As) {
            Some(self.parse_identifier()?)
        } else if let Token::Ident(_) = self.peek() {
            Some(self.parse_identifier()?)
        } else {
            None
        };
        Ok(TableExpr::Table { name, alias })
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Create)?;
        let virtual_table = self.consume_keyword(Keyword::Virtual);
        self.expect_keyword(Keyword::Table)?;
        let if_not_exists = if self.consume_keyword(Keyword::If) {
            self.expect_keyword(Keyword::Not)?;
            self.expect_keyword(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.parse_identifier()?;
        self.expect_token(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.parse_identifier()?;
            let type_name = self.parse_identifier()?;
            let data_type = DataType::parse(&type_name)
                .ok_or_else(|| Error::parse(format!("unknown data type '{type_name}'")))?;
            let mut def = ColumnDef {
                name: col_name,
                data_type,
                primary_key: false,
                not_null: false,
                comment: None,
            };
            loop {
                if self.consume_keyword(Keyword::Primary) {
                    self.expect_keyword(Keyword::Key)?;
                    def.primary_key = true;
                    def.not_null = true;
                } else if self.consume_keyword(Keyword::Not) {
                    self.expect_keyword(Keyword::Null)?;
                    def.not_null = true;
                } else if self.consume_keyword(Keyword::Comment) {
                    match self.advance() {
                        Token::String(s) => def.comment = Some(s),
                        _ => return Err(self.unexpected("a string literal after COMMENT")),
                    }
                } else {
                    break;
                }
            }
            columns.push(def);
            if !self.consume_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(Token::RParen)?;
        let comment = if self.consume_keyword(Keyword::Comment) {
            match self.advance() {
                Token::String(s) => Some(s),
                _ => return Err(self.unexpected("a string literal after COMMENT")),
            }
        } else {
            None
        };
        Ok(Statement::CreateTable(CreateTableStatement {
            name,
            virtual_table,
            if_not_exists,
            columns,
            comment,
        }))
    }

    fn parse_drop_table(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Drop)?;
        self.expect_keyword(Keyword::Table)?;
        let if_exists = if self.consume_keyword(Keyword::If) {
            self.expect_keyword(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.parse_identifier()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_keyword(Keyword::Insert)?;
        self.expect_keyword(Keyword::Into)?;
        let table = self.parse_identifier()?;
        let mut columns = Vec::new();
        if self.consume_token(&Token::LParen) {
            loop {
                columns.push(self.parse_identifier()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(Token::RParen)?;
        }
        self.expect_keyword(Keyword::Values)?;
        let mut values = Vec::new();
        loop {
            self.expect_token(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(Token::RParen)?;
            values.push(row);
            if !self.consume_token(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(InsertStatement {
            table,
            columns,
            values,
        }))
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.consume_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.consume_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.consume_keyword(Keyword::Not) {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.consume_keyword(Keyword::Is) {
            let negated = self.consume_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] IN / BETWEEN / LIKE
        let negated = if self.peek().is_keyword(Keyword::Not)
            && (self.peek_at(1).is_keyword(Keyword::In)
                || self.peek_at(1).is_keyword(Keyword::Between)
                || self.peek_at(1).is_keyword(Keyword::Like))
        {
            self.advance();
            true
        } else {
            false
        };

        if self.consume_keyword(Keyword::In) {
            self.expect_token(Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.consume_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.consume_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.consume_keyword(Keyword::Like) {
            let pattern = self.parse_additive()?;
            let like = Expr::binary(left, BinaryOp::Like, pattern);
            return Ok(if negated {
                Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(like),
                }
            } else {
                like
            });
        }
        if negated {
            return Err(self.unexpected("IN, BETWEEN or LIKE after NOT"));
        }

        let op = match self.peek() {
            Token::Eq => Some(BinaryOp::Eq),
            Token::NotEq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::LtEq => Some(BinaryOp::LtEq),
            Token::Gt => Some(BinaryOp::Gt),
            Token::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => Some(BinaryOp::Plus),
                Token::Minus => Some(BinaryOp::Minus),
                Token::Concat => Some(BinaryOp::Concat),
                _ => None,
            };
            let Some(op) = op else { break };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => Some(BinaryOp::Multiply),
                Token::Slash => Some(BinaryOp::Divide),
                Token::Percent => Some(BinaryOp::Modulo),
                _ => None,
            };
            let Some(op) = op else { break };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.consume_token(&Token::Minus) {
            let inner = self.parse_unary()?;
            // Fold negation of literals immediately so `-5` is a literal.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.consume_token(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Integer(i) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(i)))
            }
            Token::Float(f) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(f)))
            }
            Token::String(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Text(s)))
            }
            Token::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            Token::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Token::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Token::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect_token(Token::RParen)?;
                Ok(e)
            }
            Token::Keyword(Keyword::Cast) => {
                self.advance();
                self.expect_token(Token::LParen)?;
                let inner = self.parse_expr()?;
                self.expect_keyword(Keyword::As)?;
                let type_name = self.parse_identifier()?;
                let data_type = DataType::parse(&type_name)
                    .ok_or_else(|| Error::parse(format!("unknown data type '{type_name}'")))?;
                self.expect_token(Token::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(inner),
                    data_type,
                })
            }
            Token::Keyword(Keyword::Case) => self.parse_case(),
            Token::Keyword(kw)
                if matches!(
                    kw,
                    Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max
                ) =>
            {
                self.parse_aggregate_or_column(kw)
            }
            Token::Ident(_) => self.parse_column_ref(),
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_keyword(Keyword::Case)?;
        let mut branches = Vec::new();
        while self.consume_keyword(Keyword::When) {
            let cond = self.parse_expr()?;
            self.expect_keyword(Keyword::Then)?;
            let val = self.parse_expr()?;
            branches.push((cond, val));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_expr = if self.consume_keyword(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::End)?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }

    fn parse_aggregate_or_column(&mut self, kw: Keyword) -> Result<Expr> {
        // An aggregate keyword followed by '(' is a call; otherwise treat the
        // word as a plain column name (e.g. a column named "count").
        if !matches!(self.peek_at(1), Token::LParen) {
            return self.parse_column_ref();
        }
        self.advance(); // keyword
        self.advance(); // (
        let func = AggregateFunc::parse(&format!("{kw:?}"))
            .ok_or_else(|| Error::parse(format!("unknown aggregate function '{kw:?}'")))?;
        let distinct = self.consume_keyword(Keyword::Distinct);
        let arg = if self.consume_token(&Token::Star) {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        self.expect_token(Token::RParen)?;
        Ok(Expr::Aggregate {
            func,
            arg,
            distinct,
        })
    }

    fn parse_column_ref(&mut self) -> Result<Expr> {
        let first = self.parse_identifier()?;
        if self.consume_token(&Token::Dot) {
            let second = self.parse_identifier()?;
            Ok(Expr::Column {
                qualifier: Some(first),
                name: second,
            })
        } else {
            Ok(Expr::Column {
                qualifier: None,
                name: first,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStatement {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => *s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT name, capital FROM countries");
        assert_eq!(s.projection.len(), 2);
        assert!(matches!(
            s.from,
            Some(TableExpr::Table { ref name, .. }) if name == "countries"
        ));
        assert!(s.selection.is_none());
    }

    #[test]
    fn select_star_and_qualified_star() {
        let s = sel("SELECT * FROM t");
        assert_eq!(s.projection, vec![SelectItem::Wildcard]);
        let s = sel("SELECT t.* FROM t");
        assert_eq!(
            s.projection,
            vec![SelectItem::QualifiedWildcard("t".into())]
        );
    }

    #[test]
    fn where_precedence() {
        let s = sel("SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3");
        // OR is the top-level operator
        match s.selection.unwrap() {
            Expr::Binary { op, .. } => assert_eq!(op, BinaryOp::Or),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary { op, right, .. } => {
                assert_eq!(op, BinaryOp::Plus);
                assert!(matches!(
                    *right,
                    Expr::Binary {
                        op: BinaryOp::Multiply,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(
            parse_expression("-5").unwrap(),
            Expr::Literal(Value::Int(-5))
        );
        assert_eq!(
            parse_expression("-2.5").unwrap(),
            Expr::Literal(Value::Float(-2.5))
        );
        assert!(matches!(
            parse_expression("-x").unwrap(),
            Expr::Unary {
                op: UnaryOp::Neg,
                ..
            }
        ));
    }

    #[test]
    fn aliases() {
        let s = sel("SELECT population AS pop, name n FROM countries c");
        match &s.projection[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("pop")),
            _ => panic!(),
        }
        match &s.projection[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("n")),
            _ => panic!(),
        }
        assert_eq!(s.from.unwrap().binding_name(), Some("c"));
    }

    #[test]
    fn joins() {
        let s = sel(
            "SELECT * FROM countries c JOIN cities ci ON c.name = ci.country \
             LEFT JOIN rivers r ON r.country = c.name",
        );
        let from = s.from.unwrap();
        assert_eq!(from.join_count(), 2);
        assert_eq!(
            from.base_tables(),
            vec![
                "countries".to_string(),
                "cities".to_string(),
                "rivers".to_string()
            ]
        );
    }

    #[test]
    fn cross_join_has_no_on() {
        let s = sel("SELECT * FROM a CROSS JOIN b");
        match s.from.unwrap() {
            TableExpr::Join { kind, on, .. } => {
                assert_eq!(kind, JoinKind::Cross);
                assert!(on.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn group_by_having_order_limit() {
        let s = sel(
            "SELECT region, COUNT(*) AS n FROM countries GROUP BY region \
             HAVING COUNT(*) > 3 ORDER BY n DESC, region ASC LIMIT 10 OFFSET 2",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(!s.order_by[0].ascending);
        assert!(s.order_by[1].ascending);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(2));
        assert!(s.is_aggregate());
    }

    #[test]
    fn aggregates() {
        let e = parse_expression("COUNT(DISTINCT name)").unwrap();
        assert!(matches!(
            e,
            Expr::Aggregate {
                func: AggregateFunc::Count,
                distinct: true,
                ..
            }
        ));
        let e = parse_expression("SUM(population)").unwrap();
        assert!(matches!(
            e,
            Expr::Aggregate {
                func: AggregateFunc::Sum,
                ..
            }
        ));
        let e = parse_expression("COUNT(*)").unwrap();
        assert!(matches!(e, Expr::Aggregate { arg: None, .. }));
    }

    #[test]
    fn aggregate_name_as_column() {
        // `count` not followed by '(' is just a column reference
        let e = parse_expression("count + 1").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Plus,
                ..
            }
        ));
    }

    #[test]
    fn in_between_like_null() {
        let e = parse_expression("x IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: false, .. }));
        let e = parse_expression("x NOT IN (1)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
        let e = parse_expression("x BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expression("x NOT BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: true, .. }));
        let e = parse_expression("name LIKE 'A%'").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Like,
                ..
            }
        ));
        let e = parse_expression("x IS NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: false, .. }));
        let e = parse_expression("x IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn case_and_cast() {
        let e = parse_expression("CASE WHEN x > 1 THEN 'big' ELSE 'small' END").unwrap();
        assert!(matches!(e, Expr::Case { .. }));
        let e = parse_expression("CAST(x AS INTEGER)").unwrap();
        assert!(matches!(
            e,
            Expr::Cast {
                data_type: DataType::Int,
                ..
            }
        ));
    }

    #[test]
    fn create_table() {
        let stmt = parse_statement(
            "CREATE VIRTUAL TABLE countries (\
               name TEXT PRIMARY KEY COMMENT 'the common English name', \
               capital TEXT, \
               population INTEGER NOT NULL\
             ) COMMENT 'sovereign countries of the world'",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(c) => {
                assert!(c.virtual_table);
                assert_eq!(c.columns.len(), 3);
                assert!(c.columns[0].primary_key);
                assert_eq!(
                    c.columns[0].comment.as_deref(),
                    Some("the common English name")
                );
                assert!(c.columns[2].not_null);
                assert_eq!(
                    c.comment.as_deref(),
                    Some("sovereign countries of the world")
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn create_table_if_not_exists() {
        let stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)").unwrap();
        match stmt {
            Statement::CreateTable(c) => {
                assert!(c.if_not_exists);
                assert!(!c.virtual_table);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn insert() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        match stmt {
            Statement::Insert(i) => {
                assert_eq!(i.table, "t");
                assert_eq!(i.columns, vec!["a".to_string(), "b".to_string()]);
                assert_eq!(i.values.len(), 2);
                assert_eq!(i.values[1][1], Expr::Literal(Value::Null));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn drop_and_describe_and_explain() {
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse_statement("DESCRIBE countries").unwrap(),
            Statement::Describe { .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN SELECT 1").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            parse_statement("EXPLAIN ANALYZE SELECT 1").unwrap(),
            Statement::Explain { analyze: true, .. }
        ));
        // ANALYZE is a plain identifier outside the EXPLAIN prefix.
        assert!(parse_statement("EXPLAIN ANALYZE ANALYZE SELECT 1").is_err());
    }

    #[test]
    fn subquery_in_from() {
        let s = sel("SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 1");
        assert!(matches!(s.from, Some(TableExpr::Subquery { .. })));
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script("SELECT 1; SELECT 2;\n-- comment\nSELECT 3").unwrap();
        assert_eq!(stmts.len(), 3);
        assert_eq!(parse_script("").unwrap().len(), 0);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT * FORM t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE").is_err());
        assert!(parse_statement("SELECT 1 LIMIT -1").is_err());
        assert!(parse_statement("BANANA").is_err());
        assert!(parse_statement("SELECT a FROM t GROUP region").is_err());
        assert!(parse_statement("SELECT a b c FROM t").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_statement("SELECT 1;").is_ok());
        assert!(parse_statement("SELECT 1 ; ;").is_ok());
    }

    #[test]
    fn constant_select_without_from() {
        let s = sel("SELECT 1 + 1 AS two");
        assert!(s.from.is_none());
        assert_eq!(s.projection.len(), 1);
    }
}
