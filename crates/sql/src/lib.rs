#![forbid(unsafe_code)]
//! # llmsql-sql
//!
//! A hand-written SQL front end: lexer, recursive-descent parser, AST, and a
//! SQL printer that round-trips with the parser.
//!
//! The dialect covers what the paper's workloads need: `SELECT` with joins,
//! grouping, ordering and limits; `CREATE [VIRTUAL] TABLE` with
//! natural-language `COMMENT`s (these feed the prompt builder);
//! `INSERT`/`DROP`/`EXPLAIN`/`DESCRIBE`.
//!
//! ```
//! use llmsql_sql::parse_statement;
//! let stmt = parse_statement("SELECT name FROM countries WHERE population > 50000000").unwrap();
//! assert!(matches!(stmt, llmsql_sql::ast::Statement::Select(_)));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;

mod display;

pub use ast::{
    AggregateFunc, BinaryOp, ColumnDef, CreateTableStatement, Expr, InsertStatement, JoinKind,
    OrderByItem, SelectItem, SelectStatement, Statement, TableExpr, UnaryOp,
};
pub use lexer::tokenize;
pub use parser::{parse_expression, parse_script, parse_statement};

#[cfg(test)]
mod proptests {
    use super::*;
    use llmsql_types::Value;
    use proptest::prelude::*;

    /// Random identifiers that are not SQL keywords (a column literally named
    /// `in` or `end` would not round-trip without quoting).
    fn arb_ident() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,6}".prop_filter("identifier must not be a keyword", |s| {
            crate::token::Keyword::parse(s).is_none()
        })
    }

    /// Strategy producing random (simple but representative) expressions.
    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (-1000i64..1000).prop_map(|i| Expr::Literal(Value::Int(i))),
            arb_ident().prop_map(|s| Expr::col(&s)),
            "[a-z]{1,5}".prop_map(|s| Expr::Literal(Value::Text(s))),
            Just(Expr::Literal(Value::Null)),
            Just(Expr::Literal(Value::Bool(true))),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(
                    a,
                    BinaryOp::Plus,
                    b
                )),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinaryOp::Eq, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinaryOp::And, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(a, BinaryOp::Lt, b)),
                inner.clone().prop_map(|e| Expr::IsNull {
                    expr: Box::new(e),
                    negated: false
                }),
                (
                    inner.clone(),
                    proptest::collection::vec(inner.clone(), 1..4)
                )
                    .prop_map(|(e, list)| Expr::InList {
                        expr: Box::new(e),
                        list,
                        negated: true
                    }),
            ]
        })
    }

    proptest! {
        /// Printing an expression and parsing it back yields the same tree.
        #[test]
        fn expr_print_parse_roundtrip(e in arb_expr()) {
            let printed = e.to_string();
            let reparsed = parse_expression(&printed)
                .unwrap_or_else(|err| panic!("failed to reparse '{printed}': {err}"));
            prop_assert_eq!(reparsed, e);
        }

        /// The lexer never panics on arbitrary ASCII input.
        #[test]
        fn lexer_never_panics(s in "[ -~]{0,80}") {
            let _ = tokenize(&s);
        }

        /// The parser never panics on arbitrary ASCII input.
        #[test]
        fn parser_never_panics(s in "[ -~]{0,80}") {
            let _ = parse_statement(&s);
        }

        /// Statement printing is a fixpoint: print(parse(print(x))) == print(x).
        #[test]
        fn select_print_is_fixpoint(limit in proptest::option::of(0u64..50),
                                    distinct in any::<bool>(),
                                    cols in proptest::collection::vec(arb_ident(), 1..4)) {
            let mut stmt = SelectStatement::empty();
            stmt.distinct = distinct;
            stmt.limit = limit;
            for c in &cols {
                stmt.projection.push(SelectItem::Expr { expr: Expr::col(c), alias: None });
            }
            stmt.from = Some(TableExpr::Table { name: "t".into(), alias: None });
            let sql1 = Statement::Select(Box::new(stmt)).to_string();
            let reparsed = parse_statement(&sql1).unwrap();
            prop_assert_eq!(reparsed.to_string(), sql1);
        }
    }
}
