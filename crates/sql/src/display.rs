//! Rendering the AST back to SQL text.
//!
//! The printer produces canonical SQL that the parser accepts again; the
//! round-trip property (`parse(print(ast)) == ast` modulo literal folding) is
//! checked by property tests in `lib.rs`.

use std::fmt;

use llmsql_types::Value;

use crate::ast::*;

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::CreateTable(c) => write!(f, "{c}"),
            Statement::DropTable { name, if_exists } => {
                write!(f, "DROP TABLE ")?;
                if *if_exists {
                    write!(f, "IF EXISTS ")?;
                }
                write!(f, "{name}")
            }
            Statement::Insert(i) => write!(f, "{i}"),
            Statement::Explain { statement, analyze } => {
                write!(f, "EXPLAIN ")?;
                if *analyze {
                    write!(f, "ANALYZE ")?;
                }
                write!(f, "{statement}")
            }
            Statement::Describe { name } => write!(f, "DESCRIBE {name}"),
        }
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.expr)?;
                if !o.ascending {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableExpr::Table { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableExpr::Subquery { query, alias } => write!(f, "({query}) AS {alias}"),
            TableExpr::Join {
                left,
                right,
                kind,
                on,
            } => {
                write!(f, "{left} {kind} {right}")?;
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                Value::Null => write!(f, "NULL"),
                Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
                other => write!(f, "{other}"),
            },
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Binary { left, op, right } => {
                write!(f, "({left} {op} {right})")
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            Expr::IsNull { expr, negated } => {
                if *negated {
                    write!(f, "({expr} IS NOT NULL)")
                } else {
                    write!(f, "({expr} IS NULL)")
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} ")?;
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write!(f, "({expr} ")?;
                if *negated {
                    write!(f, "NOT ")?;
                }
                write!(f, "BETWEEN {low} AND {high})")
            }
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                write!(f, "{func}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    Some(a) => write!(f, "{a}")?,
                    None => write!(f, "*")?,
                }
                write!(f, ")")
            }
            Expr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
            Expr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (cond, val) in branches {
                    write!(f, " WHEN {cond} THEN {val}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

impl fmt::Display for CreateTableStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE ")?;
        if self.virtual_table {
            write!(f, "VIRTUAL ")?;
        }
        write!(f, "TABLE ")?;
        if self.if_not_exists {
            write!(f, "IF NOT EXISTS ")?;
        }
        write!(f, "{} (", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if c.primary_key {
                write!(f, " PRIMARY KEY")?;
            } else if c.not_null {
                write!(f, " NOT NULL")?;
            }
            if let Some(comment) = &c.comment {
                write!(f, " COMMENT '{}'", comment.replace('\'', "''"))?;
            }
        }
        write!(f, ")")?;
        if let Some(comment) = &self.comment {
            write!(f, " COMMENT '{}'", comment.replace('\'', "''"))?;
        }
        Ok(())
    }
}

impl fmt::Display for InsertStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if !self.columns.is_empty() {
            write!(f, " ({})", self.columns.join(", "))?;
        }
        write!(f, " VALUES ")?;
        for (i, row) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_expression, parse_statement};

    fn roundtrip_stmt(sql: &str) {
        let ast1 = parse_statement(sql).unwrap();
        let printed = ast1.to_string();
        let ast2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("re-parse of '{printed}' failed: {e}"));
        assert_eq!(ast1, ast2, "printed form: {printed}");
    }

    #[test]
    fn roundtrip_selects() {
        for sql in [
            "SELECT 1",
            "SELECT * FROM countries",
            "SELECT DISTINCT region FROM countries",
            "SELECT name, population FROM countries WHERE population > 50000000 ORDER BY population DESC LIMIT 10",
            "SELECT c.name, ci.name FROM countries AS c JOIN cities AS ci ON ci.country = c.name",
            "SELECT region, COUNT(*) FROM countries GROUP BY region HAVING COUNT(*) > 2",
            "SELECT name FROM countries WHERE region IN ('Europe', 'Asia') AND population BETWEEN 1 AND 2",
            "SELECT name FROM countries WHERE capital IS NOT NULL",
            "SELECT CAST(population AS FLOAT) FROM countries",
            "SELECT CASE WHEN population > 100 THEN 'big' ELSE 'small' END FROM countries",
            "SELECT a.* FROM t AS a",
            "SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x > 1",
            "SELECT * FROM a CROSS JOIN b",
            "SELECT * FROM a LEFT JOIN b ON a.x = b.x",
            "SELECT COUNT(DISTINCT name) FROM t",
            "SELECT name FROM t WHERE name LIKE 'A%' OFFSET 3",
        ] {
            roundtrip_stmt(sql);
        }
    }

    #[test]
    fn roundtrip_ddl_dml() {
        for sql in [
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT NOT NULL, c FLOAT)",
            "CREATE VIRTUAL TABLE countries (name TEXT PRIMARY KEY COMMENT 'common name', population INTEGER) COMMENT 'countries of the world'",
            "DROP TABLE IF EXISTS t",
            "DROP TABLE t",
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
            "INSERT INTO t VALUES (1, TRUE, 2.5)",
            "EXPLAIN SELECT * FROM t",
            "DESCRIBE t",
        ] {
            roundtrip_stmt(sql);
        }
    }

    #[test]
    fn expr_display_parenthesizes() {
        let e = parse_expression("a + b * c").unwrap();
        assert_eq!(e.to_string(), "(a + (b * c))");
        let e = parse_expression("NOT x AND y").unwrap();
        assert_eq!(e.to_string(), "((NOT x) AND y)");
        let e = parse_expression("price BETWEEN 1 AND 10").unwrap();
        assert_eq!(e.to_string(), "(price BETWEEN 1 AND 10)");
    }

    #[test]
    fn string_literals_escape() {
        let e = parse_expression("name = 'it''s'").unwrap();
        assert_eq!(e.to_string(), "(name = 'it''s')");
        roundtrip_stmt("SELECT * FROM t WHERE name = 'it''s'");
    }
}
