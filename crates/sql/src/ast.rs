//! The SQL abstract syntax tree.
//!
//! The AST is deliberately close to the surface syntax; name resolution and
//! typing happen later in the binder (`llmsql-plan`). Display impls render the
//! tree back to SQL, which the parser round-trips (property-tested).

use std::fmt;

use llmsql_types::{DataType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(Box<SelectStatement>),
    /// `CREATE [VIRTUAL] TABLE ...`
    CreateTable(CreateTableStatement),
    /// `DROP TABLE [IF EXISTS] name`
    DropTable {
        /// Table to drop.
        name: String,
        /// Whether IF EXISTS was given.
        if_exists: bool,
    },
    /// `INSERT INTO name [(cols)] VALUES (...), (...)`
    Insert(InsertStatement),
    /// `EXPLAIN [ANALYZE] <select>`
    Explain {
        /// The statement being explained.
        statement: Box<Statement>,
        /// Whether ANALYZE was given: execute the statement and report
        /// actual per-operator counters alongside the estimates.
        analyze: bool,
    },
    /// `DESCRIBE table`
    Describe {
        /// Table to describe.
        name: String,
    },
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// Whether DISTINCT was specified.
    pub distinct: bool,
    /// The projection list.
    pub projection: Vec<SelectItem>,
    /// The FROM clause; empty means a single-row constant query.
    pub from: Option<TableExpr>,
    /// WHERE predicate.
    pub selection: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// OFFSET row count.
    pub offset: Option<u64>,
}

impl SelectStatement {
    /// An empty SELECT used as a builder starting point.
    pub fn empty() -> Self {
        SelectStatement {
            distinct: false,
            projection: vec![],
            from: None,
            selection: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
            offset: None,
        }
    }

    /// True if the projection or HAVING contains an aggregate call, or a
    /// GROUP BY clause is present.
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
            || self
                .having
                .as_ref()
                .map(|h| h.contains_aggregate())
                .unwrap_or(false)
    }
}

/// One item of the SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// Optional `AS alias`.
        alias: Option<String>,
    },
}

/// A table expression in the FROM clause: a base table or a join tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TableExpr {
    /// A named table with an optional alias.
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A parenthesized sub-select with an alias.
    Subquery {
        /// The subquery.
        query: Box<SelectStatement>,
        /// Alias naming the derived table.
        alias: String,
    },
    /// A join between two table expressions.
    Join {
        /// Left input.
        left: Box<TableExpr>,
        /// Right input.
        right: Box<TableExpr>,
        /// Join kind.
        kind: JoinKind,
        /// ON condition (None for CROSS joins).
        on: Option<Expr>,
    },
}

impl TableExpr {
    /// The alias (or name) this table expression is known by, when it is a
    /// simple relation.
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableExpr::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableExpr::Subquery { alias, .. } => Some(alias),
            TableExpr::Join { .. } => None,
        }
    }

    /// Collect the base-table names referenced anywhere in this expression.
    pub fn base_tables(&self) -> Vec<String> {
        match self {
            TableExpr::Table { name, .. } => vec![name.clone()],
            TableExpr::Subquery { query, .. } => query
                .from
                .as_ref()
                .map(|f| f.base_tables())
                .unwrap_or_default(),
            TableExpr::Join { left, right, .. } => {
                let mut v = left.base_tables();
                v.extend(right.base_tables());
                v
            }
        }
    }

    /// Number of join operators in this tree.
    pub fn join_count(&self) -> usize {
        match self {
            TableExpr::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            _ => 0,
        }
    }
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT OUTER JOIN.
    Left,
    /// RIGHT OUTER JOIN.
    Right,
    /// CROSS JOIN.
    Cross,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Cross => "CROSS JOIN",
        };
        write!(f, "{s}")
    }
}

/// An ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort expression.
    pub expr: Expr,
    /// Ascending (default) or descending.
    pub ascending: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Like,
    Concat,
}

impl BinaryOp {
    /// Whether this operator yields a boolean.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
                | BinaryOp::Like
        )
    }

    /// Whether this operator is a logical connective.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Like => "LIKE",
            BinaryOp::Concat => "||",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AggregateFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggregateFunc {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            AggregateFunc::Count => "COUNT",
            AggregateFunc::Sum => "SUM",
            AggregateFunc::Avg => "AVG",
            AggregateFunc::Min => "MIN",
            AggregateFunc::Max => "MAX",
        }
    }

    /// Parse from a (case-insensitive) name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateFunc::Count),
            "SUM" => Some(AggregateFunc::Sum),
            "AVG" => Some(AggregateFunc::Avg),
            "MIN" => Some(AggregateFunc::Min),
            "MAX" => Some(AggregateFunc::Max),
            _ => None,
        }
    }
}

impl fmt::Display for AggregateFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.sql())
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference, optionally qualified: `t.col` or `col`.
    Column {
        /// Optional table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for IS NOT NULL.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Operand.
        expr: Box<Expr>,
        /// List items.
        list: Vec<Expr>,
        /// True for NOT IN.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Low bound.
        low: Box<Expr>,
        /// High bound.
        high: Box<Expr>,
        /// True for NOT BETWEEN.
        negated: bool,
    },
    /// An aggregate function call.
    Aggregate {
        /// Which aggregate.
        func: AggregateFunc,
        /// Argument; `None` encodes `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// DISTINCT aggregates, e.g. COUNT(DISTINCT x).
        distinct: bool,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type.
        data_type: DataType,
    },
    /// `CASE WHEN cond THEN val [WHEN ...] [ELSE val] END`.
    Case {
        /// WHEN/THEN branches.
        branches: Vec<(Expr, Expr)>,
        /// ELSE expression.
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Convenience constructor for a column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_string()),
            name: name.to_string(),
        }
    }

    /// Convenience constructor for a literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Convenience constructor for a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `self AND other` (convenience).
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(self, BinaryOp::And, other)
    }

    /// True if this expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr
                        .as_ref()
                        .map(|e| e.contains_aggregate())
                        .unwrap_or(false)
            }
        }
    }

    /// Collect all column references in the expression.
    pub fn referenced_columns(&self) -> Vec<(Option<String>, String)> {
        let mut out = Vec::new();
        self.visit_columns(&mut |qualifier, name| {
            out.push((qualifier.map(|s| s.to_string()), name.to_string()));
        });
        out
    }

    /// Visit every column reference.
    pub fn visit_columns<'a>(&'a self, f: &mut impl FnMut(Option<&'a str>, &'a str)) {
        match self {
            Expr::Column { qualifier, name } => f(qualifier.as_deref(), name),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.visit_columns(f)
            }
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.visit_columns(f);
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.visit_columns(f);
                    v.visit_columns(f);
                }
                if let Some(e) = else_expr {
                    e.visit_columns(f);
                }
            }
        }
    }

    /// A short name for this expression, used as the default output column
    /// name when no alias is given.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.to_ascii_lowercase(),
            Expr::Aggregate { func, arg, .. } => match arg {
                Some(a) => format!("{}({})", func.sql().to_ascii_lowercase(), a.default_name()),
                None => format!("{}(*)", func.sql().to_ascii_lowercase()),
            },
            Expr::Literal(v) => v.to_display_string(),
            other => format!("{other}").to_ascii_lowercase(),
        }
    }
}

/// A column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Data type.
    pub data_type: DataType,
    /// PRIMARY KEY constraint.
    pub primary_key: bool,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// `COMMENT 'natural language description'`.
    pub comment: Option<String>,
}

/// `CREATE [VIRTUAL] TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStatement {
    /// Table name.
    pub name: String,
    /// Whether the table is virtual (LLM-backed).
    pub virtual_table: bool,
    /// Whether IF NOT EXISTS semantics were requested.
    pub if_not_exists: bool,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Table-level `COMMENT 'entity description'`.
    pub comment: Option<String>,
}

/// `INSERT INTO`.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStatement {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Vec<String>,
    /// Rows of value expressions.
    pub values: Vec<Vec<Expr>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::lit(5i64));
        assert!(matches!(e, Expr::Binary { .. }));
        let conj = Expr::col("x").and(Expr::col("y"));
        assert!(matches!(
            conj,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Aggregate {
            func: AggregateFunc::Sum,
            arg: Some(Box::new(Expr::col("population"))),
            distinct: false,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::binary(agg, BinaryOp::Plus, Expr::lit(1i64));
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("a").contains_aggregate());
    }

    #[test]
    fn select_is_aggregate() {
        let mut s = SelectStatement::empty();
        assert!(!s.is_aggregate());
        s.group_by.push(Expr::col("region"));
        assert!(s.is_aggregate());

        let mut s2 = SelectStatement::empty();
        s2.projection.push(SelectItem::Expr {
            expr: Expr::Aggregate {
                func: AggregateFunc::Count,
                arg: None,
                distinct: false,
            },
            alias: None,
        });
        assert!(s2.is_aggregate());
    }

    #[test]
    fn referenced_columns_collects_all() {
        let e = Expr::binary(
            Expr::qcol("t", "a"),
            BinaryOp::And,
            Expr::Between {
                expr: Box::new(Expr::col("b")),
                low: Box::new(Expr::lit(1i64)),
                high: Box::new(Expr::col("c")),
                negated: false,
            },
        );
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0], (Some("t".to_string()), "a".to_string()));
        assert_eq!(cols[1], (None, "b".to_string()));
    }

    #[test]
    fn table_expr_helpers() {
        let join = TableExpr::Join {
            left: Box::new(TableExpr::Table {
                name: "a".into(),
                alias: None,
            }),
            right: Box::new(TableExpr::Table {
                name: "b".into(),
                alias: Some("bb".into()),
            }),
            kind: JoinKind::Inner,
            on: None,
        };
        assert_eq!(join.base_tables(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(join.join_count(), 1);
        assert_eq!(join.binding_name(), None);
        let t = TableExpr::Table {
            name: "x".into(),
            alias: Some("y".into()),
        };
        assert_eq!(t.binding_name(), Some("y"));
    }

    #[test]
    fn default_names() {
        assert_eq!(Expr::col("Pop").default_name(), "pop");
        let agg = Expr::Aggregate {
            func: AggregateFunc::Count,
            arg: None,
            distinct: false,
        };
        assert_eq!(agg.default_name(), "count(*)");
    }

    #[test]
    fn aggregate_func_parse() {
        assert_eq!(AggregateFunc::parse("sum"), Some(AggregateFunc::Sum));
        assert_eq!(AggregateFunc::parse("median"), None);
    }

    #[test]
    fn binary_op_properties() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Plus.is_comparison());
        assert!(BinaryOp::And.is_logical());
        assert_eq!(BinaryOp::NotEq.sql(), "<>");
    }
}
