//! The catalog: the collection of named tables (materialized and virtual).
//!
//! Virtual tables have a schema registered in the catalog but no stored rows;
//! the executor materializes them through the language model. The catalog is
//! shared between the planner, the executor and the oracle used by the
//! accuracy evaluation, and is cheap to clone.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use llmsql_types::{Error, Result, Schema};

use crate::table::Table;

/// A catalog entry.
#[derive(Clone)]
pub enum CatalogEntry {
    /// A materialized table with stored rows.
    Materialized(Table),
    /// A virtual, LLM-backed table: schema only.
    Virtual(Schema),
}

impl CatalogEntry {
    /// The schema of the entry.
    pub fn schema(&self) -> Schema {
        match self {
            CatalogEntry::Materialized(t) => t.schema(),
            CatalogEntry::Virtual(s) => s.clone(),
        }
    }

    /// True for virtual (LLM-backed) tables.
    pub fn is_virtual(&self) -> bool {
        matches!(self, CatalogEntry::Virtual(_))
    }

    /// The underlying table, if materialized.
    pub fn table(&self) -> Option<&Table> {
        match self {
            CatalogEntry::Materialized(t) => Some(t),
            CatalogEntry::Virtual(_) => None,
        }
    }
}

/// The catalog; cheap to clone (shared interior).
#[derive(Clone, Default)]
pub struct Catalog {
    entries: Arc<RwLock<BTreeMap<String, CatalogEntry>>>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a materialized table; errors if the name exists.
    pub fn create_table(&self, schema: Schema) -> Result<Table> {
        schema.validate()?;
        let name = schema.name.clone();
        let mut entries = self.entries.write();
        if entries.contains_key(&name) {
            return Err(Error::schema(format!("table '{name}' already exists")));
        }
        let table = Table::new(schema)?;
        entries.insert(name, CatalogEntry::Materialized(table.clone()));
        Ok(table)
    }

    /// Register a virtual (LLM-backed) table; errors if the name exists.
    pub fn create_virtual_table(&self, mut schema: Schema) -> Result<()> {
        schema.virtual_table = true;
        schema.validate()?;
        let name = schema.name.clone();
        let mut entries = self.entries.write();
        if entries.contains_key(&name) {
            return Err(Error::schema(format!("table '{name}' already exists")));
        }
        entries.insert(name, CatalogEntry::Virtual(schema));
        Ok(())
    }

    /// Register an existing table object (used by workload generators that
    /// build tables directly).
    pub fn register_table(&self, table: Table) -> Result<()> {
        let name = table.name();
        let mut entries = self.entries.write();
        if entries.contains_key(&name) {
            return Err(Error::schema(format!("table '{name}' already exists")));
        }
        entries.insert(name, CatalogEntry::Materialized(table));
        Ok(())
    }

    /// Drop a table by name. With `if_exists`, missing tables are not errors.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<bool> {
        let key = name.to_ascii_lowercase();
        let removed = self.entries.write().remove(&key).is_some();
        if !removed && !if_exists {
            return Err(Error::schema(format!("table '{name}' does not exist")));
        }
        Ok(removed)
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Result<CatalogEntry> {
        let key = name.to_ascii_lowercase();
        self.entries
            .read()
            .get(&key)
            .cloned()
            .ok_or_else(|| Error::schema(format!("table '{name}' does not exist")))
    }

    /// Look up a schema by name.
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        Ok(self.get(name)?.schema())
    }

    /// Look up a materialized table, erroring for virtual tables.
    pub fn table(&self, name: &str) -> Result<Table> {
        match self.get(name)? {
            CatalogEntry::Materialized(t) => Ok(t),
            CatalogEntry::Virtual(_) => Err(Error::schema(format!(
                "table '{name}' is virtual and has no stored rows"
            ))),
        }
    }

    /// True if the name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.read().contains_key(&name.to_ascii_lowercase())
    }

    /// All table names in sorted order.
    pub fn table_names(&self) -> Vec<String> {
        self.entries.read().keys().cloned().collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Clone this catalog into a new, independent catalog where every table's
    /// rows are deep-copied. Used to derive the "degraded" store for hybrid
    /// experiments without touching the oracle.
    pub fn deep_clone(&self) -> Result<Catalog> {
        let out = Catalog::new();
        for name in self.table_names() {
            match self.get(&name)? {
                CatalogEntry::Materialized(t) => {
                    let copy = out.create_table(t.schema())?;
                    copy.insert_many(t.scan())?;
                }
                CatalogEntry::Virtual(s) => out.create_virtual_table(s)?,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::{Column, DataType, Row, Value};

    fn schema(name: &str) -> Schema {
        Schema::new(
            name,
            vec![
                Column::new("id", DataType::Int).primary_key(),
                Column::new("x", DataType::Text),
            ],
        )
    }

    #[test]
    fn create_and_get() {
        let cat = Catalog::new();
        cat.create_table(schema("t1")).unwrap();
        cat.create_virtual_table(schema("v1")).unwrap();
        assert!(cat.contains("t1"));
        assert!(cat.contains("T1"));
        assert!(cat.get("v1").unwrap().is_virtual());
        assert!(!cat.get("t1").unwrap().is_virtual());
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.table_names(), vec!["t1".to_string(), "v1".to_string()]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let cat = Catalog::new();
        cat.create_table(schema("t")).unwrap();
        assert!(cat.create_table(schema("t")).is_err());
        assert!(cat.create_virtual_table(schema("T")).is_err());
    }

    #[test]
    fn virtual_table_has_no_rows() {
        let cat = Catalog::new();
        cat.create_virtual_table(schema("v")).unwrap();
        assert!(cat.table("v").is_err());
        assert!(cat.schema_of("v").unwrap().virtual_table);
    }

    #[test]
    fn drop_table_semantics() {
        let cat = Catalog::new();
        cat.create_table(schema("t")).unwrap();
        assert!(cat.drop_table("t", false).unwrap());
        assert!(!cat.contains("t"));
        assert!(cat.drop_table("t", false).is_err());
        assert!(!cat.drop_table("t", true).unwrap());
    }

    #[test]
    fn missing_table_error() {
        let cat = Catalog::new();
        assert!(cat.get("nope").is_err());
        assert!(cat.schema_of("nope").is_err());
    }

    #[test]
    fn register_existing_table() {
        let cat = Catalog::new();
        let t = Table::new(schema("ext")).unwrap();
        t.insert(Row::new(vec![Value::Int(1), "a".into()])).unwrap();
        cat.register_table(t).unwrap();
        assert_eq!(cat.table("ext").unwrap().row_count(), 1);
    }

    #[test]
    fn deep_clone_is_independent() {
        let cat = Catalog::new();
        let t = cat.create_table(schema("t")).unwrap();
        t.insert(Row::new(vec![Value::Int(1), "a".into()])).unwrap();
        cat.create_virtual_table(schema("v")).unwrap();

        let copy = cat.deep_clone().unwrap();
        assert_eq!(copy.table("t").unwrap().row_count(), 1);
        // mutate the copy; original unaffected
        copy.table("t")
            .unwrap()
            .insert(Row::new(vec![Value::Int(2), "b".into()]))
            .unwrap();
        assert_eq!(copy.table("t").unwrap().row_count(), 2);
        assert_eq!(cat.table("t").unwrap().row_count(), 1);
        assert!(copy.get("v").unwrap().is_virtual());
    }

    #[test]
    fn shared_interior_between_clones() {
        let cat = Catalog::new();
        let cat2 = cat.clone();
        cat.create_table(schema("t")).unwrap();
        assert!(cat2.contains("t"));
    }
}
