//! Controlled degradation of stored tables.
//!
//! The hybrid-execution experiment (E6) needs a relational store with a known
//! fraction of missing information: attribute values replaced by NULL and/or
//! whole rows dropped. This module produces such degraded copies
//! deterministically from a seed so that the experiment is reproducible and
//! the oracle (the undamaged catalog) stays intact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use llmsql_types::{Result, Row, Value};

use crate::catalog::{Catalog, CatalogEntry};
use crate::table::Table;

/// Parameters of a degradation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeSpec {
    /// Probability that a non-key attribute value is replaced by NULL.
    pub null_fraction: f64,
    /// Probability that an entire row is dropped.
    pub drop_row_fraction: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for DegradeSpec {
    fn default() -> Self {
        DegradeSpec {
            null_fraction: 0.3,
            drop_row_fraction: 0.0,
            seed: 7,
        }
    }
}

impl DegradeSpec {
    /// Spec that only nulls out attribute values.
    pub fn nulls(fraction: f64, seed: u64) -> Self {
        DegradeSpec {
            null_fraction: fraction,
            drop_row_fraction: 0.0,
            seed,
        }
    }

    /// Spec that only drops whole rows.
    pub fn missing_rows(fraction: f64, seed: u64) -> Self {
        DegradeSpec {
            null_fraction: 0.0,
            drop_row_fraction: fraction,
            seed,
        }
    }
}

/// Statistics about what a degradation pass removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeReport {
    /// Attribute values replaced by NULL.
    pub nulled_values: usize,
    /// Rows dropped.
    pub dropped_rows: usize,
    /// Rows kept.
    pub kept_rows: usize,
}

/// Produce a degraded copy of a single table. Key columns and NOT NULL
/// columns are never nulled (that would violate the schema); they can still
/// disappear when the whole row is dropped.
pub fn degrade_table(table: &Table, spec: &DegradeSpec) -> Result<(Table, DegradeReport)> {
    let schema = table.schema();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ hash_name(&schema.name));
    let mut report = DegradeReport::default();

    let out = Table::new(schema.clone())?;
    let mut new_rows = Vec::new();
    for row in table.scan() {
        if rng.gen_bool(spec.drop_row_fraction.clamp(0.0, 1.0)) {
            report.dropped_rows += 1;
            continue;
        }
        let mut values = row.into_values();
        for (i, col) in schema.columns.iter().enumerate() {
            if col.primary_key || !col.nullable {
                continue;
            }
            if !values[i].is_null() && rng.gen_bool(spec.null_fraction.clamp(0.0, 1.0)) {
                values[i] = Value::Null;
                report.nulled_values += 1;
            }
        }
        new_rows.push(Row::new(values));
        report.kept_rows += 1;
    }
    out.insert_many(new_rows)?;
    Ok((out, report))
}

/// Produce a degraded deep copy of an entire catalog. Virtual tables are
/// copied unchanged (they have no stored rows to degrade).
pub fn degrade_catalog(catalog: &Catalog, spec: &DegradeSpec) -> Result<(Catalog, DegradeReport)> {
    let out = Catalog::new();
    let mut total = DegradeReport::default();
    for name in catalog.table_names() {
        match catalog.get(&name)? {
            CatalogEntry::Materialized(t) => {
                let (copy, report) = degrade_table(&t, spec)?;
                out.register_table(copy)?;
                total.nulled_values += report.nulled_values;
                total.dropped_rows += report.dropped_rows;
                total.kept_rows += report.kept_rows;
            }
            CatalogEntry::Virtual(s) => out.create_virtual_table(s)?,
        }
    }
    Ok((out, total))
}

fn hash_name(name: &str) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{simple_schema, table_with_rows};
    use llmsql_types::DataType;

    fn big_table() -> Table {
        let schema = simple_schema(
            "nums",
            &[
                ("id", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Text),
            ],
        );
        let rows = (0..200)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i * 2),
                    Value::Text(format!("v{i}")),
                ]
            })
            .collect();
        table_with_rows(schema, rows).unwrap()
    }

    #[test]
    fn null_degradation_hits_expected_fraction() {
        let t = big_table();
        let (d, report) = degrade_table(&t, &DegradeSpec::nulls(0.5, 3)).unwrap();
        assert_eq!(d.row_count(), 200);
        assert_eq!(report.dropped_rows, 0);
        // 400 degradable cells, expect ~200 nulled; allow generous slack
        assert!(
            report.nulled_values > 120 && report.nulled_values < 280,
            "nulled {}",
            report.nulled_values
        );
        // primary keys never nulled
        assert!(d.scan().iter().all(|r| !r.get(0).is_null()));
    }

    #[test]
    fn row_dropping() {
        let t = big_table();
        let (d, report) = degrade_table(&t, &DegradeSpec::missing_rows(0.25, 9)).unwrap();
        assert_eq!(report.kept_rows, d.row_count());
        assert_eq!(report.kept_rows + report.dropped_rows, 200);
        assert!(report.dropped_rows > 20 && report.dropped_rows < 90);
        assert_eq!(report.nulled_values, 0);
    }

    #[test]
    fn zero_degradation_is_identity() {
        let t = big_table();
        let (d, report) = degrade_table(
            &t,
            &DegradeSpec {
                null_fraction: 0.0,
                drop_row_fraction: 0.0,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(
            report,
            DegradeReport {
                nulled_values: 0,
                dropped_rows: 0,
                kept_rows: 200
            }
        );
        assert_eq!(d.scan(), t.scan());
    }

    #[test]
    fn degradation_is_deterministic() {
        let t = big_table();
        let spec = DegradeSpec::nulls(0.4, 77);
        let (d1, r1) = degrade_table(&t, &spec).unwrap();
        let (d2, r2) = degrade_table(&t, &spec).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(d1.scan(), d2.scan());
    }

    #[test]
    fn original_table_untouched() {
        let t = big_table();
        let before = t.scan();
        let _ = degrade_table(&t, &DegradeSpec::nulls(0.9, 5)).unwrap();
        assert_eq!(t.scan(), before);
    }

    #[test]
    fn catalog_degradation_preserves_virtual_tables() {
        let cat = Catalog::new();
        cat.register_table(big_table()).unwrap();
        cat.create_virtual_table(simple_schema("v", &[("id", DataType::Int)]))
            .unwrap();
        let (copy, report) = degrade_catalog(&cat, &DegradeSpec::nulls(0.5, 2)).unwrap();
        assert!(report.nulled_values > 0);
        assert!(copy.get("v").unwrap().is_virtual());
        assert_eq!(copy.table("nums").unwrap().row_count(), 200);
    }
}
