//! In-memory row-oriented tables.
//!
//! The store is the traditional-DBMS baseline of the reproduction and also
//! the *ground-truth oracle* the accuracy experiments compare LLM answers
//! against. It is deliberately simple: a `Vec<Row>` guarded by a `RwLock`,
//! with optional hash / B-tree indexes maintained on mutation.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use llmsql_types::{DataType, Error, Result, Row, Schema, Value};

use crate::index::{BTreeIndex, HashIndex, Index};

/// A handle to a table; cheap to clone.
#[derive(Clone)]
pub struct Table {
    inner: Arc<RwLock<TableInner>>,
}

struct TableInner {
    schema: Schema,
    rows: Vec<Row>,
    /// Secondary indexes keyed by column index.
    indexes: BTreeMap<usize, Index>,
    /// Monotonically increasing version, bumped on every mutation; used by
    /// readers that want to detect concurrent changes.
    version: u64,
}

impl Table {
    /// Create an empty table for the given schema.
    pub fn new(schema: Schema) -> Result<Self> {
        schema.validate()?;
        let mut inner = TableInner {
            schema,
            rows: Vec::new(),
            indexes: BTreeMap::new(),
            version: 0,
        };
        // Primary-key columns automatically get a hash index for uniqueness
        // checks and point lookups.
        for idx in inner.schema.primary_key_indices() {
            inner.indexes.insert(idx, Index::Hash(HashIndex::new()));
        }
        Ok(Table {
            inner: Arc::new(RwLock::new(inner)),
        })
    }

    /// The table schema (cloned).
    pub fn schema(&self) -> Schema {
        self.inner.read().schema.clone()
    }

    /// The table name.
    pub fn name(&self) -> String {
        self.inner.read().schema.name.clone()
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// Current mutation version.
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// Validate and coerce a row against the schema: arity check, type
    /// coercion, NOT NULL enforcement.
    fn coerce_row(schema: &Schema, row: Row) -> Result<Row> {
        if row.arity() != schema.arity() {
            return Err(Error::storage(format!(
                "table '{}' expects {} values, got {}",
                schema.name,
                schema.arity(),
                row.arity()
            )));
        }
        let mut out = Vec::with_capacity(row.arity());
        for (value, col) in row.into_values().into_iter().zip(&schema.columns) {
            let v = if value.is_null() {
                if !col.nullable {
                    return Err(Error::storage(format!(
                        "column '{}' of table '{}' is NOT NULL",
                        col.name, schema.name
                    )));
                }
                Value::Null
            } else {
                value.cast(col.data_type).map_err(|e| {
                    Error::storage(format!(
                        "value for column '{}' of table '{}': {}",
                        col.name, schema.name, e.message
                    ))
                })?
            };
            out.push(v);
        }
        Ok(Row::new(out))
    }

    /// Insert a single row. Enforces primary-key uniqueness.
    pub fn insert(&self, row: Row) -> Result<()> {
        self.insert_many(vec![row]).map(|_| ())
    }

    /// Insert many rows; returns the number inserted. The batch is validated
    /// first so either all rows are inserted or none.
    pub fn insert_many(&self, rows: Vec<Row>) -> Result<usize> {
        let mut inner = self.inner.write();
        let schema = inner.schema.clone();
        let pk = schema.primary_key_indices();

        let mut coerced = Vec::with_capacity(rows.len());
        for row in rows {
            let row = Self::coerce_row(&schema, row)?;
            if !pk.is_empty() {
                let key: Vec<Value> = pk.iter().map(|&i| row.get(i).clone()).collect();
                if key.iter().any(|v| v.is_null()) {
                    return Err(Error::storage(format!(
                        "primary key of table '{}' must not be NULL",
                        schema.name
                    )));
                }
                let exists = inner
                    .rows
                    .iter()
                    .chain(coerced.iter())
                    .any(|r: &Row| pk.iter().enumerate().all(|(k, &i)| r.get(i) == &key[k]));
                if exists {
                    return Err(Error::storage(format!(
                        "duplicate primary key {:?} in table '{}'",
                        key.iter()
                            .map(|v| v.to_display_string())
                            .collect::<Vec<_>>(),
                        schema.name
                    )));
                }
            }
            coerced.push(row);
        }

        let base = inner.rows.len();
        for (offset, row) in coerced.iter().enumerate() {
            let row_id = base + offset;
            let indexed: Vec<usize> = inner.indexes.keys().copied().collect();
            for col in indexed {
                let value = row.get(col).clone();
                if let Some(index) = inner.indexes.get_mut(&col) {
                    index.insert(value, row_id);
                }
            }
        }
        let n = coerced.len();
        inner.rows.extend(coerced);
        inner.version += 1;
        Ok(n)
    }

    /// Full scan: clone out all rows.
    pub fn scan(&self) -> Vec<Row> {
        self.inner.read().rows.clone()
    }

    /// Scan with a filter applied while the read lock is held.
    pub fn scan_filtered(&self, mut pred: impl FnMut(&Row) -> bool) -> Vec<Row> {
        self.inner
            .read()
            .rows
            .iter()
            .filter(|r| pred(r))
            .cloned()
            .collect()
    }

    /// Iterate rows without cloning the whole table; the callback runs under
    /// the read lock.
    pub fn for_each(&self, mut f: impl FnMut(&Row)) {
        for row in &self.inner.read().rows {
            f(row);
        }
    }

    /// Point lookup through an index if one exists on the column, otherwise a
    /// scan.
    pub fn lookup(&self, column: usize, value: &Value) -> Vec<Row> {
        let inner = self.inner.read();
        if let Some(index) = inner.indexes.get(&column) {
            index
                .get(value)
                .into_iter()
                .filter_map(|row_id| inner.rows.get(row_id).cloned())
                .collect()
        } else {
            inner
                .rows
                .iter()
                .filter(|r| r.get(column) == value)
                .cloned()
                .collect()
        }
    }

    /// Range lookup `[low, high]` (inclusive bounds, either optional) on a
    /// column; uses a B-tree index when available.
    pub fn range_lookup(
        &self,
        column: usize,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Vec<Row> {
        let inner = self.inner.read();
        if let Some(Index::BTree(btree)) = inner.indexes.get(&column) {
            return btree
                .range(low, high)
                .into_iter()
                .filter_map(|row_id| inner.rows.get(row_id).cloned())
                .collect();
        }
        inner
            .rows
            .iter()
            .filter(|r| {
                let v = r.get(column);
                if v.is_null() {
                    return false;
                }
                let ge = low
                    .map(|l| v.total_cmp(l) != std::cmp::Ordering::Less)
                    .unwrap_or(true);
                let le = high
                    .map(|h| v.total_cmp(h) != std::cmp::Ordering::Greater)
                    .unwrap_or(true);
                ge && le
            })
            .cloned()
            .collect()
    }

    /// Build a secondary index on a column.
    pub fn create_index(&self, column_name: &str, btree: bool) -> Result<()> {
        let mut inner = self.inner.write();
        let col = inner
            .schema
            .index_of(column_name)
            .ok_or_else(|| Error::schema(format!("no column '{column_name}'")))?;
        let mut index = if btree {
            Index::BTree(BTreeIndex::new())
        } else {
            Index::Hash(HashIndex::new())
        };
        for (row_id, row) in inner.rows.iter().enumerate() {
            index.insert(row.get(col).clone(), row_id);
        }
        inner.indexes.insert(col, index);
        Ok(())
    }

    /// True if the column has an index.
    pub fn has_index(&self, column: usize) -> bool {
        self.inner.read().indexes.contains_key(&column)
    }

    /// Update rows matching `pred`, applying `f`; returns the number updated.
    /// Indexes are rebuilt afterwards.
    pub fn update_where(&self, pred: impl Fn(&Row) -> bool, f: impl Fn(&mut Row)) -> Result<usize> {
        let mut inner = self.inner.write();
        let schema = inner.schema.clone();
        let mut updated = 0;
        let mut new_rows = Vec::with_capacity(inner.rows.len());
        for row in inner.rows.iter() {
            if pred(row) {
                let mut r = row.clone();
                f(&mut r);
                let r = Self::coerce_row(&schema, r)?;
                new_rows.push(r);
                updated += 1;
            } else {
                new_rows.push(row.clone());
            }
        }
        inner.rows = new_rows;
        inner.version += 1;
        Self::rebuild_indexes(&mut inner);
        Ok(updated)
    }

    /// Delete rows matching `pred`; returns the number deleted.
    pub fn delete_where(&self, pred: impl Fn(&Row) -> bool) -> usize {
        let mut inner = self.inner.write();
        let before = inner.rows.len();
        inner.rows.retain(|r| !pred(r));
        let deleted = before - inner.rows.len();
        if deleted > 0 {
            inner.version += 1;
            Self::rebuild_indexes(&mut inner);
        }
        deleted
    }

    /// Remove all rows.
    pub fn truncate(&self) {
        let mut inner = self.inner.write();
        inner.rows.clear();
        inner.version += 1;
        Self::rebuild_indexes(&mut inner);
    }

    fn rebuild_indexes(inner: &mut TableInner) {
        let cols: Vec<usize> = inner.indexes.keys().copied().collect();
        for col in cols {
            let is_btree = matches!(inner.indexes.get(&col), Some(Index::BTree(_)));
            let mut index = if is_btree {
                Index::BTree(BTreeIndex::new())
            } else {
                Index::Hash(HashIndex::new())
            };
            for (row_id, row) in inner.rows.iter().enumerate() {
                index.insert(row.get(col).clone(), row_id);
            }
            inner.indexes.insert(col, index);
        }
    }

    /// Simple per-column statistics used by the planner's cost model.
    pub fn column_stats(&self, column: usize) -> ColumnStats {
        let inner = self.inner.read();
        let mut stats = ColumnStats::default();
        let mut distinct = std::collections::HashSet::new();
        for row in &inner.rows {
            let v = row.get(column);
            stats.row_count += 1;
            if v.is_null() {
                stats.null_count += 1;
                continue;
            }
            distinct.insert(v.clone());
            if let Some(f) = v.as_f64() {
                stats.min = Some(stats.min.map_or(f, |m: f64| m.min(f)));
                stats.max = Some(stats.max.map_or(f, |m: f64| m.max(f)));
            }
        }
        stats.distinct_count = distinct.len();
        stats
    }
}

/// Per-column statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnStats {
    /// Total rows.
    pub row_count: usize,
    /// Rows where the column is NULL.
    pub null_count: usize,
    /// Number of distinct non-NULL values.
    pub distinct_count: usize,
    /// Minimum numeric value, if the column is numeric.
    pub min: Option<f64>,
    /// Maximum numeric value, if the column is numeric.
    pub max: Option<f64>,
}

/// Build a schema + table pair in one call (test/workload convenience).
pub fn table_with_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Table> {
    let table = Table::new(schema)?;
    table.insert_many(rows.into_iter().map(Row::new).collect())?;
    Ok(table)
}

/// Convenience: build a simple schema from `(name, type)` pairs, first column
/// is the primary key.
pub fn simple_schema(table: &str, cols: &[(&str, DataType)]) -> Schema {
    let columns = cols
        .iter()
        .enumerate()
        .map(|(i, (name, ty))| {
            let c = llmsql_types::Column::new(*name, *ty);
            if i == 0 {
                c.primary_key()
            } else {
                c
            }
        })
        .collect();
    Schema::new(table, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::Column;

    fn people_schema() -> Schema {
        Schema::new(
            "people",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("age", DataType::Int),
                Column::new("city", DataType::Text),
            ],
        )
    }

    fn sample_table() -> Table {
        table_with_rows(
            people_schema(),
            vec![
                vec!["alice".into(), 30i64.into(), "paris".into()],
                vec!["bob".into(), 25i64.into(), "london".into()],
                vec!["carol".into(), 35i64.into(), "paris".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn insert_and_scan() {
        let t = sample_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.scan().len(), 3);
        assert_eq!(t.name(), "people");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = Table::new(people_schema()).unwrap();
        assert!(t.insert(Row::new(vec!["x".into()])).is_err());
    }

    #[test]
    fn type_coercion_on_insert() {
        let t = Table::new(people_schema()).unwrap();
        t.insert(Row::new(vec!["dave".into(), "40".into(), Value::Null]))
            .unwrap();
        assert_eq!(t.scan()[0].get(1), &Value::Int(40));
    }

    #[test]
    fn not_null_enforced() {
        let t = Table::new(people_schema()).unwrap();
        let err = t
            .insert(Row::new(vec![Value::Null, 1i64.into(), Value::Null]))
            .unwrap_err();
        assert!(err.message.contains("NULL") || err.message.contains("primary key"));
    }

    #[test]
    fn duplicate_primary_key_rejected() {
        let t = sample_table();
        let err = t
            .insert(Row::new(vec!["alice".into(), 99i64.into(), Value::Null]))
            .unwrap_err();
        assert!(err.message.contains("duplicate"));
        // failed insert does not change the table
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn batch_insert_is_atomic() {
        let t = sample_table();
        let res = t.insert_many(vec![
            Row::new(vec!["dave".into(), 1i64.into(), Value::Null]),
            Row::new(vec!["alice".into(), 2i64.into(), Value::Null]), // dup
        ]);
        assert!(res.is_err());
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn point_lookup_uses_pk_index() {
        let t = sample_table();
        assert!(t.has_index(0));
        let rows = t.lookup(0, &Value::Text("bob".into()));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), &Value::Int(25));
        // non-indexed column falls back to scan
        let rows = t.lookup(2, &Value::Text("paris".into()));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn range_lookup_with_and_without_index() {
        let t = sample_table();
        let rows = t.range_lookup(1, Some(&Value::Int(26)), None);
        assert_eq!(rows.len(), 2);
        t.create_index("age", true).unwrap();
        let rows = t.range_lookup(1, Some(&Value::Int(26)), Some(&Value::Int(31)));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::Text("alice".into()));
    }

    #[test]
    fn update_and_delete() {
        let t = sample_table();
        let n = t
            .update_where(
                |r| r.get(2) == &Value::Text("paris".into()),
                |r| r.set(2, "berlin".into()),
            )
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.lookup(2, &Value::Text("berlin".into())).len(), 2);

        let deleted = t.delete_where(|r| r.get(1) == &Value::Int(25));
        assert_eq!(deleted, 1);
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.delete_where(|_| false), 0);
    }

    #[test]
    fn truncate_and_version() {
        let t = sample_table();
        let v0 = t.version();
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert!(t.version() > v0);
    }

    #[test]
    fn pk_index_survives_mutation() {
        let t = sample_table();
        t.delete_where(|r| r.get(0) == &Value::Text("alice".into()));
        // index rebuilt: lookup of remaining key still works
        let rows = t.lookup(0, &Value::Text("carol".into()));
        assert_eq!(rows.len(), 1);
        let rows = t.lookup(0, &Value::Text("alice".into()));
        assert!(rows.is_empty());
    }

    #[test]
    fn column_stats() {
        let t = sample_table();
        let s = t.column_stats(1);
        assert_eq!(s.row_count, 3);
        assert_eq!(s.null_count, 0);
        assert_eq!(s.distinct_count, 3);
        assert_eq!(s.min, Some(25.0));
        assert_eq!(s.max, Some(35.0));
        let s2 = t.column_stats(2);
        assert_eq!(s2.distinct_count, 2);
        assert_eq!(s2.min, None);
    }

    #[test]
    fn simple_schema_builder() {
        let s = simple_schema("t", &[("id", DataType::Int), ("x", DataType::Float)]);
        assert!(s.columns[0].primary_key);
        assert!(!s.columns[1].primary_key);
    }

    #[test]
    fn scan_filtered_and_for_each() {
        let t = sample_table();
        let rows = t.scan_filtered(|r| r.get(1).as_int().unwrap_or(0) > 26);
        assert_eq!(rows.len(), 2);
        let mut count = 0;
        t.for_each(|_| count += 1);
        assert_eq!(count, 3);
    }
}
