#![forbid(unsafe_code)]
//! # llmsql-store
//!
//! The relational storage substrate: an in-memory row store with a catalog,
//! hash and B-tree secondary indexes, CSV import/export, and controlled
//! degradation utilities.
//!
//! In the reproduction this crate plays two roles:
//!
//! 1. the **traditional-DBMS baseline** the paper compares against, and
//! 2. the **ground-truth oracle**: the synthetic world is materialized here
//!    and every LLM-backed answer is scored against it.
//!
//! The `degrade` module derives stores with missing values/rows for the
//! hybrid-completion experiment (E6).

#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
pub mod degrade;
pub mod index;
pub mod table;

pub use catalog::{Catalog, CatalogEntry};
pub use csv::{dump_csv, load_csv_into, parse_csv, table_from_csv, to_csv};
pub use degrade::{degrade_catalog, degrade_table, DegradeReport, DegradeSpec};
pub use index::{BTreeIndex, HashIndex, Index};
pub use table::{simple_schema, table_with_rows, ColumnStats, Table};

#[cfg(test)]
mod proptests {
    use super::*;
    use llmsql_types::{DataType, Row, Value};
    use proptest::prelude::*;

    proptest! {
        /// CSV round-trips arbitrary cell content.
        #[test]
        fn csv_roundtrip(cells in proptest::collection::vec(
            proptest::collection::vec("[ -~]{0,12}", 1..5), 0..8)) {
            // normalise ragged rows to the same width
            let width = cells.iter().map(|r| r.len()).max().unwrap_or(1);
            let rows: Vec<Vec<String>> = cells
                .into_iter()
                .map(|mut r| { r.resize(width, String::new()); r })
                .collect();
            let text = to_csv(&rows);
            let parsed = parse_csv(&text).unwrap();
            prop_assert_eq!(parsed, rows);
        }

        /// Hash-index lookups agree with a scan for random integer data.
        #[test]
        fn index_lookup_matches_scan(values in proptest::collection::vec(0i64..50, 1..100)) {
            let schema = simple_schema("t", &[("id", DataType::Int), ("v", DataType::Int)]);
            let table = Table::new(schema).unwrap();
            let rows: Vec<Row> = values
                .iter()
                .enumerate()
                .map(|(i, v)| Row::new(vec![Value::Int(i as i64), Value::Int(*v)]))
                .collect();
            table.insert_many(rows).unwrap();
            table.create_index("v", false).unwrap();
            let needle = Value::Int(values[0]);
            let via_index = table.lookup(1, &needle);
            let via_scan = table.scan_filtered(|r| r.get(1) == &needle);
            prop_assert_eq!(via_index.len(), via_scan.len());
        }

        /// B-tree range lookups agree with a filtered scan.
        #[test]
        fn btree_range_matches_scan(values in proptest::collection::vec(-100i64..100, 1..80),
                                    lo in -100i64..100, span in 0i64..100) {
            let hi = lo + span;
            let schema = simple_schema("t", &[("id", DataType::Int), ("v", DataType::Int)]);
            let table = Table::new(schema).unwrap();
            let rows: Vec<Row> = values
                .iter()
                .enumerate()
                .map(|(i, v)| Row::new(vec![Value::Int(i as i64), Value::Int(*v)]))
                .collect();
            table.insert_many(rows).unwrap();
            table.create_index("v", true).unwrap();
            let via_index = table.range_lookup(1, Some(&Value::Int(lo)), Some(&Value::Int(hi)));
            let via_scan = table.scan_filtered(|r| {
                let v = r.get(1).as_int().unwrap();
                v >= lo && v <= hi
            });
            prop_assert_eq!(via_index.len(), via_scan.len());
        }
    }
}
