//! Secondary indexes: hash (point lookups) and B-tree (range lookups).

use std::collections::{BTreeMap, HashMap};

use llmsql_types::Value;

/// A secondary index mapping column values to row ids.
#[derive(Debug, Clone)]
pub enum Index {
    /// Hash index for equality lookups.
    Hash(HashIndex),
    /// B-tree index for equality and range lookups.
    BTree(BTreeIndex),
}

impl Index {
    /// Insert a (value, row id) pair.
    pub fn insert(&mut self, value: Value, row_id: usize) {
        match self {
            Index::Hash(h) => h.insert(value, row_id),
            Index::BTree(b) => b.insert(value, row_id),
        }
    }

    /// Row ids with exactly this value.
    pub fn get(&self, value: &Value) -> Vec<usize> {
        match self {
            Index::Hash(h) => h.get(value),
            Index::BTree(b) => b.get(value),
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        match self {
            Index::Hash(h) => h.map.len(),
            Index::BTree(b) => b.map.len(),
        }
    }
}

/// Hash index.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<usize>>,
}

impl HashIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        HashIndex::default()
    }

    /// Insert a (value, row id) pair.
    pub fn insert(&mut self, value: Value, row_id: usize) {
        self.map.entry(value).or_default().push(row_id);
    }

    /// Row ids with exactly this value.
    pub fn get(&self, value: &Value) -> Vec<usize> {
        self.map.get(value).cloned().unwrap_or_default()
    }
}

/// B-tree index (ordered by [`Value::total_cmp`] via `Ord`).
#[derive(Debug, Clone, Default)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<usize>>,
}

impl BTreeIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        BTreeIndex::default()
    }

    /// Insert a (value, row id) pair.
    pub fn insert(&mut self, value: Value, row_id: usize) {
        self.map.entry(value).or_default().push(row_id);
    }

    /// Row ids with exactly this value.
    pub fn get(&self, value: &Value) -> Vec<usize> {
        self.map.get(value).cloned().unwrap_or_default()
    }

    /// Row ids whose value lies in `[low, high]` (inclusive, optional bounds).
    /// NULL keys are never returned by range queries.
    pub fn range(&self, low: Option<&Value>, high: Option<&Value>) -> Vec<usize> {
        use std::ops::Bound;
        let lower = match low {
            Some(v) => Bound::Included(v.clone()),
            None => Bound::Unbounded,
        };
        let upper = match high {
            Some(v) => Bound::Included(v.clone()),
            None => Bound::Unbounded,
        };
        self.map
            .range((lower, upper))
            .filter(|(k, _)| !k.is_null())
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_point_lookup() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(1), 0);
        idx.insert(Value::Int(2), 1);
        idx.insert(Value::Int(1), 2);
        assert_eq!(idx.get(&Value::Int(1)), vec![0, 2]);
        assert_eq!(idx.get(&Value::Int(3)), Vec::<usize>::new());
    }

    #[test]
    fn hash_index_int_float_equivalence() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(5), 7);
        assert_eq!(idx.get(&Value::Float(5.0)), vec![7]);
    }

    #[test]
    fn btree_range() {
        let mut idx = BTreeIndex::new();
        for (i, v) in [10, 20, 30, 40].iter().enumerate() {
            idx.insert(Value::Int(*v), i);
        }
        idx.insert(Value::Null, 99);
        assert_eq!(
            idx.range(Some(&Value::Int(15)), Some(&Value::Int(35))),
            vec![1, 2]
        );
        assert_eq!(idx.range(None, Some(&Value::Int(10))), vec![0]);
        assert_eq!(idx.range(Some(&Value::Int(45)), None), Vec::<usize>::new());
        // unbounded both sides returns everything except NULL
        assert_eq!(idx.range(None, None).len(), 4);
    }

    #[test]
    fn enum_dispatch() {
        let mut idx = Index::BTree(BTreeIndex::new());
        idx.insert(Value::Text("a".into()), 1);
        idx.insert(Value::Text("b".into()), 2);
        assert_eq!(idx.get(&Value::Text("b".into())), vec![2]);
        assert_eq!(idx.key_count(), 2);
        let mut h = Index::Hash(HashIndex::new());
        h.insert(Value::Int(1), 0);
        assert_eq!(h.key_count(), 1);
    }
}
