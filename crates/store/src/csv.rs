//! Minimal CSV reading and writing for loading workloads and dumping results.
//!
//! Handles quoting with `"` (doubled quotes escape), embedded commas and
//! newlines inside quoted fields. Only what the workloads need — not a general
//! CSV library.

use llmsql_types::{DataType, Error, Result, Row, Schema, Value};

use crate::table::Table;

/// Parse CSV text into rows of strings.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        field.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        field.push('"');
                    }
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(Error::storage("unterminated quoted CSV field"));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        rows.push(record);
    }
    Ok(rows)
}

/// Render rows of strings as CSV text.
pub fn to_csv(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                out.push('"');
                out.push_str(&cell.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(cell);
            }
        }
        out.push('\n');
    }
    out
}

/// Convert a CSV cell into a typed value; empty cells become NULL.
fn cell_to_value(cell: &str, ty: DataType) -> Result<Value> {
    let trimmed = cell.trim();
    if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    Value::Text(trimmed.to_string()).cast(ty)
}

/// Load CSV text (with a header row matching the schema's column order or
/// names) into an existing table. Returns the number of rows loaded.
pub fn load_csv_into(table: &Table, text: &str, has_header: bool) -> Result<usize> {
    let schema = table.schema();
    let parsed = parse_csv(text)?;
    let mut iter = parsed.into_iter();

    // Map CSV columns to schema columns.
    let mapping: Vec<usize> = if has_header {
        let header = iter
            .next()
            .ok_or_else(|| Error::storage("CSV is empty but a header was expected"))?;
        header
            .iter()
            .map(|h| {
                schema
                    .index_of(h.trim())
                    .ok_or_else(|| Error::storage(format!("CSV header '{h}' not in schema")))
            })
            .collect::<Result<Vec<_>>>()?
    } else {
        (0..schema.arity()).collect()
    };

    let mut rows = Vec::new();
    for record in iter {
        if record.iter().all(|c| c.trim().is_empty()) {
            continue;
        }
        if record.len() != mapping.len() {
            return Err(Error::storage(format!(
                "CSV record has {} fields, expected {}",
                record.len(),
                mapping.len()
            )));
        }
        let mut row = Row::empty();
        row.resize(schema.arity());
        for (cell, &target) in record.iter().zip(&mapping) {
            let ty = schema.columns[target].data_type;
            row.set(target, cell_to_value(cell, ty)?);
        }
        rows.push(row);
    }
    table.insert_many(rows)
}

/// Dump a table to CSV text with a header row.
pub fn dump_csv(table: &Table) -> String {
    let schema = table.schema();
    let mut rows: Vec<Vec<String>> = vec![schema.column_names()];
    table.for_each(|row| {
        rows.push(
            (0..schema.arity())
                .map(|i| {
                    let v = row.get(i);
                    if v.is_null() {
                        String::new()
                    } else {
                        v.to_display_string()
                    }
                })
                .collect(),
        );
    });
    to_csv(&rows)
}

/// Create a table from a schema and CSV text in one call.
pub fn table_from_csv(schema: Schema, text: &str, has_header: bool) -> Result<Table> {
    let table = Table::new(schema)?;
    load_csv_into(&table, text, has_header)?;
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::Column;

    fn schema() -> Schema {
        Schema::new(
            "cities",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("country", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        )
    }

    #[test]
    fn parse_simple() {
        let rows = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn parse_quoted_fields() {
        let rows = parse_csv("name,desc\n\"Paris, France\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rows[1][0], "Paris, France");
        assert_eq!(rows[1][1], "say \"hi\"");
    }

    #[test]
    fn parse_multiline_quoted() {
        let rows = parse_csv("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1][0], "line1\nline2");
    }

    #[test]
    fn parse_no_trailing_newline() {
        let rows = parse_csv("a,b\n1,2").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(parse_csv("\"oops").is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let rows = vec![
            vec!["name".to_string(), "note".to_string()],
            vec!["Paris, France".to_string(), "has \"quotes\"".to_string()],
            vec!["Berlin".to_string(), String::new()],
        ];
        let text = to_csv(&rows);
        let back = parse_csv(&text).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn load_with_header_reordered() {
        let t = Table::new(schema()).unwrap();
        let n = load_csv_into(
            &t,
            "population,name,country\n2148000,Paris,France\n3645000,Berlin,Germany\n",
            true,
        )
        .unwrap();
        assert_eq!(n, 2);
        let rows = t.lookup(0, &Value::Text("Paris".into()));
        assert_eq!(rows[0].get(2), &Value::Int(2148000));
        assert_eq!(rows[0].get(1), &Value::Text("France".into()));
    }

    #[test]
    fn load_without_header() {
        let t = Table::new(schema()).unwrap();
        load_csv_into(&t, "Paris,France,2148000\n", false).unwrap();
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn empty_cells_become_null() {
        let t = Table::new(schema()).unwrap();
        load_csv_into(&t, "name,country,population\nParis,,\n", true).unwrap();
        let row = &t.scan()[0];
        assert!(row.get(1).is_null());
        assert!(row.get(2).is_null());
    }

    #[test]
    fn bad_header_and_bad_arity_error() {
        let t = Table::new(schema()).unwrap();
        assert!(load_csv_into(&t, "nope\nx\n", true).is_err());
        assert!(load_csv_into(&t, "name,country,population\nonlyone\n", true).is_err());
    }

    #[test]
    fn dump_includes_header_and_nulls() {
        let t = table_from_csv(
            schema(),
            "name,country,population\nParis,France,100\nOslo,,\n",
            true,
        )
        .unwrap();
        let text = dump_csv(&t);
        assert!(text.starts_with("name,country,population\n"));
        assert!(text.contains("Paris,France,100"));
        assert!(text.contains("Oslo,,"));
        // roundtrip through a fresh table
        let t2 = table_from_csv(schema(), &text, true).unwrap();
        assert_eq!(t2.row_count(), 2);
    }
}
