//! CI entry point: lint the workspace, print findings, exit 1 when dirty.
//!
//! Usage: `cargo run -p llmsql-lint --bin llmsql-lint [root]`

use std::path::PathBuf;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(llmsql_lint::default_root);
    let report = llmsql_lint::lint_repo(&root);
    print!("{}", report.render());
    if !report.is_clean() {
        eprintln!(
            "llmsql-lint: {} unledgered violation(s), {} ledger error(s) — see CONTRIBUTING.md §Concurrency invariants",
            report.failures.len(),
            report.ledger_errors.len()
        );
        std::process::exit(1);
    }
}
