#![forbid(unsafe_code)]
//! In-repo static analysis for concurrency and robustness invariants.
//!
//! The engine's core claim — byte-identical rows and call counts at any
//! parallelism — rests on lock-free code being *correct*, and nothing about
//! a wrong `Ordering::Relaxed` fails a unit test. This crate is the cheap,
//! deterministic first line: a token-level scanner ([`scanner`]) plus four
//! rules ([`rules`]) with a ratcheting baseline ledger ([`ledger`]).
//!
//! Run it three ways, all equivalent:
//!
//! - `cargo test -p llmsql-lint` — the `repo_clean` integration test fails
//!   on any unledgered violation;
//! - `cargo run -p llmsql-lint --bin llmsql-lint` — same check as a binary
//!   (exit 1 on violation), used by the CI `static-analysis` job;
//! - `llmsql_lint::lint_repo(root)` — programmatic access.
//!
//! See `CONTRIBUTING.md` ("Concurrency invariants") for the conventions the
//! rules enforce and how to update the ledger.

pub mod ledger;
pub mod rules;
pub mod scanner;

use std::path::{Path, PathBuf};

use rules::Violation;

/// Everything `lint_repo` found, already reconciled against the ledger.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that fail the lint (not ledgered, or in excess of a
    /// ledger baseline).
    pub failures: Vec<Violation>,
    /// Per-group summaries for groups that outgrew their baseline.
    pub grown: Vec<(String, String, usize, usize)>,
    /// Stale-ledger notices (non-fatal): ratchet these down.
    pub stale: Vec<String>,
    /// Malformed ledger lines (fatal: a skipped entry un-enforces a rule).
    pub ledger_errors: Vec<String>,
    /// Total number of files scanned (sanity signal for the runner).
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is clean: no unledgered violations and a
    /// well-formed ledger.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.ledger_errors.is_empty()
    }

    /// Human-readable rendering of the report, one line per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.ledger_errors {
            out.push_str(&format!("ledger error: {e}\n"));
        }
        for (rule, file, live, baseline) in &self.grown {
            out.push_str(&format!(
                "{file}: {rule} count grew to {live} (ledger baseline {baseline})\n"
            ));
        }
        for v in &self.failures {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.file, v.line, v.rule, v.excerpt
            ));
        }
        for s in &self.stale {
            out.push_str(&format!("stale ledger: {s}\n"));
        }
        if self.is_clean() {
            out.push_str(&format!(
                "lint clean: {} files scanned, {} stale ledger entr{}\n",
                self.files_scanned,
                self.stale.len(),
                if self.stale.len() == 1 { "y" } else { "ies" }
            ));
        }
        out
    }
}

/// Locate the workspace root from this crate's build-time manifest dir.
/// Falls back to the current directory (the bin passes an explicit root).
pub fn default_root() -> PathBuf {
    let manifest: &str = env!("CARGO_MANIFEST_DIR");
    Path::new(manifest)
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Run all rules over the workspace at `root` and reconcile against
/// `crates/lint/lint.ledger`. I/O errors surface as synthetic ledger errors
/// so a truncated checkout can never pass silently.
pub fn lint_repo(root: &Path) -> Report {
    let mut report = Report::default();
    let mut violations = Vec::new();

    let files = collect_rs_files(root, &mut report);
    report.files_scanned = files.len();
    for rel in &files {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => violations.extend(rules::check_file(rel, &src)),
            Err(e) => report.ledger_errors.push(format!("read {rel}: {e}")),
        }
    }

    let ledger_path = root.join("crates/lint/lint.ledger");
    let ledger_text = match std::fs::read_to_string(&ledger_path) {
        Ok(t) => t,
        Err(e) => {
            report
                .ledger_errors
                .push(format!("read {}: {e}", ledger_path.display()));
            String::new()
        }
    };
    let (entries, mut errors) = ledger::parse(&ledger_text);
    report.ledger_errors.append(&mut errors);
    for e in &entries {
        if !root.join(&e.file).is_file() {
            report
                .ledger_errors
                .push(format!("ledger entry for missing file: {}", e.file));
        }
    }

    let reconciled = ledger::reconcile(&violations, &entries);
    report.failures = reconciled.unledgered;
    report.grown = reconciled.grown;
    report.stale = reconciled.stale;
    report
}

/// Collect the scan set: every `.rs` under `crates/` and `src/`, skipping
/// build output and the lint fixture tree (fixtures are deliberately bad).
fn collect_rs_files(root: &Path, report: &mut Report) -> Vec<String> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        walk(&root.join(top), root, &mut files, report);
    }
    files.sort();
    files
}

fn walk(dir: &Path, root: &Path, files: &mut Vec<String>, report: &mut Report) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return, // absent top-level dir is fine (sparse checkout)
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == ".git" {
                continue;
            }
            walk(&path, root, files, report);
        } else if name.ends_with(".rs") {
            match path.strip_prefix(root) {
                Ok(rel) => files.push(rel.to_string_lossy().replace('\\', "/")),
                Err(e) => report
                    .ledger_errors
                    .push(format!("path {}: {e}", path.display())),
            }
        }
    }
}
