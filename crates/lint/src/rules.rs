//! The lint rules. Each rule is a pure function from a classified source
//! file to violations; policy about baselines lives in [`crate::ledger`].
//!
//! Rules enforced (names are the ledger keys):
//!
//! - `atomic-ordering` — every `Ordering::{Relaxed,Acquire,Release,AcqRel,
//!   SeqCst}` use must carry an `// ordering:` justification comment on the
//!   same line or within the four lines above it. Applies to *all* code,
//!   tests included: orderings in stress tests encode invariants too.
//! - `banned-time` — `Instant::now` / `thread::sleep` are banned in
//!   non-test library code outside the allowlisted clock/timer modules
//!   ([`TIME_ALLOWLIST`]). Ad-hoc clocks fragment virtual-time testing and
//!   make latency accounting drift; new time sources go through the reactor
//!   or get a ledger entry with a reason.
//! - `panic-in-lib` — `.unwrap()` / `.expect(` / `println!` are banned in
//!   non-test library code. Library errors flow through `llmsql_types::
//!   Result`; stdout belongs to bins and benches.
//! - `float-ordering` — `.partial_cmp(` is banned in non-test library code
//!   unless the same line also uses `total_cmp` or a `// total-order:`
//!   justification comment covers it. Partial float comparisons silently
//!   equate NaN with everything (or panic through `.unwrap()`), which breaks
//!   sort determinism; use `f64::total_cmp` or justify why NaN cannot reach
//!   the comparison.
//! - `forbid-unsafe` — every crate root must carry `#![forbid(unsafe_code)]`.

use crate::scanner::{scan_source, Line};

/// A single rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule key (also the ledger key): `atomic-ordering`, `banned-time`,
    /// `panic-in-lib`, or `forbid-unsafe`.
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending code text, trimmed.
    pub excerpt: String,
}

pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
pub const RULE_BANNED_TIME: &str = "banned-time";
pub const RULE_PANIC_IN_LIB: &str = "panic-in-lib";
pub const RULE_FLOAT_ORDERING: &str = "float-ordering";
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";

/// The clock/timer module set: the only library files allowed to read the
/// wall clock or sleep. Everything else either routes through these or
/// carries a `banned-time` ledger entry with a reason.
pub const TIME_ALLOWLIST: &[&str] = &[
    // The event loop: owns the timer wheel, converts deadlines to parks.
    "crates/exec/src/reactor.rs",
    // The benchmark harness shim: measuring wall time is its purpose.
    "crates/shims/criterion/src/lib.rs",
];

/// Atomic ordering variants that require justification. `cmp::Ordering`
/// variants (`Less`/`Equal`/`Greater`) are deliberately not listed.
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// How many lines above an atomic op an `// ordering:` comment may sit and
/// still count as attached when statement tracking doesn't already cover it
/// (e.g. a comment above an `if`/`else` whose branches bump counters).
const ORDERING_COMMENT_WINDOW: usize = 6;

/// Upper bound on how many lines one marker's statement coverage may span —
/// a malformed file can't silently blanket hundreds of lines.
const ORDERING_STATEMENT_SPAN: usize = 20;

/// Marker that justifies an atomic ordering when found in a comment.
pub const ORDERING_MARKER: &str = "ordering:";

/// Marker that justifies a partial float comparison when found in a comment.
pub const TOTAL_ORDER_MARKER: &str = "total-order:";

/// Classification of a file, derived from its repo-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileKind {
    /// Library code: `crates/*/src/**` or the facade `src/**`, excluding
    /// `/bin/` targets. Tests, benches, examples and bins are not library
    /// code — `panic-in-lib` and `banned-time` don't apply there.
    pub is_lib: bool,
    /// A crate root (`src/lib.rs` of a workspace member): must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// Classify a repo-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileKind {
    let is_lib = (rel_path.starts_with("crates/") && rel_path.contains("/src/")
        || rel_path.starts_with("src/"))
        && !rel_path.contains("/bin/")
        && !rel_path.contains("/tests/")
        && !rel_path.contains("/benches/")
        && !rel_path.contains("/examples/");
    let is_crate_root = rel_path.ends_with("/src/lib.rs") || rel_path == "src/lib.rs";
    FileKind {
        is_lib,
        is_crate_root,
    }
}

/// Run every rule over one file. `rel_path` must be repo-relative with
/// forward slashes; it drives classification and appears in violations.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Violation> {
    let kind = classify(rel_path);
    let lines = scan_source(src);
    let mut out = Vec::new();

    check_atomic_ordering(rel_path, &lines, &mut out);
    if kind.is_lib && !TIME_ALLOWLIST.contains(&rel_path) {
        check_banned_time(rel_path, &lines, &mut out);
    }
    if kind.is_lib {
        check_panic_in_lib(rel_path, &lines, &mut out);
        check_float_ordering(rel_path, &lines, &mut out);
    }
    if kind.is_crate_root {
        check_forbid_unsafe(rel_path, &lines, &mut out);
    }
    out
}

/// One violation per line that uses an atomic ordering without an attached
/// `// ordering:` comment. A marker justifies its own line, the next
/// [`ORDERING_COMMENT_WINDOW`] lines, and — so multi-line statements like a
/// `compare_exchange` argument list or a stats struct literal stay covered
/// — every line through the end of the statement that follows it (first
/// line whose code ends with `;` or `}`; a trailing `{` means the statement
/// continues into a literal or body), capped at
/// [`ORDERING_STATEMENT_SPAN`] lines.
fn check_atomic_ordering(rel_path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    let covered = marker_coverage(lines, ORDERING_MARKER);
    for (idx, line) in lines.iter().enumerate() {
        if !ATOMIC_ORDERINGS.iter().any(|o| line.code.contains(o)) {
            continue;
        }
        let justified = covered.get(idx).copied().unwrap_or(false);
        if !justified {
            out.push(Violation {
                rule: RULE_ATOMIC_ORDERING,
                file: rel_path.to_string(),
                line: line.number,
                excerpt: line.code.trim().to_string(),
            });
        }
    }
}

/// Per-line justification coverage for a comment marker (shared by the
/// `atomic-ordering` and `float-ordering` rules): the marker line, the next
/// [`ORDERING_COMMENT_WINDOW`] lines, and the first statement after it.
fn marker_coverage(lines: &[Line], marker: &str) -> Vec<bool> {
    let mut covered = vec![false; lines.len()];
    for (idx, line) in lines.iter().enumerate() {
        if !line.comment.contains(marker) {
            continue;
        }
        // Window coverage: marker line plus the next few lines.
        for slot in covered
            .iter_mut()
            .skip(idx)
            .take(ORDERING_COMMENT_WINDOW + 1)
        {
            *slot = true;
        }
        // Statement coverage: through the end of the first statement whose
        // code starts at or after the marker.
        let mut seen_code = false;
        for k in idx..lines.len().min(idx + ORDERING_STATEMENT_SPAN) {
            covered[k] = true;
            let code = lines[k].code.trim_end();
            if !code.trim().is_empty() {
                seen_code = true;
            }
            if seen_code && (code.ends_with(';') || code.ends_with('}')) {
                break;
            }
        }
    }
    covered
}

/// Wall-clock reads and blocking sleeps outside the clock/timer modules.
fn check_banned_time(rel_path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for line in lines {
        if line.in_test {
            continue;
        }
        let hit = line.code.contains("Instant::now") || line.code.contains("thread::sleep");
        if hit {
            out.push(Violation {
                rule: RULE_BANNED_TIME,
                file: rel_path.to_string(),
                line: line.number,
                excerpt: line.code.trim().to_string(),
            });
        }
    }
}

/// `.unwrap()` / `.expect(` / `println!` in non-test library code.
fn check_panic_in_lib(rel_path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    for line in lines {
        if line.in_test {
            continue;
        }
        let hit = line.code.contains(".unwrap()")
            || line.code.contains(".expect(")
            || line.code.contains("println!");
        if hit {
            out.push(Violation {
                rule: RULE_PANIC_IN_LIB,
                file: rel_path.to_string(),
                line: line.number,
                excerpt: line.code.trim().to_string(),
            });
        }
    }
}

/// `.partial_cmp(` in non-test library code. A line is exempt when it also
/// mentions `total_cmp` (e.g. a fallback chain ending in a total order) or
/// when a `// total-order:` marker covers it, same coverage rules as
/// `atomic-ordering`. The leading dot keeps `fn partial_cmp(` trait
/// implementations out of scope — defining the method is fine, calling it
/// on query data is what risks NaN-order bugs.
fn check_float_ordering(rel_path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    let covered = marker_coverage(lines, TOTAL_ORDER_MARKER);
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if !line.code.contains(".partial_cmp(") || line.code.contains("total_cmp") {
            continue;
        }
        if covered.get(idx).copied().unwrap_or(false) {
            continue;
        }
        out.push(Violation {
            rule: RULE_FLOAT_ORDERING,
            file: rel_path.to_string(),
            line: line.number,
            excerpt: line.code.trim().to_string(),
        });
    }
}

/// Crate roots must forbid `unsafe` so it can never creep in silently.
fn check_forbid_unsafe(rel_path: &str, lines: &[Line], out: &mut Vec<Violation>) {
    let present = lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !present {
        out.push(Violation {
            rule: RULE_FORBID_UNSAFE,
            file: rel_path.to_string(),
            line: 1,
            excerpt: "missing #![forbid(unsafe_code)] in crate root".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert!(classify("crates/exec/src/slots.rs").is_lib);
        assert!(classify("src/lib.rs").is_lib);
        assert!(classify("src/lib.rs").is_crate_root);
        assert!(classify("crates/types/src/lib.rs").is_crate_root);
        assert!(!classify("crates/bench/src/bin/perf_smoke.rs").is_lib);
        assert!(!classify("tests/scheduler.rs").is_lib);
        assert!(!classify("examples/quickstart.rs").is_lib);
        assert!(!classify("crates/lint/tests/fixtures/bad_unwrap.rs").is_lib);
    }

    #[test]
    fn ordering_comment_window() {
        let bad = "x.load(Ordering::Relaxed);\n";
        let v = check_file("crates/x/src/a.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RULE_ATOMIC_ORDERING);

        let good = "// ordering: counter only, no ordering needed\nx.load(Ordering::Relaxed);\n";
        assert!(check_file("crates/x/src/a.rs", good).is_empty());

        let trailing = "x.load(Ordering::Relaxed); // ordering: counter\n";
        assert!(check_file("crates/x/src/a.rs", trailing).is_empty());
    }

    #[test]
    fn atomic_rule_applies_in_tests_too() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.load(Ordering::SeqCst); }\n}\n";
        let v = check_file("crates/x/src/a.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn float_ordering_requires_total_cmp_or_marker() {
        let bad = "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let v: Vec<_> = check_file("crates/x/src/a.rs", bad)
            .into_iter()
            .filter(|v| v.rule == RULE_FLOAT_ORDERING)
            .collect();
        assert_eq!(v.len(), 1, "{v:?}");

        let total = "fn f() { xs.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(check_file("crates/x/src/a.rs", total).is_empty());

        let justified = "// total-order: inputs are validated non-NaN scores\n\
                         fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert!(check_file("crates/x/src/a.rs", justified)
            .iter()
            .all(|v| v.rule != RULE_FLOAT_ORDERING));

        // Defining the trait method is not a violation; calling it is.
        let trait_impl = "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }\n";
        assert!(check_file("crates/x/src/a.rs", trait_impl).is_empty());

        // Tests and non-lib targets are out of scope.
        let in_test = "#[cfg(test)]\nmod tests {\n    fn t() { a.partial_cmp(&b); }\n}\n";
        assert!(check_file("crates/x/src/a.rs", in_test).is_empty());
        assert!(check_file("benches/b.rs", bad).is_empty());
    }

    #[test]
    fn time_and_panic_skip_tests_and_non_lib() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { thread::sleep(d); x.unwrap(); }\n}\n";
        assert!(check_file("crates/x/src/a.rs", src).is_empty());
        let lib = "fn f() { thread::sleep(d); }\n";
        assert_eq!(check_file("crates/x/src/a.rs", lib).len(), 1);
        assert!(check_file("tests/foo.rs", lib).is_empty());
        assert!(
            check_file("crates/exec/src/reactor.rs", lib).is_empty(),
            "allowlisted"
        );
    }
}
