//! A small Rust-source scanner in the style of `crates/sql/src/lexer.rs`.
//!
//! Splits a source file into per-line code and comment channels so lint rules
//! can match on code without false-firing inside strings or comments, and
//! marks the spans of `#[cfg(test)]` / `#[test]` items so library-only rules
//! can skip test code. It is a classifier, not a parser: it tracks exactly
//! the token structure the rules need (line/block comments with nesting,
//! string/char/byte/raw-string literals, lifetimes, brace depth) and nothing
//! else. It must never panic on arbitrary input — all indexing is
//! bounds-checked and the fuzz property in `tests/scanner_props.rs` pins
//! that.

/// One source line, split into channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Code text: comments stripped, string/char literal *contents* blanked
    /// to spaces (delimiters kept) so substring rules never match literals.
    pub code: String,
    /// Comment text on this line (both `//...` and `/* ... */` channels).
    pub comment: String,
    /// True when any part of the line lies inside a `#[cfg(test)]` or
    /// `#[test]` item body (or is the marker attribute itself).
    pub in_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    /// Inside `"..."`; payload: raw-string hash count, or `None` for a
    /// normal (escapable) string.
    Str(Option<u32>),
}

/// Scan source text into classified lines (code/comment channels plus
/// test-span marking).
pub fn scan_source(src: &str) -> Vec<Line> {
    let mut lines = split_channels(src);
    mark_test_spans(&mut lines);
    lines
}

/// Pass 1: walk bytes with a literal/comment state machine, emitting per-line
/// code and comment text.
fn split_channels(src: &str) -> Vec<Line> {
    let bytes = src.as_bytes();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let mut i = 0usize;

    // Helper closures capture nothing mutable; inline pushes keep borrowck
    // simple.
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                state = State::Normal;
            }
            lines.push(Line {
                number: lines.len() + 1,
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            i += 1;
            continue;
        }
        match state {
            State::LineComment => {
                comment.push(b as char);
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth > 1 {
                        State::BlockComment(depth - 1)
                    } else {
                        State::Normal
                    };
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth.saturating_add(1));
                    i += 2;
                } else {
                    comment.push(b as char);
                    i += 1;
                }
            }
            State::Str(raw_hashes) => match raw_hashes {
                None => {
                    if b == b'\\' {
                        // Skip the escaped byte (it may be a quote).
                        code.push(' ');
                        if bytes.get(i + 1).is_some_and(|&c| c != b'\n') {
                            code.push(' ');
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if b == b'"' {
                        code.push('"');
                        state = State::Normal;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Some(h) => {
                    if b == b'"' && matches_hashes(bytes, i + 1, h) {
                        code.push('"');
                        for _ in 0..h {
                            code.push(' ');
                        }
                        state = State::Normal;
                        i += 1 + h as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            },
            State::Normal => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if b == b'"' {
                    code.push('"');
                    state = State::Str(None);
                    i += 1;
                } else if let Some(h) = raw_string_open(bytes, i) {
                    // r"..."  r#"..."#  br"..."  etc. Push the prefix so the
                    // code channel keeps its length roughly honest.
                    let prefix_len = raw_prefix_len(bytes, i);
                    for _ in 0..prefix_len {
                        code.push(' ');
                    }
                    code.push('"');
                    state = State::Str(Some(h));
                    i += prefix_len + h as usize + 1;
                } else if b == b'\'' {
                    // Lifetime or char literal. A lifetime is `'ident` not
                    // followed by a closing quote; everything else is a char
                    // literal whose contents we blank.
                    if let Some(len) = char_literal_len(bytes, i) {
                        code.push('\'');
                        for _ in 1..len {
                            code.push(' ');
                        }
                        i += len;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(b as char);
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() || src.ends_with('\n') {
        // Final line without trailing newline (or preserve an empty last
        // slot only when there is content).
        if !code.is_empty() || !comment.is_empty() {
            lines.push(Line {
                number: lines.len() + 1,
                code,
                comment,
                in_test: false,
            });
        }
    }
    lines
}

/// True when `bytes[at..at + n]` is exactly `n` `#` characters.
fn matches_hashes(bytes: &[u8], at: usize, n: u32) -> bool {
    (0..n as usize).all(|k| bytes.get(at + k) == Some(&b'#'))
}

/// If a raw-string literal opens at `i` (`r`, `rb`, `br` prefixes with any
/// number of `#`), return its hash count.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<u32> {
    let rest = bytes.get(i..)?;
    let after_prefix = match rest {
        [b'r', ..] => 1,
        [b'b', b'r', ..] => 2,
        _ => return None,
    };
    // Previous byte must not be an identifier char (else `for` / `attr` etc.
    // would look like prefixes).
    if i > 0 {
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return None;
        }
    }
    let mut hashes = 0u32;
    let mut k = after_prefix;
    while rest.get(k) == Some(&b'#') {
        hashes += 1;
        k += 1;
    }
    if rest.get(k) == Some(&b'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length of the raw-string prefix (`r` or `br`) that opens at `i`.
fn raw_prefix_len(bytes: &[u8], i: usize) -> usize {
    if bytes.get(i) == Some(&b'b') {
        2
    } else {
        1
    }
}

/// If a char literal starts at `i` (a `'`), return its total byte length
/// including both quotes; `None` means it is a lifetime/label tick.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escaped char: scan to the closing quote (bounded).
            let mut k = i + 2;
            while k < bytes.len() && k - i < 12 {
                if bytes[k] == b'\'' {
                    return Some(k - i + 1);
                }
                if bytes[k] == b'\n' {
                    return None;
                }
                k += 1;
            }
            None
        }
        b'\'' => Some(2), // degenerate `''` — treat as empty literal
        &c => {
            if bytes.get(i + 2) == Some(&b'\'') && !(c.is_ascii_alphanumeric() || c == b'_') {
                return Some(3);
            }
            // `'x'` where x is alphanumeric could be a char literal OR the
            // start of a lifetime; the closing quote disambiguates.
            if bytes.get(i + 2) == Some(&b'\'') {
                Some(3)
            } else if c >= 0x80 {
                // Multi-byte char literal: find the closing quote within a
                // small window.
                let mut k = i + 2;
                while k < bytes.len() && k - i < 8 {
                    if bytes[k] == b'\'' {
                        return Some(k - i + 1);
                    }
                    k += 1;
                }
                None
            } else {
                None // lifetime like `'a` or loop label `'outer:`
            }
        }
    }
}

/// Pass 2: mark lines inside `#[cfg(test)]` / `#[test]` items by tracking
/// brace depth on the code channel. An attribute arms the marker; the next
/// opening brace enters the test span, which ends when depth returns to the
/// entry level. A `;` at arm time (e.g. `#[cfg(test)] mod tests;`) disarms.
fn mark_test_spans(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut test_exit_depth: Option<i64> = None;

    for line in lines.iter_mut() {
        let has_marker = line.code.contains("#[cfg(test)]") || line.code.contains("#[test]");
        if test_exit_depth.is_none() && has_marker {
            armed = true;
        }
        let mut in_test_here = test_exit_depth.is_some() || armed;
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if armed && test_exit_depth.is_none() {
                        test_exit_depth = Some(depth - 1);
                        armed = false;
                        in_test_here = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(exit) = test_exit_depth {
                        if depth <= exit {
                            test_exit_depth = None;
                            in_test_here = true; // closing brace still test
                        }
                    }
                }
                ';' if armed && test_exit_depth.is_none() && depth == 0 => {
                    armed = false;
                }
                _ => {}
            }
        }
        line.in_test = in_test_here;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_code_channel() {
        let src = r#"
let a = 1; // Ordering::Relaxed in a comment
let s = "Ordering::Relaxed in a string";
let t = 'x';
/* block Ordering::Relaxed */ let b = 2;
"#;
        let lines = scan_source(src);
        for l in &lines {
            assert!(
                !l.code.contains("Ordering::Relaxed"),
                "literal leaked into code channel: {:?}",
                l
            );
        }
        assert!(lines
            .iter()
            .any(|l| l.comment.contains("Ordering::Relaxed")));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"unwrap() . \"#; }\n";
        let lines = scan_source(src);
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unwrap()"));
        assert!(lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn test_mod_spans_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let lines = scan_source(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "attribute line");
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace");
        assert!(!lines[5].in_test);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let lines = scan_source(src);
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(!lines[0].code.contains("outer"));
    }
}
