//! The baseline ledger: pre-existing violations that are acknowledged with a
//! reason instead of fixed. The ledger is a ratchet — counts may only go
//! down. New code never gets ledgered; it complies or the build fails.
//!
//! Format (`crates/lint/lint.ledger`), one entry per line:
//!
//! ```text
//! <rule> <repo-relative-path> <max-count> <reason...>
//! ```
//!
//! `#` starts a comment. An entry baselines up to `max-count` violations of
//! `rule` in `path`; the lint fails when the live count exceeds the baseline
//! and reports (non-fatally) when an entry goes stale — shrink it when it
//! does, that is the ratchet paying out.

use std::collections::BTreeMap;

use crate::rules::Violation;

/// One parsed ledger entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: String,
    pub file: String,
    pub max_count: usize,
    pub reason: String,
}

/// Parse ledger text. Returns entries plus any malformed-line diagnostics
/// (a malformed ledger line is itself a lint failure — a silent parse skip
/// would un-enforce a rule).
pub fn parse(text: &str) -> (Vec<Entry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, char::is_whitespace);
        let rule = parts.next().unwrap_or_default().to_string();
        let file = parts.next().unwrap_or_default().to_string();
        let count = parts.next().unwrap_or_default();
        let reason = parts.next().unwrap_or("").trim().to_string();
        match count.parse::<usize>() {
            Ok(max_count) if !rule.is_empty() && !file.is_empty() && !reason.is_empty() => {
                entries.push(Entry {
                    rule,
                    file,
                    max_count,
                    reason,
                });
            }
            _ => errors.push(format!(
                "ledger line {}: expected `<rule> <path> <count> <reason>`, got: {line}",
                i + 1
            )),
        }
    }
    (entries, errors)
}

/// Result of reconciling live violations against the ledger.
#[derive(Debug, Default)]
pub struct Reconciled {
    /// Violations not covered by any ledger entry, or in excess of one.
    /// Any entry here fails the lint.
    pub unledgered: Vec<Violation>,
    /// Groups whose live count exceeded the baseline: `(rule, file, live,
    /// baseline)`. Redundant with `unledgered` but gives the summary line.
    pub grown: Vec<(String, String, usize, usize)>,
    /// Ledger entries whose live count is below baseline (ratchet these
    /// down) or whose file has no violations at all (delete them).
    pub stale: Vec<String>,
}

/// Group violations by `(rule, file)` and apply the ledger. When a group
/// exceeds its baseline every violation in it is reported (the lint cannot
/// know which N of the M sites are "the old ones" — the fix is to comply or
/// consciously raise the entry in the same commit that reviews it).
pub fn reconcile(violations: &[Violation], entries: &[Entry]) -> Reconciled {
    let mut groups: BTreeMap<(String, String), Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        groups
            .entry((v.rule.to_string(), v.file.clone()))
            .or_default()
            .push(v);
    }

    let mut out = Reconciled::default();
    for ((rule, file), group) in &groups {
        let baseline = entries
            .iter()
            .find(|e| &e.rule == rule && &e.file == file)
            .map(|e| e.max_count)
            .unwrap_or(0);
        if group.len() > baseline {
            if baseline > 0 {
                out.grown
                    .push((rule.clone(), file.clone(), group.len(), baseline));
            }
            out.unledgered.extend(group.iter().map(|v| (*v).clone()));
        } else if group.len() < baseline {
            out.stale.push(format!(
                "{rule} {file}: baseline {baseline} but only {} live — ratchet the ledger down",
                group.len()
            ));
        }
    }
    for e in entries {
        let live = groups
            .get(&(e.rule.clone(), e.file.clone()))
            .map(|g| g.len())
            .unwrap_or(0);
        if live == 0 {
            out.stale.push(format!(
                "{} {}: baseline {} but no live violations — delete the entry",
                e.rule, e.file, e.max_count
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RULE_PANIC_IN_LIB;

    fn v(file: &str, line: usize) -> Violation {
        Violation {
            rule: RULE_PANIC_IN_LIB,
            file: file.to_string(),
            line,
            excerpt: String::new(),
        }
    }

    #[test]
    fn parse_and_reconcile() {
        let (entries, errs) =
            parse("# comment\n\npanic-in-lib crates/a/src/x.rs 2 reason text here\nbadline\n");
        assert_eq!(entries.len(), 1);
        assert_eq!(errs.len(), 1);

        // At baseline: clean.
        let r = reconcile(
            &[v("crates/a/src/x.rs", 1), v("crates/a/src/x.rs", 2)],
            &entries,
        );
        assert!(r.unledgered.is_empty() && r.grown.is_empty() && r.stale.is_empty());

        // Above baseline: the whole group is reported.
        let r = reconcile(
            &[
                v("crates/a/src/x.rs", 1),
                v("crates/a/src/x.rs", 2),
                v("crates/a/src/x.rs", 3),
            ],
            &entries,
        );
        assert_eq!(r.unledgered.len(), 3);
        assert_eq!(r.grown.len(), 1);

        // Below baseline: stale notice, still clean.
        let r = reconcile(&[v("crates/a/src/x.rs", 1)], &entries);
        assert!(r.unledgered.is_empty());
        assert_eq!(r.stale.len(), 1);

        // Unledgered file fails outright.
        let r = reconcile(&[v("crates/b/src/y.rs", 9)], &entries);
        assert_eq!(r.unledgered.len(), 1);
        assert!(r.grown.is_empty());
    }
}
