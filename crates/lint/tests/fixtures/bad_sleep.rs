// Fixture: blocking sleep in library code outside the clock allowlist.
pub fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}
