// Fixture: a crate root without #![forbid(unsafe_code)].
//! Crate docs.
pub fn noop() {}
