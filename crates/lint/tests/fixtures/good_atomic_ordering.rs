// Fixture: every atomic op justified, including a multi-line statement.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    // ordering: Relaxed — advisory counter, nothing published under it.
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn swap(cell: &AtomicU64, next: u64) -> u64 {
    // ordering: Relaxed CAS — single-word state, retry loop re-reads.
    match cell.compare_exchange(
        0,
        next,
        Ordering::Relaxed,
        Ordering::Relaxed,
    ) {
        Ok(v) | Err(v) => v,
    }
}
