// Fixture: stdout noise from library code.
pub fn report(n: usize) {
    println!("{n} rows");
}
