#![forbid(unsafe_code)]
//! Fixture: a compliant crate root.
pub fn noop() {}
