// Fixture: ad-hoc wall-clock read in library code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
