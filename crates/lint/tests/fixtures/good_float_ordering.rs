// Fixture: float comparisons that pass — total_cmp on the same line,
// a justified partial_cmp, and a trait-method definition.
use std::cmp::Ordering;

pub fn rank(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.total_cmp(b));
}

pub fn rank_scores(scores: &mut [f64]) {
    // total-order: scores are clamped to [0, 1] upstream; NaN cannot occur.
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
}

pub struct Wrapper(pub f64);

impl PartialOrd for Wrapper {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.total_cmp(&other.0))
    }
}

impl PartialEq for Wrapper {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
