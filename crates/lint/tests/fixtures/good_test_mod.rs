// Fixture: sleeps/unwraps inside #[cfg(test)] are allowed; the same atomic
// without justification is still flagged even inside the test module.
pub fn lib_side() {}

#[cfg(test)]
mod tests {
    #[test]
    fn timing() {
        std::thread::sleep(std::time::Duration::from_millis(1));
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        println!("done");
    }
}
