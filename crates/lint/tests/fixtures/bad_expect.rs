// Fixture: expect in non-test library code.
pub fn first(v: &[u32]) -> u32 {
    *v.first().expect("non-empty")
}
