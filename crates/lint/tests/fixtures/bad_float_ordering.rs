// Fixture: partial float comparison in non-test library code, no
// total_cmp and no total-order justification.
pub fn rank(scores: &mut [f64]) {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
