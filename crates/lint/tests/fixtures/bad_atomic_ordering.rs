// Fixture: atomic op with no justification comment anywhere near it.
pub fn bump(counter: &std::sync::atomic::AtomicU64) {
    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}
