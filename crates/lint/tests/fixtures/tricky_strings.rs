// Fixture: rule tokens inside strings and comments must NOT be flagged.
pub fn decoys() -> (&'static str, &'static str, &'static str) {
    let a = "call .unwrap() and Ordering::SeqCst here";
    let b = r#"thread::sleep and Instant::now() in a raw string"#;
    // Commented out: x.load(Ordering::Acquire).unwrap(); println!("hi");
    /* block comment with thread::sleep(d) and .expect("x") */
    let c = "println!(\"nested\")";
    (a, b, c)
}
