//! Every `bad_*` fixture must trip exactly its rule; every `good_*`
//! fixture must pass clean. The fixtures live under `tests/fixtures/`,
//! which the repo walker skips, so they never pollute the real lint run.

use llmsql_lint::rules::{
    check_file, RULE_ATOMIC_ORDERING, RULE_BANNED_TIME, RULE_FLOAT_ORDERING, RULE_FORBID_UNSAFE,
    RULE_PANIC_IN_LIB,
};

/// Lint a fixture as if it sat at a library (non-root) path.
fn lint_as_lib(src: &str) -> Vec<&'static str> {
    let mut rules: Vec<_> = check_file("crates/fixture/src/module.rs", src)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn bad_atomic_ordering_is_flagged() {
    let rules = lint_as_lib(include_str!("fixtures/bad_atomic_ordering.rs"));
    assert_eq!(rules, vec![RULE_ATOMIC_ORDERING]);
}

#[test]
fn good_atomic_ordering_passes() {
    assert_eq!(
        lint_as_lib(include_str!("fixtures/good_atomic_ordering.rs")),
        Vec::<&str>::new()
    );
}

#[test]
fn bad_sleep_is_flagged() {
    assert_eq!(
        lint_as_lib(include_str!("fixtures/bad_sleep.rs")),
        vec![RULE_BANNED_TIME]
    );
}

#[test]
fn bad_instant_is_flagged() {
    assert_eq!(
        lint_as_lib(include_str!("fixtures/bad_instant.rs")),
        vec![RULE_BANNED_TIME]
    );
}

#[test]
fn sleep_in_allowlisted_clock_module_passes() {
    let src = include_str!("fixtures/bad_sleep.rs");
    assert!(check_file("crates/exec/src/reactor.rs", src).is_empty());
}

#[test]
fn bad_unwrap_expect_println_are_flagged() {
    for fixture in [
        include_str!("fixtures/bad_unwrap.rs"),
        include_str!("fixtures/bad_expect.rs"),
        include_str!("fixtures/bad_println.rs"),
    ] {
        assert_eq!(lint_as_lib(fixture), vec![RULE_PANIC_IN_LIB]);
    }
}

#[test]
fn bad_float_ordering_is_flagged() {
    assert_eq!(
        lint_as_lib(include_str!("fixtures/bad_float_ordering.rs")),
        vec![RULE_FLOAT_ORDERING]
    );
}

#[test]
fn good_float_ordering_passes() {
    assert_eq!(
        lint_as_lib(include_str!("fixtures/good_float_ordering.rs")),
        Vec::<&str>::new()
    );
}

#[test]
fn test_module_exempts_time_and_panic_rules() {
    assert_eq!(
        lint_as_lib(include_str!("fixtures/good_test_mod.rs")),
        Vec::<&str>::new()
    );
}

#[test]
fn missing_forbid_unsafe_flagged_only_at_crate_roots() {
    let bad = include_str!("fixtures/bad_missing_forbid.rs");
    let rules: Vec<_> = check_file("crates/fixture/src/lib.rs", bad)
        .into_iter()
        .map(|v| v.rule)
        .collect();
    assert_eq!(rules, vec![RULE_FORBID_UNSAFE]);
    // The same file at a non-root path is fine.
    assert!(check_file("crates/fixture/src/module.rs", bad).is_empty());

    let good = include_str!("fixtures/good_forbid.rs");
    assert!(check_file("crates/fixture/src/lib.rs", good).is_empty());
}

#[test]
fn tokens_inside_strings_and_comments_are_not_flagged() {
    assert_eq!(
        lint_as_lib(include_str!("fixtures/tricky_strings.rs")),
        Vec::<&str>::new()
    );
}

#[test]
fn non_lib_paths_skip_time_and_panic_rules() {
    let src = include_str!("fixtures/bad_unwrap.rs");
    assert!(check_file("crates/fixture/tests/t.rs", src).is_empty());
    assert!(check_file("crates/fixture/src/bin/tool.rs", src).is_empty());
    assert!(check_file("crates/fixture/benches/b.rs", src).is_empty());
}
