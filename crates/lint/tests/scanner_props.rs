//! Property tests: the scanner and rules must never panic, whatever bytes
//! they are fed — a lint that crashes on a weird source file is worse than
//! no lint.

use llmsql_lint::rules::check_file;
use llmsql_lint::scanner::scan_source;
use proptest::{prop_assert_eq, proptest};

proptest! {
    #[test]
    fn scanner_never_panics(src in "[ -~\n]{0,300}") {
        let lines = scan_source(&src);
        // Line numbers are 1-based and monotonic.
        for (idx, line) in lines.iter().enumerate() {
            prop_assert_eq!(line.number, idx + 1);
        }
    }

    #[test]
    fn rules_never_panic(src in "[ -~\n]{0,300}") {
        let _ = check_file("crates/fuzz/src/lib.rs", &src);
        let _ = check_file("crates/fuzz/src/module.rs", &src);
        let _ = check_file("tests/fuzz.rs", &src);
    }

    #[test]
    fn scanner_handles_unbalanced_quotes_and_comments(
        prefix in "[\"'/*r#\\\\ ]{0,20}",
        body in "[ -~\n]{0,80}",
    ) {
        let src = format!("{prefix}{body}");
        let lines = scan_source(&src);
        prop_assert_eq!(lines.len(), src.lines().count());
    }
}
