//! The enforcing test: the real tree must lint clean against the checked-in
//! ledger. This is what `cargo test -p llmsql-lint` (and the CI
//! `static-analysis` job) rides on.

use llmsql_lint::{default_root, lint_repo};

#[test]
fn repository_lints_clean() {
    let root = default_root();
    let report = lint_repo(&root);
    assert!(
        report.files_scanned > 50,
        "walker found only {} files — wrong root? ({})",
        report.files_scanned,
        root.display()
    );
    assert!(report.is_clean(), "{}", report.render());
}
