//! A small scoped-thread worker pool for order-preserving parallel maps.
//!
//! This is the execution engine's only concurrency primitive: `par_map` runs
//! a closure over a slice on up to `parallelism` worker threads and returns
//! the results **in input order**, so callers get rayon-style data
//! parallelism with deterministic output. Threads are scoped
//! (`std::thread::scope`), so closures may borrow from the caller's stack —
//! scan specs, catalogs and clients are shared by reference, never cloned
//! per worker.
//!
//! Work distribution is a single atomic cursor (work stealing degenerates to
//! chunk-free self-scheduling): workers race to claim the next index, which
//! keeps long-latency items (LLM calls) from serializing behind a static
//! partition.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Row-count threshold below which relational operators stay sequential:
/// under ~this many rows, thread spawn overhead dwarfs the per-row work.
pub const PAR_ROW_THRESHOLD: usize = 256;

/// Map `f` over `items` with up to `parallelism` worker threads, returning
/// results in input order. `f` receives `(index, &item)`.
///
/// With `parallelism <= 1` (or fewer than two items) this runs inline on the
/// caller's thread with zero overhead — the sequential and parallel paths
/// execute the same closure in the same logical order, which is what makes
/// parallel scans bit-identical to sequential ones.
///
/// Panics in `f` propagate to the caller (the scope joins all workers
/// first).
pub fn par_map<'a, T, R, F>(parallelism: usize, items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'a T) -> R + Sync,
{
    let workers = parallelism.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Thread-local buffer keeps the shared lock off the hot path.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    // ordering: Relaxed — the counter is the only shared
                    // word; fetch_add uniqueness alone partitions the items,
                    // and results are published via the mutex below.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .extend(local);
            });
        }
    });

    let mut pairs = collected
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// `par_map` over fallible closures: stops at the first error **in input
/// order** (later items may still have been evaluated, but their results are
/// discarded), mirroring what a sequential `collect::<Result<_>>` reports.
pub fn try_par_map<'a, T, R, E, F>(
    parallelism: usize,
    items: &'a [T],
    f: F,
) -> std::result::Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &'a T) -> std::result::Result<R, E> + Sync,
{
    par_map(parallelism, items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order_at_any_parallelism() {
        let items: Vec<u64> = (0..101).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for parallelism in [1, 2, 4, 8] {
            let got = par_map(parallelism, &items, |_, &x| x * 3);
            assert_eq!(got, expected, "parallelism {parallelism}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = ["a", "b", "c", "d", "e"];
        let got = par_map(4, &items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(4, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(4, &[7], |_, x| *x), vec![7]);
    }

    #[test]
    fn actually_runs_concurrently() {
        // 4 workers x 4 sleeps of 30ms: parallel wall time must be well under
        // the 480ms a sequential run would take.
        let items: Vec<u32> = (0..16).collect();
        let start = std::time::Instant::now();
        par_map(8, &items, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(30));
        });
        assert!(
            start.elapsed() < std::time::Duration::from_millis(300),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn try_par_map_reports_first_error_in_order() {
        let items: Vec<i64> = (0..50).collect();
        let attempts = AtomicU64::new(0);
        let result: Result<Vec<i64>, String> = try_par_map(4, &items, |_, &x| {
            // ordering: Relaxed — test counter, scope join publishes it.
            attempts.fetch_add(1, Ordering::Relaxed);
            if x % 20 == 19 {
                Err(format!("bad {x}"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(result.unwrap_err(), "bad 19");
    }

    #[test]
    fn workers_borrow_from_caller_stack() {
        let data = vec![String::from("x"); 10];
        let lens = par_map(4, &data, |_, s| s.len());
        assert_eq!(lens, vec![1; 10]);
        drop(data);
    }
}
