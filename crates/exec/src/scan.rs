//! Scan operators: the point where the engine touches storage.
//!
//! Three physical scans exist for one logical `Scan` node:
//!
//! * [`table_scan`] — read a materialized table from `llmsql-store`
//!   (Traditional mode, and the ground-truth oracle).
//! * [`llm_scan`] — materialize a *virtual* relation by prompting the model;
//!   how exactly depends on the [`PromptStrategy`].
//! * [`hybrid_scan`] — read the materialized (but incomplete) table and fill
//!   NULL cells by prompting the model for the missing attribute values.
//!
//! # Concurrent dispatch
//!
//! Model calls dominate query latency, so every LLM-backed scan dispatches
//! its prompts in *waves* of up to [`ExecContext::scan_fanout`] concurrent
//! requests (`EngineConfig::parallelism`). Waves preserve the sequential
//! scan's semantics exactly:
//!
//! * Prompts are planned deterministically (page offsets, tuple order), so
//!   the prompt *set* does not depend on thread interleaving; completions are
//!   reassembled in page/tuple order before any row is emitted. Same seed +
//!   same query ⇒ byte-identical rows at any parallelism.
//! * Call budgets (`max_llm_calls`) bound the wave size up front, so
//!   parallelism never issues calls a sequential run would have skipped.
//! * Pagination is speculative: a wave assumes every page comes back full.
//!   When the relation ends mid-wave, responses after the first short page
//!   are discarded. Wave sizes ramp up TCP-style (1, 2, 4, … capped at the
//!   fanout), so the extra calls a scan can issue past the end of the
//!   relation are bounded by the smaller of `parallelism - 1` and the page
//!   count the relation already served — an empty relation costs at most
//!   one call, as in a sequential run. Models that report a
//!   relation-cardinality hint (`LanguageModel::relation_cardinality`)
//!   eliminate the tail overshoot entirely: pages past the reported end are
//!   never planned, and an empty relation costs zero calls. Budget-capped
//!   scans (`LIMIT`/`max_scan_rows` reached before exhaustion) issue exactly
//!   the sequential call count. Cost accounting reports every issued call
//!   faithfully.
//!
//! # Multi-backend fan-out
//!
//! When the client wraps a `BackendPool`, the concurrent requests of one wave
//! spread across the pool's endpoints per its routing policy (round-robin
//! interleaves a wave; least-in-flight reacts to stragglers). This is
//! invisible to the wave planner: pooled backends are semantically identical
//! and failover happens inside the pool, so rows stay byte-identical and the
//! query-global call budget (`max_llm_calls`) keeps counting *logical*
//! prompts — a retried or failed-over prompt consumes exactly one unit of
//! budget no matter how many physical attempts it took.

use std::sync::Arc;
use std::time::{Duration, Instant};

use llmsql_llm::prompt::TaskSpec;
use llmsql_llm::{
    pack_prompts, parse_pipe_rows, parse_value_lines, parse_yes_no, split_response, ClientCall,
    CompletionRequest, CompletionResponse, LlmClient, YesNoAnswer,
};
use llmsql_plan::BoundExpr;
use llmsql_store::Table;
use llmsql_types::{
    DataType, Error, ErrorKind, Incomplete, PromptStrategy, Result, Row, Schema, Value,
};

use crate::context::ExecContext;
use crate::eval::eval_predicate;
use crate::metrics::{InFlightGuard, SharedMetrics};
use crate::parallel::par_map;
use crate::reactor::{self, Completion, DriveOutcome};
use crate::slots::CallSlots;

/// Parameters of a scan, extracted from the logical plan node. Borrows the
/// plan's data — constructing a spec allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct ScanSpec<'a> {
    /// Catalog table name.
    pub table: &'a str,
    /// Base-table schema.
    pub table_schema: &'a Schema,
    /// Filter over the base columns (pushed down by the optimizer).
    pub pushed_filter: Option<&'a BoundExpr>,
    /// Base columns that must be fetched (`None` = all).
    pub prompt_columns: Option<&'a [usize]>,
    /// Row cap pushed from a LIMIT.
    pub pushed_limit: Option<usize>,
}

impl ScanSpec<'_> {
    /// The columns the scan must actually obtain values for.
    fn needed_columns(&self) -> Vec<usize> {
        match self.prompt_columns {
            Some(cols) => cols.to_vec(),
            None => (0..self.table_schema.arity()).collect(),
        }
    }

    /// The per-scan row budget.
    fn row_budget(&self, ctx: &ExecContext) -> usize {
        self.pushed_limit
            .unwrap_or(usize::MAX)
            .min(ctx.config.max_scan_rows)
    }

    /// Render the pushed filter as SQL text for the prompt, if any (and if the
    /// engine is allowed to push predicates into prompts).
    fn prompt_filter(&self, ctx: &ExecContext) -> Option<String> {
        if !ctx.config.enable_predicate_pushdown {
            return None;
        }
        self.pushed_filter.and_then(|f| f.to_sql_text().ok())
    }

    /// The column names to request from the model (respecting projection
    /// pruning configuration).
    fn prompt_column_names(&self, ctx: &ExecContext) -> (Vec<usize>, Vec<String>, Vec<DataType>) {
        let indices = if ctx.config.enable_projection_pruning {
            self.needed_columns()
        } else {
            (0..self.table_schema.arity()).collect()
        };
        let names = indices
            .iter()
            .map(|&i| self.table_schema.columns[i].name.clone())
            .collect();
        let types = indices
            .iter()
            .map(|&i| self.table_schema.columns[i].data_type)
            .collect();
        (indices, names, types)
    }

    /// Index of the primary-key column (first column when none is marked).
    fn key_column(&self) -> usize {
        self.table_schema
            .columns
            .iter()
            .position(|c| c.primary_key)
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Wave dispatch
// ---------------------------------------------------------------------------

/// Issue one wave of prompts concurrently (up to the context's scan fanout),
/// returning responses in prompt order. Every prompt is recorded as one LLM
/// call of `kind` and tracked in the in-flight gauge while outstanding.
///
/// Two dispatch engines implement the same semantics:
///
/// * **Event-driven** (the default whenever the model supports non-blocking
///   submission, [`LlmClient::supports_async`]): the whole wave is submitted
///   through poll-based [`ClientCall`]s and the calling thread parks on the
///   [`crate::reactor`] — one OS thread holds every in-flight request of the
///   wave, so deployment concurrency is bounded by slot capacity, not
///   thread count.
/// * **Thread-pool** ([`par_map`], the fallback for blocking models): one
///   scoped worker thread per concurrent request.
///
/// Under a cross-query scheduler each request additionally holds a global
/// call slot while in flight (blocking path: [`ExecContext::acquire_slot`]
/// via [`LlmClient::complete_gated`]; reactor path: a non-blocking
/// `try_acquire` gate with the wait spent parked, not blocked). Prompt-cache
/// hits and single-flight followers bypass the slot pool in both. The wave
/// is fully planned before any slot is taken, so throttling delays dispatch
/// but never changes the prompt set, the rows, or the logical call count —
/// and both engines return byte-identical responses in prompt order.
fn dispatch_wave(
    ctx: &ExecContext,
    client: &LlmClient,
    kind: &str,
    prompts: &[String],
) -> Vec<Result<CompletionResponse>> {
    ctx.metrics.update(|m| {
        for _ in prompts {
            m.record_llm_call(kind);
        }
    });
    dispatch_physical(ctx, client, prompts)
}

/// Issue a wave of **per-tuple** prompts with tuple batching: chunks of up to
/// `EngineConfig::batch_rows_per_call` prompts are packed into one composite
/// request each, and every composite answer is split back into per-prompt
/// responses. Logical calls are recorded per *original* prompt — the budget
/// charge and `llm_calls_by_kind` are byte-identical at any batch size —
/// while the physical wave shrinks by the batch factor. Only per-tuple task
/// kinds route through here (lookups, filter checks); page-sized `row_batch`
/// prompts are already batches.
fn dispatch_wave_batched(
    ctx: &ExecContext,
    client: &LlmClient,
    kind: &str,
    prompts: &[String],
) -> Vec<Result<CompletionResponse>> {
    let rows_per_call = ctx.config.batch_rows_per_call.max(1);
    if rows_per_call <= 1 || prompts.len() <= 1 {
        return dispatch_wave(ctx, client, kind, prompts);
    }
    ctx.metrics.update(|m| {
        for _ in prompts {
            m.record_llm_call(kind);
        }
    });
    let composites: Vec<String> = prompts.chunks(rows_per_call).map(pack_prompts).collect();
    let responses = dispatch_physical(ctx, client, &composites);
    let mut out = Vec::with_capacity(prompts.len());
    for (chunk, response) in prompts.chunks(rows_per_call).zip(responses) {
        match response {
            Ok(response) => {
                if chunk.len() > 1 {
                    ctx.metrics.update(|m| m.batched_rows += chunk.len() as u64);
                }
                out.extend(split_response(&response, chunk.len()).into_iter().map(Ok));
            }
            // A failed composite fails each member identically — the same
            // per-prompt outcome independent dispatch would produce under
            // the same fault.
            Err(err) => out.extend(chunk.iter().map(|_| Err(err.clone()))),
        }
    }
    out
}

/// Route an already-accounted wave to a dispatch engine. Event-driven
/// whenever the model supports non-blocking submission; single-prompt waves
/// only bother when a *shared* reactor is attached (a private event loop
/// gains nothing over an inline call, but on the shared loop even a lone
/// prompt interleaves with — and coalesces against — other queries' flights).
fn dispatch_physical(
    ctx: &ExecContext,
    client: &LlmClient,
    prompts: &[String],
) -> Vec<Result<CompletionResponse>> {
    if client.supports_async() && (prompts.len() > 1 || ctx.reactor().is_some()) {
        return dispatch_wave_reactor(ctx, client, prompts);
    }
    par_map(ctx.scan_fanout(), prompts, |_, prompt| {
        let _in_flight = ctx.metrics.track_in_flight();
        client.complete_gated(&CompletionRequest::new(prompt.as_str()), || {
            ctx.acquire_slot()
        })
    })
}

/// Where a [`WaveOp`] deposits its response: read by the dispatching thread
/// after the wave drains, written by whichever thread happens to be driving
/// the (possibly shared) reactor when the call completes.
type ResultSlot = Arc<parking_lot::Mutex<Option<Result<CompletionResponse>>>>;

/// Per-wave hedging state shared by the wave's ops: an EWMA of completed
/// calls' in-flight time that stragglers are measured against.
struct WaveHedgeState {
    /// EWMA of this wave's completed primaries' in-flight time, milliseconds.
    /// `None` until the first completion provides a baseline.
    ewma_ms: parking_lot::Mutex<Option<f64>>,
    multiplier: f64,
    min_ms: f64,
}

impl WaveHedgeState {
    fn observe(&self, sample_ms: f64) {
        let mut ewma = self.ewma_ms.lock();
        *ewma = Some(match *ewma {
            None => sample_ms,
            Some(prev) => 0.7 * prev + 0.3 * sample_ms,
        });
    }

    /// How long an op may stay in flight before its duplicate is dispatched.
    fn threshold(&self) -> Option<Duration> {
        let ewma = (*self.ewma_ms.lock())?;
        Some(Duration::from_secs_f64(
            (ewma * self.multiplier).max(self.min_ms).max(0.0) / 1000.0,
        ))
    }
}

/// Wave-level hedging for one op (pool-less deployments with
/// `EngineConfig::hedge_multiplier` set): once the wave has a completion
/// baseline, a straggling primary gets a duplicate request and the first of
/// the two to answer wins. The duplicate bypasses single-flight dedup and
/// the coalescer (it must be a genuinely independent physical attempt) and,
/// like a retry, consumes no logical budget.
struct WaveHedge {
    state: Arc<WaveHedgeState>,
    client: LlmClient,
    prompt: String,
    /// The duplicate call, once armed.
    call: Option<ClientCall>,
}

/// One wave entry on the reactor: a [`ClientCall`] plus this query's
/// accounting — the in-flight gauge held for the whole flight, the
/// non-blocking slot gate with its wait measurement, and the optional
/// straggler hedge. Owned (`'static`) so a wave can be handed to the
/// deployment-shared reactor where another query's worker may drive it.
struct WaveOp {
    metrics: SharedMetrics,
    slots: Option<Arc<CallSlots>>,
    call: ClientCall,
    hedge: Option<WaveHedge>,
    _in_flight: InFlightGuard,
    /// When this op first found the slot pool saturated (the wait being
    /// accumulated toward `slot_wait_ms`).
    slot_wait_started: Option<Instant>,
    /// First poll instant — the baseline for straggler detection.
    started: Option<Instant>,
    result: ResultSlot,
    done: bool,
}

impl Completion for WaveOp {
    fn poll(&mut self, now: Instant) -> bool {
        if self.done {
            return true;
        }
        let started = *self.started.get_or_insert(now);
        let metrics = &self.metrics;
        let slots = &self.slots;
        let slot_wait_started = &mut self.slot_wait_started;
        // The admission gate, non-blocking edition: grant immediately without
        // a pool; otherwise try_acquire and account the parked wait on grant
        // exactly like the blocking path accounts its blocked wait.
        let mut gate = || -> Option<Box<dyn std::any::Any + Send>> {
            let Some(slots) = slots.as_ref() else {
                return Some(Box::new(()));
            };
            match slots.try_acquire_owned() {
                Some(guard) => {
                    let waited_us = slot_wait_started
                        .take()
                        .map_or(0, |since| since.elapsed().as_micros() as u64);
                    metrics.update(|m| {
                        m.slot_waits += 1;
                        m.slot_wait_ms += waited_us as f64 / 1000.0;
                    });
                    slots.record_blocked_wait(waited_us);
                    Some(Box::new(guard))
                }
                None => {
                    slot_wait_started.get_or_insert(now);
                    None
                }
            }
        };
        if let Some(result) = self.call.poll(now, &mut gate) {
            if let Some(hedge) = &self.hedge {
                if result.is_ok() {
                    hedge
                        .state
                        .observe(now.saturating_duration_since(started).as_secs_f64() * 1000.0);
                }
            }
            if self.call.coalesced() {
                metrics.update(|m| m.coalesced_calls += 1);
            }
            *self.result.lock() = Some(result);
            self.done = true;
            return true;
        }
        if let Some(hedge) = &mut self.hedge {
            if hedge.call.is_none() {
                if let Some(threshold) = hedge.state.threshold() {
                    if now.saturating_duration_since(started) > threshold {
                        hedge.call = Some(
                            hedge
                                .client
                                .start_call(CompletionRequest::new(hedge.prompt.as_str()))
                                .without_dedup(),
                        );
                        metrics.update(|m| m.hedges_issued += 1);
                    }
                }
            }
            if let Some(call) = &mut hedge.call {
                if let Some(result) = call.poll(now, &mut gate) {
                    // The duplicate answered first; the late primary is
                    // cancelled by drop when the wave op is discarded.
                    metrics.update(|m| m.hedges_won += 1);
                    *self.result.lock() = Some(result);
                    self.done = true;
                    return true;
                }
            }
        }
        false
    }

    fn next_wakeup(&self, now: Instant) -> Option<Instant> {
        let mut wake = self.call.next_wakeup(now);
        if let Some(hedge) = &self.hedge {
            if let Some(call) = &hedge.call {
                wake = match (wake, call.next_wakeup(now)) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, None) => a,
                    (None, b) => b,
                };
            } else if let (Some(started), Some(threshold)) = (self.started, hedge.state.threshold())
            {
                // Stored-state derived (first-poll instant + fixed offset), so
                // the reactor's monotone-wakeup contract holds.
                let arm_at = started + threshold;
                wake = Some(wake.map_or(arm_at, |w| w.min(arm_at)));
            }
        }
        wake
    }
}

/// The event-driven wave engine: submit every prompt as a poll-based call
/// and park until the wave drains (or the query deadline fires mid-wave, in
/// which case unfinished calls are cancelled by drop and reported as
/// `DeadlineExceeded` with partial accounting). With a deployment-shared
/// reactor attached the wave joins the shared event loop — one driving
/// thread interleaves completions from every query — otherwise the calling
/// thread drives a private loop for just this wave.
fn dispatch_wave_reactor(
    ctx: &ExecContext,
    client: &LlmClient,
    prompts: &[String],
) -> Vec<Result<CompletionResponse>> {
    // Wave-level hedging only engages without a backend pool: the pool runs
    // its own hedging, and pooled deployments overwrite the hedge counters
    // from backend deltas in `sync_backend_metrics`.
    let hedge_state = (ctx.config.hedge_multiplier > 0.0 && client.pool().is_none()).then(|| {
        Arc::new(WaveHedgeState {
            ewma_ms: parking_lot::Mutex::new(None),
            multiplier: ctx.config.hedge_multiplier,
            min_ms: ctx.config.hedge_min_ms,
        })
    });
    let result_slots: Vec<ResultSlot> = prompts
        .iter()
        .map(|_| Arc::new(parking_lot::Mutex::new(None)))
        .collect();
    let ops: Vec<WaveOp> = prompts
        .iter()
        .zip(&result_slots)
        .map(|(prompt, slot)| WaveOp {
            metrics: ctx.metrics.clone(),
            slots: ctx.slots().map(Arc::clone),
            call: client.start_call(CompletionRequest::new(prompt.as_str())),
            hedge: hedge_state.as_ref().map(|state| WaveHedge {
                state: Arc::clone(state),
                client: client.clone(),
                prompt: prompt.clone(),
                call: None,
            }),
            _in_flight: ctx.metrics.track_in_flight(),
            slot_wait_started: None,
            started: None,
            result: Arc::clone(slot),
            done: false,
        })
        .collect();
    let outcome = if let Some(shared) = ctx.reactor() {
        shared.submit_wave(
            ops.into_iter()
                .map(|op| Box::new(op) as Box<dyn Completion + Send>)
                .collect(),
            ctx.deadline_instant(),
        )
    } else {
        let mut ops = ops;
        reactor::drive(&mut ops, ctx.deadline_instant())
    };
    debug_assert!(
        outcome == DriveOutcome::Completed || ctx.config.deadline_ms.is_some(),
        "reactor aborted without a deadline"
    );
    result_slots
        .into_iter()
        .map(|slot| {
            slot.lock()
                .take()
                .unwrap_or_else(|| Err(ctx.deadline_error()))
        })
        .collect()
}

/// LLM calls already issued for this query.
fn calls_used(ctx: &ExecContext) -> usize {
    ctx.metrics.llm_call_count() as usize
}

// ---------------------------------------------------------------------------
// Traditional scan
// ---------------------------------------------------------------------------

/// Scan a materialized table, applying the pushed filter locally.
pub fn table_scan(ctx: &ExecContext, spec: &ScanSpec<'_>, table: &Table) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    let budget = spec.row_budget(ctx);
    for row in table.scan() {
        if let Some(filter) = spec.pushed_filter {
            if eval_predicate(filter, &row)? != Some(true) {
                continue;
            }
        }
        rows.push(row);
        if rows.len() >= budget {
            break;
        }
    }
    ctx.metrics
        .update(|m| m.rows_from_store += rows.len() as u64);
    Ok(rows)
}

// ---------------------------------------------------------------------------
// LLM scan
// ---------------------------------------------------------------------------

/// Materialize a virtual relation by prompting the model.
pub fn llm_scan(ctx: &ExecContext, spec: &ScanSpec<'_>) -> Result<Vec<Row>> {
    let strategy = ctx.config.strategy;
    let rows = match strategy {
        PromptStrategy::TupleAtATime => llm_scan_tuple_at_a_time(ctx, spec, true)?,
        PromptStrategy::DecomposedOperators => llm_scan_decomposed(ctx, spec)?,
        // FullQuery is handled at the engine level; if a scan still ends up
        // here (e.g. a mixed plan), fall back to batched pagination.
        PromptStrategy::BatchedRows | PromptStrategy::FullQuery => llm_scan_batched(ctx, spec)?,
    };
    ctx.metrics.update(|m| m.rows_from_llm += rows.len() as u64);
    Ok(rows)
}

/// Page through the relation with `RowBatch` prompts, dispatching each wave
/// of pages concurrently at precomputed offsets and reassembling results in
/// page order.
fn llm_scan_batched(ctx: &ExecContext, spec: &ScanSpec<'_>) -> Result<Vec<Row>> {
    let client = ctx.require_client()?;
    let (indices, names, types) = spec.prompt_column_names(ctx);
    let filter = spec.prompt_filter(ctx);
    let budget = spec.row_budget(ctx);
    let page = ctx.config.batch_size.max(1);

    let mut rows: Vec<Row> = Vec::new();
    let mut offset = 0usize;
    let mut exhausted = false;
    // Relation-cardinality hint: when the model reports how many lines an
    // unfiltered enumeration would produce, pages at offsets past that count
    // can only come back empty — planning stops there instead of paying for
    // them. With a pushed filter the hint is still a sound upper bound (the
    // model emits at most one line per observed row), and the short-page
    // check below still detects the filtered relation's earlier end. Without
    // a hint the slow-start ramp bounds the overshoot as before.
    let cardinality_hint = client.relation_cardinality(spec.table).map(|n| n as usize);
    // Slow-start ramp: speculative pagination past the end of the relation
    // wastes calls, and before the first response nothing is known about the
    // relation's size. The first wave is a single probe page; each full wave
    // doubles the next one up to the configured fanout, so overshoot at the
    // relation's end is bounded by what the relation has already
    // demonstrated (an empty relation costs exactly 1 call, like a
    // sequential scan).
    let mut ramp = 1usize;
    // Wall-time EWMA of completed waves — the basis for deadline-aware wave
    // sizing below. `None` until the first wave lands.
    let mut wave_ewma_ms: Option<f64> = None;
    // Graceful degradation (`EngineConfig::with_partial_results`): when a
    // deadline lapses or the backend layer becomes unrecoverable mid-scan,
    // return the rows already assembled instead of discarding completed
    // work. The cut is deterministic: pages are consumed strictly in page
    // order and consumption stops at the first failed page, so the delivered
    // rows are always an exact page-aligned prefix of the full result. The
    // triggering fault and the accounting at the cut are recorded as a
    // structured `Incomplete` marker in the metrics (first cut wins).
    let cut_short = |err: &Error, rows_delivered: usize| -> bool {
        if !ctx.config.partial_results
            || !matches!(err.kind, ErrorKind::DeadlineExceeded | ErrorKind::Llm)
        {
            return false;
        }
        let marker = Incomplete {
            kind: err.kind,
            message: err.message.clone(),
            rows_delivered: rows_delivered as u64,
            calls_spent: ctx.metrics.llm_call_count(),
        };
        ctx.metrics.update(|m| {
            if m.incomplete.is_none() {
                m.incomplete = Some(marker);
            }
        });
        true
    };
    // The call cap is query-global (shared with any other scans of the same
    // query through the metrics channel), like in the other strategies.
    while !exhausted && rows.len() < budget && calls_used(ctx) < ctx.config.max_llm_calls {
        // Deadline check between waves: a query past its deadline fails
        // before planning (or paying for) another wave.
        if let Err(err) = ctx.check_deadline() {
            if cut_short(&err, rows.len()) {
                break;
            }
            return Err(err);
        }
        let call_budget = ctx.config.max_llm_calls - calls_used(ctx);
        // Plan the wave. A wave may only contain *full* pages (`limit` =
        // `page`): their prompts depend on nothing but the page offset, which
        // advances by exactly `page` while pages come back full, so they can
        // be fetched concurrently and still match a sequential run prompt-
        // for-prompt. A budget-clamped final page is different — its `limit`
        // is `budget - rows.len()`, which depends on how many rows the
        // earlier pages actually *parsed* (fidelity noise drops lines) — so
        // it is always issued alone, planned from the true row count.
        let mut wave: Vec<(usize, usize)> = Vec::new(); // (offset, want)
        let mut planned_rows = rows.len();
        let mut planned_offset = offset;
        let mut wave_cap = ctx.scan_fanout().min(ramp).min(call_budget);
        // Deadline-aware wave sizing: with the deadline less than two typical
        // waves away, shrink to a single probe page. The query never commits
        // to a wave it cannot afford — either that page finishes the scan or
        // the between-wave deadline check fires with at most one page of
        // overshoot. Pages stay full-sized and sequential, so the prompt set
        // (and with it rows and logical calls) is unchanged; only how many
        // pages fly concurrently is.
        if let (Some(deadline), Some(est_ms)) = (ctx.deadline_instant(), wave_ewma_ms) {
            let remaining_ms = deadline
                .saturating_duration_since(reactor::now())
                .as_secs_f64()
                * 1000.0;
            if remaining_ms < est_ms * 2.0 {
                wave_cap = 1;
            }
        }
        while wave.len() < wave_cap && planned_rows < budget {
            if cardinality_hint.is_some_and(|n| planned_offset >= n) {
                break;
            }
            let remaining = budget - planned_rows;
            if remaining < page {
                // Budget-clamped page: speculation about earlier pages'
                // parsed counts would leak into its prompt. Issue it alone
                // (wave of one, planned from actual state) or after the
                // current wave of full pages drains.
                if wave.is_empty() {
                    wave.push((planned_offset, remaining));
                }
                break;
            }
            wave.push((planned_offset, page));
            planned_rows += page;
            planned_offset += page;
        }
        if wave.is_empty() {
            // The hint capped planning at the relation's end: nothing left
            // to fetch (an empty relation costs zero calls).
            break;
        }
        let prompts: Vec<String> = wave
            .iter()
            .map(|&(page_offset, want)| {
                TaskSpec::RowBatch {
                    table: spec.table.to_string(),
                    columns: names.clone(),
                    filter: filter.clone(),
                    limit: want,
                    offset: page_offset,
                }
                .to_prompt(Some(spec.table_schema))
            })
            .collect();
        let wave_started = reactor::now();
        let responses = dispatch_wave(ctx, client, "row_batch", &prompts);
        let wave_ms = wave_started.elapsed().as_secs_f64() * 1000.0;
        wave_ewma_ms = Some(wave_ewma_ms.map_or(wave_ms, |prev| 0.7 * prev + 0.3 * wave_ms));

        for (&(page_offset, want), response) in wave.iter().zip(responses) {
            let response = match response {
                Ok(response) => response,
                Err(err) => {
                    // Pages before this one were already consumed in order;
                    // stopping here keeps the delivered rows an exact
                    // page-aligned prefix.
                    if cut_short(&err, rows.len()) {
                        exhausted = true;
                        break;
                    }
                    return Err(err);
                }
            };
            let parsed = parse_pipe_rows(&response.text, &types);
            ctx.metrics
                .update(|m| m.dropped_lines += parsed.dropped_lines as u64);
            // Lines the model produced for this page, whether or not they
            // parsed: the relation is only exhausted when the model had fewer
            // rows to say than we asked for, not when some lines were
            // malformed. A backend that disobeys the prompt and emits *more*
            // lines than requested is clamped to the requested page size —
            // later pages were (or will be) dispatched at offsets assuming at
            // most `want` lines per page, so consuming overshoot here would
            // duplicate rows and desynchronize pagination.
            let got_lines = (parsed.rows.len() + parsed.dropped_lines).min(want);
            for partial in parsed.rows.into_iter().take(want) {
                rows.push(widen_row(&indices, partial, spec.table_schema.arity()));
                if rows.len() >= budget {
                    break;
                }
            }
            if got_lines < want {
                // End of relation: later pages in this wave were speculative
                // fetches past the end — discard them.
                exhausted = true;
                break;
            }
            offset = page_offset + got_lines;
            if rows.len() >= budget {
                break;
            }
        }
        if !exhausted {
            ramp = (ramp * 2).min(ctx.scan_fanout().max(1));
        }
    }
    if !ctx.config.enable_predicate_pushdown {
        apply_local_filter(ctx, spec, &mut rows)?;
    }
    Ok(rows)
}

/// Enumerate keys, then one `Lookup` prompt per entity; lookups for distinct
/// entities are independent and dispatched in concurrent waves.
fn llm_scan_tuple_at_a_time(
    ctx: &ExecContext,
    spec: &ScanSpec<'_>,
    push_filter_into_enumeration: bool,
) -> Result<Vec<Row>> {
    let client = ctx.require_client()?;
    let (indices, names, _types) = spec.prompt_column_names(ctx);
    let budget = spec.row_budget(ctx);
    let key_idx = spec.key_column();
    let key_name = spec.table_schema.columns[key_idx].name.clone();
    let key_type = spec.table_schema.columns[key_idx].data_type;

    // 1. Enumerate entity keys.
    ctx.check_deadline()?;
    let filter = if push_filter_into_enumeration {
        spec.prompt_filter(ctx)
    } else {
        None
    };
    let enumerate = TaskSpec::Enumerate {
        table: spec.table.to_string(),
        filter,
        limit: budget,
        offset: 0,
    };
    let responses = dispatch_wave(
        ctx,
        client,
        enumerate.kind(),
        &[enumerate.to_prompt(Some(spec.table_schema))],
    );
    let response = responses
        .into_iter()
        .next()
        .expect("one enumerate prompt")?;
    let keys = parse_value_lines(&response.text, key_type);
    ctx.metrics
        .update(|m| m.dropped_lines += keys.dropped_lines as u64);
    let keys: Vec<Value> = keys
        .rows
        .into_iter()
        .take(budget)
        .map(|row| row.get(0).clone())
        .collect();

    // 2. One lookup per entity for the remaining columns.
    let other_names: Vec<String> = names.iter().filter(|n| **n != key_name).cloned().collect();
    let other_types: Vec<DataType> = indices
        .iter()
        .zip(&names)
        .filter(|(_, n)| **n != key_name)
        .map(|(&i, _)| spec.table_schema.columns[i].data_type)
        .collect();

    let mut rows = Vec::new();
    if other_names.is_empty() {
        // Key-only projection: no lookups needed; the call-budget check is
        // kept for parity with the per-lookup path (and hoisted — the loop
        // itself issues no calls).
        if calls_used(ctx) < ctx.config.max_llm_calls {
            for key in keys {
                let mut full = vec![Value::Null; spec.table_schema.arity()];
                full[key_idx] = key;
                rows.push(Row::new(full));
            }
        }
    } else {
        let mut cursor = 0;
        while cursor < keys.len() {
            ctx.check_deadline()?;
            let call_budget = ctx.config.max_llm_calls.saturating_sub(calls_used(ctx));
            if call_budget == 0 {
                break;
            }
            let wave_len = (keys.len() - cursor)
                .min(ctx.scan_fanout())
                .min(call_budget);
            let wave_keys = &keys[cursor..cursor + wave_len];
            let prompts: Vec<String> = wave_keys
                .iter()
                .map(|key| {
                    TaskSpec::Lookup {
                        table: spec.table.to_string(),
                        key: key.to_display_string(),
                        columns: other_names.clone(),
                    }
                    .to_prompt(Some(spec.table_schema))
                })
                .collect();
            let responses = dispatch_wave_batched(ctx, client, "lookup", &prompts);
            for (key, response) in wave_keys.iter().zip(responses) {
                let response = response?;
                let parsed = parse_pipe_rows(&response.text, &other_types);
                ctx.metrics
                    .update(|m| m.dropped_lines += parsed.dropped_lines as u64);
                let mut full = vec![Value::Null; spec.table_schema.arity()];
                full[key_idx] = key.clone();
                if let Some(values) = parsed.rows.into_iter().next() {
                    let mut vi = 0;
                    for (&idx, name) in indices.iter().zip(&names) {
                        if *name == key_name {
                            continue;
                        }
                        full[idx] = values.get(vi).clone();
                        vi += 1;
                    }
                }
                rows.push(Row::new(full));
            }
            cursor += wave_len;
        }
    }

    // The per-tuple strategy re-checks the predicate locally: it has the
    // attribute values in hand, so it does not need to trust the model's
    // filtering.
    apply_local_filter(ctx, spec, &mut rows)?;
    Ok(rows)
}

/// Decomposed-operator strategy: enumerate + lookups *without* pushing the
/// predicate, then a `FilterCheck` prompt per candidate row, dispatched in
/// concurrent waves.
fn llm_scan_decomposed(ctx: &ExecContext, spec: &ScanSpec<'_>) -> Result<Vec<Row>> {
    let client = ctx.require_client()?;
    // Materialize without the filter so the filter becomes its own operator.
    let unfiltered_spec = ScanSpec {
        pushed_filter: None,
        ..*spec
    };
    let rows = llm_scan_tuple_at_a_time(ctx, &unfiltered_spec, false)?;
    let Some(filter) = spec.pushed_filter else {
        return Ok(rows);
    };
    let Ok(condition) = filter.to_sql_text() else {
        // Not renderable (should not happen) — fall back to local evaluation.
        let mut rows = rows;
        apply_local_filter(ctx, spec, &mut rows)?;
        return Ok(rows);
    };
    let key_idx = spec.key_column();

    let mut slots: Vec<Option<Row>> = rows.into_iter().map(Some).collect();
    let mut kept = Vec::new();
    let mut cursor = 0;
    while cursor < slots.len() {
        ctx.check_deadline()?;
        let call_budget = ctx.config.max_llm_calls.saturating_sub(calls_used(ctx));
        if call_budget == 0 {
            break;
        }
        let wave_len = (slots.len() - cursor)
            .min(ctx.scan_fanout())
            .min(call_budget);
        let prompts: Vec<String> = slots[cursor..cursor + wave_len]
            .iter()
            .map(|row| {
                TaskSpec::FilterCheck {
                    table: spec.table.to_string(),
                    key: row
                        .as_ref()
                        .expect("unconsumed slot")
                        .get(key_idx)
                        .to_display_string(),
                    condition: condition.clone(),
                }
                .to_prompt(Some(spec.table_schema))
            })
            .collect();
        let responses = dispatch_wave_batched(ctx, client, "filter_check", &prompts);
        for (i, response) in responses.into_iter().enumerate() {
            let response = response?;
            if parse_yes_no(&response.text) == YesNoAnswer::Yes {
                kept.push(slots[cursor + i].take().expect("unconsumed slot"));
            }
        }
        cursor += wave_len;
    }
    Ok(kept)
}

// ---------------------------------------------------------------------------
// Hybrid scan
// ---------------------------------------------------------------------------

/// Read a materialized (incomplete) table and fill NULL cells in the needed
/// columns by asking the model. Fill lookups for distinct rows are
/// independent and dispatched in concurrent waves.
pub fn hybrid_scan(ctx: &ExecContext, spec: &ScanSpec<'_>, table: &Table) -> Result<Vec<Row>> {
    let client = ctx.require_client()?;
    let (indices, _names, _types) = spec.prompt_column_names(ctx);
    let key_idx = spec.key_column();
    let budget = spec.row_budget(ctx);

    let missing_in = |row: &Row| -> Vec<usize> {
        indices
            .iter()
            .copied()
            .filter(|&i| row.get(i).is_null() && i != key_idx)
            .collect()
    };

    let mut all_rows: Vec<Row> = table.scan();
    let mut rows = Vec::new();
    let mut cursor = 0;
    'segments: while cursor < all_rows.len() && rows.len() < budget {
        ctx.check_deadline()?;
        // Collect a segment: consecutive rows containing at most one wave's
        // worth of fill lookups. With the call budget exhausted, remaining
        // rows pass through unfilled (as in a sequential run). The segment
        // never spans more rows than the remaining row budget: a sequential
        // scan stops issuing lookups once `budget` rows are emitted, so
        // planning fills past that point would pay for lookups a sequential
        // run never makes (rows filtered out along the way only make the
        // scan continue into a *later* segment, never skip a lookup).
        let wave_cap = ctx
            .config
            .max_llm_calls
            .saturating_sub(calls_used(ctx))
            .min(ctx.scan_fanout());
        let seg_cap = cursor + (budget - rows.len());
        let mut seg_end = cursor;
        let mut lookups: Vec<(usize, Vec<usize>)> = Vec::new(); // (row index, missing cols)
        while seg_end < all_rows.len() && seg_end < seg_cap {
            let missing = missing_in(&all_rows[seg_end]);
            if !missing.is_empty() && wave_cap > 0 {
                if lookups.len() == wave_cap {
                    break;
                }
                lookups.push((seg_end, missing));
            }
            seg_end += 1;
        }

        let prompts: Vec<String> = lookups
            .iter()
            .map(|(row_idx, missing)| {
                TaskSpec::Lookup {
                    table: spec.table.to_string(),
                    key: all_rows[*row_idx].get(key_idx).to_display_string(),
                    columns: missing
                        .iter()
                        .map(|&i| spec.table_schema.columns[i].name.clone())
                        .collect(),
                }
                .to_prompt(Some(spec.table_schema))
            })
            .collect();
        let responses = dispatch_wave_batched(ctx, client, "lookup", &prompts);

        // Apply fills in row order.
        for ((row_idx, missing), response) in lookups.iter().zip(responses) {
            let response = response?;
            let types: Vec<DataType> = missing
                .iter()
                .map(|&i| spec.table_schema.columns[i].data_type)
                .collect();
            let parsed = parse_pipe_rows(&response.text, &types);
            ctx.metrics
                .update(|m| m.dropped_lines += parsed.dropped_lines as u64);
            if let Some(values) = parsed.rows.into_iter().next() {
                let row = &mut all_rows[*row_idx];
                for (vi, &col) in missing.iter().enumerate() {
                    let v = values.get(vi).clone();
                    if !v.is_null() {
                        row.set(col, v);
                        ctx.metrics.update(|m| m.cells_filled_by_llm += 1);
                    }
                }
            }
        }

        // Emit the segment's rows in order, applying the pushed filter.
        for slot in &mut all_rows[cursor..seg_end] {
            let row = std::mem::replace(slot, Row::empty());
            if let Some(filter) = spec.pushed_filter {
                if eval_predicate(filter, &row)? != Some(true) {
                    continue;
                }
            }
            rows.push(row);
            if rows.len() >= budget {
                break 'segments;
            }
        }
        cursor = seg_end;
    }
    ctx.metrics
        .update(|m| m.rows_from_store += rows.len() as u64);
    Ok(rows)
}

// ---------------------------------------------------------------------------

/// Expand a row containing only the prompt columns into the full base arity,
/// filling non-requested columns with NULL.
fn widen_row(indices: &[usize], partial: Row, arity: usize) -> Row {
    let mut full = vec![Value::Null; arity];
    for (vi, &idx) in indices.iter().enumerate() {
        full[idx] = partial.get(vi).clone();
    }
    Row::new(full)
}

/// Apply the pushed filter locally (rows with missing evidence are kept out
/// only when the predicate definitively fails — NULL-tolerant).
fn apply_local_filter(ctx: &ExecContext, spec: &ScanSpec<'_>, rows: &mut Vec<Row>) -> Result<()> {
    let _ = ctx;
    if let Some(filter) = spec.pushed_filter {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows.drain(..) {
            if eval_predicate(filter, &row)? == Some(true) {
                out.push(row);
            }
        }
        *rows = out;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_llm::{KnowledgeBase, LlmClient, SimLlm};
    use llmsql_store::Catalog;
    use llmsql_types::{Column, EngineConfig, ExecutionMode, LlmFidelity};
    use std::sync::Arc;

    fn country_schema() -> Schema {
        Schema::virtual_table(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        )
    }

    fn world_rows() -> Vec<Row> {
        [
            ("France", "Europe", 68),
            ("Germany", "Europe", 84),
            ("Japan", "Asia", 125),
            ("Peru", "Americas", 34),
            ("Kenya", "Africa", 54),
        ]
        .iter()
        .map(|(n, r, p)| Row::new(vec![(*n).into(), (*r).into(), Value::Int(*p)]))
        .collect()
    }

    fn context(strategy: PromptStrategy, fidelity: LlmFidelity) -> ExecContext {
        let mut kb = KnowledgeBase::new();
        kb.add_table(country_schema(), world_rows());
        let sim = SimLlm::new(kb.into_shared(), fidelity, 7);
        let client = LlmClient::new(Arc::new(sim));
        let catalog = Catalog::new();
        catalog.create_virtual_table(country_schema()).unwrap();
        let config = EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(strategy)
            .with_batch_size(2);
        ExecContext::new(catalog, Some(client), config)
    }

    /// Owns the borrowed parts of a [`ScanSpec`] for tests.
    struct SpecParts {
        schema: Schema,
        filter: Option<BoundExpr>,
        prompt_columns: Option<Vec<usize>>,
        pushed_limit: Option<usize>,
    }

    fn parts(filter: Option<BoundExpr>, prompt_columns: Option<Vec<usize>>) -> SpecParts {
        SpecParts {
            schema: country_schema(),
            filter,
            prompt_columns,
            pushed_limit: None,
        }
    }

    impl SpecParts {
        fn spec(&self) -> ScanSpec<'_> {
            ScanSpec {
                table: "countries",
                table_schema: &self.schema,
                pushed_filter: self.filter.as_ref(),
                prompt_columns: self.prompt_columns.as_deref(),
                pushed_limit: self.pushed_limit,
            }
        }
    }

    fn gt_filter(population: i64) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(BoundExpr::col(2, "population", DataType::Int)),
            op: llmsql_sql::ast::BinaryOp::Gt,
            right: Box::new(BoundExpr::lit(population)),
        }
    }

    #[test]
    fn batched_scan_pages_through_table() {
        let ctx = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        let rows = llm_scan(&ctx, &parts(None, None).spec()).unwrap();
        assert_eq!(rows.len(), 5);
        let m = ctx.metrics.snapshot();
        // page size 2 over 5 rows: at least 3 calls
        assert!(m.llm_calls_by_kind["row_batch"] >= 3);
        assert_eq!(m.rows_from_llm, 5);
    }

    #[test]
    fn batched_scan_with_filter_and_pruning() {
        let ctx = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        let rows = llm_scan(&ctx, &parts(Some(gt_filter(60)), Some(vec![0, 2])).spec()).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // pruned column (region) is NULL
            assert!(r.get(1).is_null());
            assert!(r.get(2).as_int().unwrap() > 60);
        }
    }

    #[test]
    fn tuple_strategy_issues_lookup_per_row() {
        let ctx = context(PromptStrategy::TupleAtATime, LlmFidelity::perfect());
        let rows = llm_scan(&ctx, &parts(Some(gt_filter(60)), None).spec()).unwrap();
        assert_eq!(rows.len(), 3);
        let m = ctx.metrics.snapshot();
        assert_eq!(m.llm_calls_by_kind["enumerate"], 1);
        assert!(m.llm_calls_by_kind["lookup"] >= 3);
    }

    #[test]
    fn decomposed_strategy_uses_filter_checks() {
        let ctx = context(PromptStrategy::DecomposedOperators, LlmFidelity::perfect());
        let rows = llm_scan(&ctx, &parts(Some(gt_filter(60)), None).spec()).unwrap();
        assert_eq!(rows.len(), 3);
        let m = ctx.metrics.snapshot();
        assert_eq!(m.llm_calls_by_kind["filter_check"], 5);
    }

    #[test]
    fn pushed_limit_caps_rows_and_calls() {
        let ctx = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        let mut p = parts(None, None);
        p.pushed_limit = Some(2);
        let rows = llm_scan(&ctx, &p.spec()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(ctx.metrics.snapshot().llm_calls(), 1);
    }

    #[test]
    fn max_scan_rows_is_respected() {
        let mut ctx = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        ctx.config.max_scan_rows = 3;
        let rows = llm_scan(&ctx, &parts(None, None).spec()).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn budget_clamped_scan_under_noise_matches_sequential() {
        // Regression: a row budget close to the table size makes the final
        // page's `limit` depend on how many rows earlier pages *parsed*.
        // With fidelity noise dropping lines, an optimistic wave planner
        // would issue that page with a speculated limit (a different prompt
        // than sequential), changing both results and call counts. Waves
        // must therefore contain only full pages and issue clamped pages
        // alone.
        let big_schema = Schema::virtual_table(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        );
        let big_rows: Vec<Row> = (0..60)
            .map(|i| {
                Row::new(vec![
                    Value::Text(format!("Country {i:04}")),
                    Value::Text("Europe".into()),
                    Value::Int(1000 + i64::from(i)),
                ])
            })
            .collect();
        let context_with = |parallelism: usize| {
            let mut kb = KnowledgeBase::new();
            kb.add_table(big_schema.clone(), big_rows.clone());
            let sim = SimLlm::new(kb.into_shared(), LlmFidelity::medium(), 7);
            let catalog = Catalog::new();
            catalog.create_virtual_table(big_schema.clone()).unwrap();
            let mut config = EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_strategy(PromptStrategy::BatchedRows)
                .with_batch_size(5)
                .with_parallelism(parallelism);
            config.max_scan_rows = 12;
            ExecContext::new(catalog, Some(LlmClient::new(Arc::new(sim))), config)
        };
        let p = parts(None, None);
        let seq_ctx = context_with(1);
        let expected = llm_scan(&seq_ctx, &p.spec()).unwrap();
        let expected_calls = seq_ctx.metrics.snapshot().llm_calls();
        for parallelism in [4, 8] {
            let ctx = context_with(parallelism);
            let got = llm_scan(&ctx, &p.spec()).unwrap();
            assert_eq!(expected, got, "rows diverged at parallelism {parallelism}");
            assert_eq!(
                expected_calls,
                ctx.metrics.snapshot().llm_calls(),
                "call count diverged at parallelism {parallelism}"
            );
        }
    }

    #[test]
    fn cardinality_hint_eliminates_tail_overshoot() {
        // 20 rows at page size 5 is an exact multiple: without a hint the
        // scan must probe past the end (a sequential run pays 1 extra empty
        // page; a ramped wave can pay more). The simulator reports its
        // observed cardinality, so planning stops at page 4 exactly — same
        // rows, minimal calls, at any parallelism.
        let schema = country_schema();
        let rows_20: Vec<Row> = (0..20)
            .map(|i| {
                Row::new(vec![
                    Value::Text(format!("Country {i:02}")),
                    Value::Text("Europe".into()),
                    Value::Int(100 + i64::from(i)),
                ])
            })
            .collect();
        let context_with = |parallelism: usize| {
            let mut kb = KnowledgeBase::new();
            kb.add_table(schema.clone(), rows_20.clone());
            let sim = SimLlm::new(kb.into_shared(), LlmFidelity::perfect(), 7);
            let catalog = Catalog::new();
            catalog.create_virtual_table(schema.clone()).unwrap();
            let config = EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_strategy(PromptStrategy::BatchedRows)
                .with_batch_size(5)
                .with_parallelism(parallelism);
            ExecContext::new(catalog, Some(LlmClient::new(Arc::new(sim))), config)
        };
        let p = SpecParts {
            schema: country_schema(),
            filter: None,
            prompt_columns: None,
            pushed_limit: None,
        };
        let seq_ctx = context_with(1);
        let expected = llm_scan(&seq_ctx, &p.spec()).unwrap();
        assert_eq!(expected.len(), 20);
        assert_eq!(
            seq_ctx.metrics.snapshot().llm_calls(),
            4,
            "hint should stop the sequential scan at exactly 4 full pages"
        );
        for parallelism in [4, 8] {
            let ctx = context_with(parallelism);
            let got = llm_scan(&ctx, &p.spec()).unwrap();
            assert_eq!(expected, got, "rows diverged at parallelism {parallelism}");
            assert_eq!(
                ctx.metrics.snapshot().llm_calls(),
                4,
                "ramped wave overshot the hinted end at parallelism {parallelism}"
            );
        }
    }

    #[test]
    fn cardinality_hint_makes_empty_relations_free() {
        let schema = country_schema();
        let mut kb = KnowledgeBase::new();
        kb.add_table(schema.clone(), Vec::new());
        let sim = SimLlm::new(kb.into_shared(), LlmFidelity::perfect(), 7);
        let catalog = Catalog::new();
        catalog.create_virtual_table(schema).unwrap();
        let config = EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(PromptStrategy::BatchedRows)
            .with_batch_size(5);
        let ctx = ExecContext::new(catalog, Some(LlmClient::new(Arc::new(sim))), config);
        let rows = llm_scan(&ctx, &parts(None, None).spec()).unwrap();
        assert!(rows.is_empty());
        assert_eq!(ctx.metrics.snapshot().llm_calls(), 0);
    }

    #[test]
    fn lapsed_deadline_fails_the_scan_unless_partial_results_are_on() {
        // Already-lapsed deadline: the strict path fails before paying for a
        // wave; with partial results on, the scan degrades to an empty
        // prefix plus a structured marker instead.
        let mut strict = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        strict.config.deadline_ms = Some(0.0);
        let err = llm_scan(&strict, &parts(None, None).spec()).unwrap_err();
        assert_eq!(err.kind, ErrorKind::DeadlineExceeded);

        let mut graceful = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        graceful.config.deadline_ms = Some(0.0);
        graceful.config.partial_results = true;
        let rows = llm_scan(&graceful, &parts(None, None).spec()).unwrap();
        assert!(rows.is_empty());
        let marker = graceful.metrics.snapshot().incomplete.unwrap();
        assert_eq!(marker.kind, ErrorKind::DeadlineExceeded);
        assert_eq!(marker.rows_delivered, 0);
        assert_eq!(marker.calls_spent, 0);
    }

    #[test]
    fn backend_failure_mid_scan_degrades_to_a_page_aligned_prefix() {
        use llmsql_llm::CompletionResponse as Resp;
        use std::sync::atomic::{AtomicU64, Ordering};
        /// Serves the first `healthy_calls` completions, then goes hard down
        /// — a deterministic mid-scan backend loss.
        struct DiesAfter {
            inner: Arc<dyn llmsql_llm::LanguageModel>,
            healthy_calls: u64,
            served: AtomicU64,
        }
        impl llmsql_llm::LanguageModel for DiesAfter {
            fn name(&self) -> String {
                "dies-after".into()
            }
            fn complete(&self, request: &CompletionRequest) -> llmsql_types::Result<Resp> {
                // ordering: SeqCst — the test needs exactly healthy_calls
                // successes across racing callers; total order is the point.
                if self.served.fetch_add(1, Ordering::SeqCst) < self.healthy_calls {
                    self.inner.complete(request)
                } else {
                    Err(Error::llm("backend lost mid-scan"))
                }
            }
            fn fingerprint(&self) -> String {
                self.inner.fingerprint()
            }
        }
        let scan_with = |partial: bool| {
            let mut kb = KnowledgeBase::new();
            kb.add_table(country_schema(), world_rows());
            let sim = SimLlm::new(kb.into_shared(), LlmFidelity::perfect(), 7);
            let model = DiesAfter {
                inner: Arc::new(sim),
                healthy_calls: 1,
                served: AtomicU64::new(0),
            };
            let catalog = Catalog::new();
            catalog.create_virtual_table(country_schema()).unwrap();
            let mut config = EngineConfig::default()
                .with_mode(ExecutionMode::LlmOnly)
                .with_strategy(PromptStrategy::BatchedRows)
                .with_batch_size(2);
            config.partial_results = partial;
            let ctx = ExecContext::new(
                Catalog::clone(&catalog),
                Some(LlmClient::new(Arc::new(model))),
                config,
            );
            (llm_scan(&ctx, &parts(None, None).spec()), ctx)
        };
        // Strict: the mid-scan loss fails the whole query.
        let (strict, _) = scan_with(false);
        assert_eq!(strict.unwrap_err().kind, ErrorKind::Llm);
        // Graceful: the first page (2 rows — an exact page-aligned prefix)
        // survives, with the fault recorded in the marker.
        let (graceful, ctx) = scan_with(true);
        let rows = graceful.unwrap();
        assert_eq!(rows.len(), 2, "prefix must be the completed first page");
        let marker = ctx.metrics.snapshot().incomplete.unwrap();
        assert_eq!(marker.kind, ErrorKind::Llm);
        assert_eq!(marker.rows_delivered, 2);
        assert!(marker.calls_spent >= 2, "both issued calls are accounted");
        assert!(marker.message.contains("backend lost mid-scan"));
    }

    #[test]
    fn slot_pool_throttles_dispatch_without_changing_results() {
        use crate::slots::CallSlots;
        let p = parts(None, None);
        let free_ctx = context(PromptStrategy::BatchedRows, LlmFidelity::medium());
        let expected = llm_scan(&free_ctx, &p.spec()).unwrap();
        let expected_calls = free_ctx.metrics.snapshot().llm_calls();

        let slots = Arc::new(CallSlots::new(2));
        let mut throttled_ctx = context(PromptStrategy::BatchedRows, LlmFidelity::medium());
        throttled_ctx.config.parallelism = 8;
        let throttled_ctx = throttled_ctx.with_slots(Arc::clone(&slots));
        let got = llm_scan(&throttled_ctx, &p.spec()).unwrap();
        assert_eq!(expected, got, "slot throttling changed scan output");
        let m = throttled_ctx.metrics.snapshot();
        assert_eq!(expected_calls, m.llm_calls());
        assert_eq!(m.slot_waits, m.llm_calls(), "every dispatch takes a slot");
        assert!(slots.peak_in_use() <= 2, "slot cap exceeded");
        assert!(slots.peak_in_use() >= 1);
    }

    #[test]
    fn expired_deadline_fails_scans_with_partial_accounting() {
        for strategy in [
            PromptStrategy::BatchedRows,
            PromptStrategy::TupleAtATime,
            PromptStrategy::DecomposedOperators,
        ] {
            let mut ctx = context(strategy, LlmFidelity::perfect());
            ctx.config.deadline_ms = Some(2.0);
            std::thread::sleep(std::time::Duration::from_millis(5));
            let err = llm_scan(&ctx, &parts(None, None).spec()).unwrap_err();
            assert_eq!(
                err.kind,
                llmsql_types::ErrorKind::DeadlineExceeded,
                "{strategy:?}"
            );
            // Partial accounting: the scan failed before its first wave, so
            // zero calls were issued — and the error says so.
            assert!(err.message.contains("0 LLM call(s) issued"), "{err}");
            assert_eq!(ctx.metrics.snapshot().llm_calls(), 0, "{strategy:?}");
        }
    }

    #[test]
    fn unhit_deadline_leaves_scans_byte_identical() {
        let p = parts(None, None);
        let free_ctx = context(PromptStrategy::BatchedRows, LlmFidelity::medium());
        let expected = llm_scan(&free_ctx, &p.spec()).unwrap();
        let mut deadline_ctx = context(PromptStrategy::BatchedRows, LlmFidelity::medium());
        deadline_ctx.config.deadline_ms = Some(60_000.0);
        let got = llm_scan(&deadline_ctx, &p.spec()).unwrap();
        assert_eq!(expected, got, "an unhit deadline changed scan output");
        assert_eq!(
            free_ctx.metrics.snapshot().llm_calls(),
            deadline_ctx.metrics.snapshot().llm_calls()
        );
    }

    #[test]
    fn max_llm_calls_caps_waves() {
        for parallelism in [1, 4] {
            let mut ctx = context(PromptStrategy::TupleAtATime, LlmFidelity::perfect());
            ctx.config.parallelism = parallelism;
            // 1 enumerate + at most 2 lookups.
            ctx.config.max_llm_calls = 3;
            let rows = llm_scan(&ctx, &parts(None, None).spec()).unwrap();
            assert_eq!(rows.len(), 2, "parallelism {parallelism}");
            assert_eq!(ctx.metrics.snapshot().llm_calls(), 3);
        }
    }

    #[test]
    fn batched_call_cap_is_query_global() {
        // Two consecutive batched scans in the same query context share one
        // max_llm_calls budget: the second scan gets only what the first
        // left over.
        for parallelism in [1, 4] {
            let mut ctx = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
            ctx.config.parallelism = parallelism;
            ctx.config.max_llm_calls = 4;
            let p = parts(None, None);
            let first = llm_scan(&ctx, &p.spec()).unwrap();
            // 5 rows at page size 2: the relation needs 3 calls to drain.
            assert_eq!(first.len(), 5, "parallelism {parallelism}");
            let second = llm_scan(&ctx, &p.spec()).unwrap();
            assert!(
                second.len() <= 2,
                "parallelism {parallelism}: second scan exceeded the shared budget"
            );
            assert!(ctx.metrics.snapshot().llm_calls() <= 4);
        }
    }

    #[test]
    fn table_scan_applies_filter_locally() {
        let catalog = Catalog::new();
        let schema = Schema::new(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        );
        let table = catalog.create_table(schema).unwrap();
        table.insert_many(world_rows()).unwrap();
        let ctx = ExecContext::new(catalog, None, EngineConfig::default());
        let p = parts(Some(gt_filter(60)), None);
        let rows = table_scan(&ctx, &p.spec(), &table).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(ctx.metrics.snapshot().rows_from_store, 3);
    }

    fn hybrid_fixture() -> (ExecContext, Table) {
        let catalog = Catalog::new();
        let schema = Schema::new(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        );
        let table = catalog.create_table(schema).unwrap();
        table
            .insert_many(vec![
                Row::new(vec!["France".into(), "Europe".into(), Value::Null]),
                Row::new(vec!["Japan".into(), Value::Null, Value::Int(125)]),
            ])
            .unwrap();

        let mut kb = KnowledgeBase::new();
        kb.add_table(country_schema(), world_rows());
        let client = LlmClient::new(Arc::new(SimLlm::new(
            kb.into_shared(),
            LlmFidelity::perfect(),
            3,
        )));
        let ctx = ExecContext::new(
            catalog,
            Some(client),
            EngineConfig::default().with_mode(ExecutionMode::Hybrid),
        );
        (ctx, table)
    }

    #[test]
    fn hybrid_scan_fills_nulls() {
        // Store with some NULL populations; the model knows the truth.
        let (ctx, table) = hybrid_fixture();
        let p = parts(None, None);
        let rows = hybrid_scan(&ctx, &p.spec(), &table).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(2), &Value::Int(68));
        assert_eq!(rows[1].get(1), &Value::Text("Asia".into()));
        let m = ctx.metrics.snapshot();
        assert_eq!(m.cells_filled_by_llm, 2);
        assert_eq!(m.llm_calls_by_kind["lookup"], 2);
    }

    #[test]
    fn hybrid_scan_stops_filling_at_row_budget() {
        // Regression: a pushed LIMIT must stop fill lookups exactly where a
        // sequential row-at-a-time scan would — planning fills for rows past
        // the budget pays for calls that are never needed.
        for parallelism in [1, 8] {
            let (mut ctx, table) = hybrid_fixture();
            ctx.config.parallelism = parallelism;
            let mut p = parts(None, None);
            // Both stored rows have a missing cell, but only the first is
            // within the budget.
            p.pushed_limit = Some(1);
            let rows = hybrid_scan(&ctx, &p.spec(), &table).unwrap();
            assert_eq!(rows.len(), 1);
            assert_eq!(
                ctx.metrics.snapshot().llm_calls(),
                1,
                "parallelism {parallelism} issued lookups past the row budget"
            );
        }
    }

    #[test]
    fn hybrid_scan_parallel_matches_sequential() {
        let (seq_ctx, seq_table) = hybrid_fixture();
        let p = parts(None, None);
        let expected = hybrid_scan(&seq_ctx, &p.spec(), &seq_table).unwrap();

        let (mut par_ctx, par_table) = hybrid_fixture();
        par_ctx.config.parallelism = 4;
        let got = hybrid_scan(&par_ctx, &p.spec(), &par_table).unwrap();
        assert_eq!(expected, got);
        assert_eq!(
            seq_ctx.metrics.snapshot().llm_calls(),
            par_ctx.metrics.snapshot().llm_calls()
        );
    }

    #[test]
    fn weak_model_loses_rows() {
        let ctx = context(PromptStrategy::BatchedRows, LlmFidelity::weak());
        let rows = llm_scan(&ctx, &parts(None, None).spec()).unwrap();
        // The weak model forgets entities and mangles lines: strictly fewer
        // than or equal to the real 5, and deterministic for the seed.
        assert!(rows.len() <= 5);
        let ctx2 = context(PromptStrategy::BatchedRows, LlmFidelity::weak());
        let rows2 = llm_scan(&ctx2, &parts(None, None).spec()).unwrap();
        assert_eq!(rows.len(), rows2.len());
    }

    #[test]
    fn parallel_scans_match_sequential_for_all_strategies() {
        for strategy in [
            PromptStrategy::BatchedRows,
            PromptStrategy::TupleAtATime,
            PromptStrategy::DecomposedOperators,
        ] {
            for fidelity in [LlmFidelity::perfect(), LlmFidelity::medium()] {
                let p = parts(Some(gt_filter(40)), None);
                let seq_ctx = context(strategy, fidelity);
                let expected = llm_scan(&seq_ctx, &p.spec()).unwrap();
                for parallelism in [2, 4, 8] {
                    let mut ctx = context(strategy, fidelity);
                    ctx.config.parallelism = parallelism;
                    let got = llm_scan(&ctx, &p.spec()).unwrap();
                    assert_eq!(
                        expected, got,
                        "{strategy:?} diverged at parallelism {parallelism}"
                    );
                    assert!(ctx.metrics.snapshot().peak_in_flight >= 1);
                }
            }
        }
    }
}
