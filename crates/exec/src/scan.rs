//! Scan operators: the point where the engine touches storage.
//!
//! Three physical scans exist for one logical `Scan` node:
//!
//! * [`table_scan`] — read a materialized table from `llmsql-store`
//!   (Traditional mode, and the ground-truth oracle).
//! * [`llm_scan`] — materialize a *virtual* relation by prompting the model;
//!   how exactly depends on the [`PromptStrategy`].
//! * [`hybrid_scan`] — read the materialized (but incomplete) table and fill
//!   NULL cells by prompting the model for the missing attribute values.

use llmsql_llm::prompt::TaskSpec;
use llmsql_llm::{parse_pipe_rows, parse_value_lines, parse_yes_no, CompletionRequest, YesNoAnswer};
use llmsql_plan::BoundExpr;
use llmsql_store::Table;
use llmsql_types::{DataType, PromptStrategy, Result, Row, Schema, Value};

use crate::context::ExecContext;
use crate::eval::eval_predicate;

/// Parameters of a scan, extracted from the logical plan node.
#[derive(Debug, Clone)]
pub struct ScanSpec {
    /// Catalog table name.
    pub table: String,
    /// Base-table schema.
    pub table_schema: Schema,
    /// Filter over the base columns (pushed down by the optimizer).
    pub pushed_filter: Option<BoundExpr>,
    /// Base columns that must be fetched (`None` = all).
    pub prompt_columns: Option<Vec<usize>>,
    /// Row cap pushed from a LIMIT.
    pub pushed_limit: Option<usize>,
}

impl ScanSpec {
    /// The columns the scan must actually obtain values for.
    fn needed_columns(&self) -> Vec<usize> {
        match &self.prompt_columns {
            Some(cols) => cols.clone(),
            None => (0..self.table_schema.arity()).collect(),
        }
    }

    /// The per-scan row budget.
    fn row_budget(&self, ctx: &ExecContext) -> usize {
        self.pushed_limit
            .unwrap_or(usize::MAX)
            .min(ctx.config.max_scan_rows)
    }

    /// Render the pushed filter as SQL text for the prompt, if any (and if the
    /// engine is allowed to push predicates into prompts).
    fn prompt_filter(&self, ctx: &ExecContext) -> Option<String> {
        if !ctx.config.enable_predicate_pushdown {
            return None;
        }
        self.pushed_filter
            .as_ref()
            .and_then(|f| f.to_sql_text().ok())
    }

    /// The column names to request from the model (respecting projection
    /// pruning configuration).
    fn prompt_column_names(&self, ctx: &ExecContext) -> (Vec<usize>, Vec<String>, Vec<DataType>) {
        let indices = if ctx.config.enable_projection_pruning {
            self.needed_columns()
        } else {
            (0..self.table_schema.arity()).collect()
        };
        let names = indices
            .iter()
            .map(|&i| self.table_schema.columns[i].name.clone())
            .collect();
        let types = indices
            .iter()
            .map(|&i| self.table_schema.columns[i].data_type)
            .collect();
        (indices, names, types)
    }
}

// ---------------------------------------------------------------------------
// Traditional scan
// ---------------------------------------------------------------------------

/// Scan a materialized table, applying the pushed filter locally.
pub fn table_scan(ctx: &ExecContext, spec: &ScanSpec, table: &Table) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    let budget = spec.row_budget(ctx);
    for row in table.scan() {
        if let Some(filter) = &spec.pushed_filter {
            if eval_predicate(filter, &row)? != Some(true) {
                continue;
            }
        }
        rows.push(row);
        if rows.len() >= budget {
            break;
        }
    }
    ctx.metrics.update(|m| m.rows_from_store += rows.len() as u64);
    Ok(rows)
}

// ---------------------------------------------------------------------------
// LLM scan
// ---------------------------------------------------------------------------

/// Materialize a virtual relation by prompting the model.
pub fn llm_scan(ctx: &ExecContext, spec: &ScanSpec) -> Result<Vec<Row>> {
    let strategy = ctx.config.strategy;
    let rows = match strategy {
        PromptStrategy::TupleAtATime => llm_scan_tuple_at_a_time(ctx, spec, true)?,
        PromptStrategy::DecomposedOperators => llm_scan_decomposed(ctx, spec)?,
        // FullQuery is handled at the engine level; if a scan still ends up
        // here (e.g. a mixed plan), fall back to batched pagination.
        PromptStrategy::BatchedRows | PromptStrategy::FullQuery => {
            llm_scan_batched(ctx, spec)?
        }
    };
    ctx.metrics.update(|m| m.rows_from_llm += rows.len() as u64);
    Ok(rows)
}

/// Page through the relation with `RowBatch` prompts.
fn llm_scan_batched(ctx: &ExecContext, spec: &ScanSpec) -> Result<Vec<Row>> {
    let client = ctx.require_client()?;
    let (indices, names, types) = spec.prompt_column_names(ctx);
    let filter = spec.prompt_filter(ctx);
    let budget = spec.row_budget(ctx);
    let page = ctx.config.batch_size.max(1);

    let mut rows: Vec<Row> = Vec::new();
    let mut offset = 0usize;
    let mut calls = 0usize;
    while rows.len() < budget && calls < ctx.config.max_llm_calls {
        let want = page.min(budget - rows.len());
        let task = TaskSpec::RowBatch {
            table: spec.table.clone(),
            columns: names.clone(),
            filter: filter.clone(),
            limit: want,
            offset,
        };
        let prompt = task.to_prompt(Some(&spec.table_schema));
        ctx.metrics.update(|m| m.record_llm_call(task.kind()));
        let response = client.complete(&CompletionRequest::new(prompt))?;
        calls += 1;
        let parsed = parse_pipe_rows(&response.text, &types);
        ctx.metrics
            .update(|m| m.dropped_lines += parsed.dropped_lines as u64);
        // Lines the model produced for this page, whether or not they parsed:
        // the relation is only exhausted when the model had fewer rows to say
        // than we asked for, not when some lines were malformed.
        let got_lines = parsed.rows.len() + parsed.dropped_lines;
        for partial in parsed.rows {
            rows.push(widen_row(&indices, partial, spec.table_schema.arity()));
            if rows.len() >= budget {
                break;
            }
        }
        if got_lines < want {
            break;
        }
        offset += got_lines;
    }
    if !ctx.config.enable_predicate_pushdown {
        apply_local_filter(ctx, spec, &mut rows)?;
    }
    Ok(rows)
}

/// Enumerate keys, then one `Lookup` prompt per entity.
fn llm_scan_tuple_at_a_time(
    ctx: &ExecContext,
    spec: &ScanSpec,
    push_filter_into_enumeration: bool,
) -> Result<Vec<Row>> {
    let client = ctx.require_client()?;
    let (indices, names, _types) = spec.prompt_column_names(ctx);
    let budget = spec.row_budget(ctx);
    let key_idx = spec
        .table_schema
        .columns
        .iter()
        .position(|c| c.primary_key)
        .unwrap_or(0);
    let key_name = spec.table_schema.columns[key_idx].name.clone();
    let key_type = spec.table_schema.columns[key_idx].data_type;

    // 1. Enumerate entity keys.
    let filter = if push_filter_into_enumeration {
        spec.prompt_filter(ctx)
    } else {
        None
    };
    let enumerate = TaskSpec::Enumerate {
        table: spec.table.clone(),
        filter,
        limit: budget,
        offset: 0,
    };
    ctx.metrics.update(|m| m.record_llm_call(enumerate.kind()));
    let response = client.complete(&CompletionRequest::new(
        enumerate.to_prompt(Some(&spec.table_schema)),
    ))?;
    let keys = parse_value_lines(&response.text, key_type);
    ctx.metrics
        .update(|m| m.dropped_lines += keys.dropped_lines as u64);

    // 2. One lookup per entity for the remaining columns.
    let other_names: Vec<String> = names.iter().filter(|n| **n != key_name).cloned().collect();
    let other_types: Vec<DataType> = indices
        .iter()
        .zip(&names)
        .filter(|(_, n)| **n != key_name)
        .map(|(&i, _)| spec.table_schema.columns[i].data_type)
        .collect();

    let mut rows = Vec::new();
    for key_row in keys.rows.into_iter().take(budget) {
        if ctx.metrics.snapshot().llm_calls() as usize >= ctx.config.max_llm_calls {
            break;
        }
        let key = key_row.get(0).clone();
        let mut full = vec![Value::Null; spec.table_schema.arity()];
        full[key_idx] = key.clone();
        if !other_names.is_empty() {
            let lookup = TaskSpec::Lookup {
                table: spec.table.clone(),
                key: key.to_display_string(),
                columns: other_names.clone(),
            };
            ctx.metrics.update(|m| m.record_llm_call(lookup.kind()));
            let response = client.complete(&CompletionRequest::new(
                lookup.to_prompt(Some(&spec.table_schema)),
            ))?;
            let parsed = parse_pipe_rows(&response.text, &other_types);
            ctx.metrics
                .update(|m| m.dropped_lines += parsed.dropped_lines as u64);
            if let Some(values) = parsed.rows.into_iter().next() {
                let mut vi = 0;
                for (&idx, name) in indices.iter().zip(&names) {
                    if *name == key_name {
                        continue;
                    }
                    full[idx] = values.get(vi).clone();
                    vi += 1;
                }
            }
        }
        rows.push(Row::new(full));
    }

    // The per-tuple strategy re-checks the predicate locally: it has the
    // attribute values in hand, so it does not need to trust the model's
    // filtering.
    apply_local_filter(ctx, spec, &mut rows)?;
    Ok(rows)
}

/// Decomposed-operator strategy: enumerate + lookups *without* pushing the
/// predicate, then a `FilterCheck` prompt per candidate row.
fn llm_scan_decomposed(ctx: &ExecContext, spec: &ScanSpec) -> Result<Vec<Row>> {
    let client = ctx.require_client()?;
    // Materialize without the filter so the filter becomes its own operator.
    let unfiltered_spec = ScanSpec {
        pushed_filter: None,
        ..spec.clone()
    };
    let rows = llm_scan_tuple_at_a_time(ctx, &unfiltered_spec, false)?;
    let Some(filter) = &spec.pushed_filter else {
        return Ok(rows);
    };
    let Ok(condition) = filter.to_sql_text() else {
        // Not renderable (should not happen) — fall back to local evaluation.
        let mut rows = rows;
        apply_local_filter(ctx, spec, &mut rows)?;
        return Ok(rows);
    };
    let key_idx = spec
        .table_schema
        .columns
        .iter()
        .position(|c| c.primary_key)
        .unwrap_or(0);
    let mut kept = Vec::new();
    for row in rows {
        if ctx.metrics.snapshot().llm_calls() as usize >= ctx.config.max_llm_calls {
            break;
        }
        let task = TaskSpec::FilterCheck {
            table: spec.table.clone(),
            key: row.get(key_idx).to_display_string(),
            condition: condition.clone(),
        };
        ctx.metrics.update(|m| m.record_llm_call(task.kind()));
        let response = client.complete(&CompletionRequest::new(
            task.to_prompt(Some(&spec.table_schema)),
        ))?;
        if parse_yes_no(&response.text) == YesNoAnswer::Yes {
            kept.push(row);
        }
    }
    Ok(kept)
}

// ---------------------------------------------------------------------------
// Hybrid scan
// ---------------------------------------------------------------------------

/// Read a materialized (incomplete) table and fill NULL cells in the needed
/// columns by asking the model.
pub fn hybrid_scan(ctx: &ExecContext, spec: &ScanSpec, table: &Table) -> Result<Vec<Row>> {
    let client = ctx.require_client()?;
    let (indices, _names, _types) = spec.prompt_column_names(ctx);
    let key_idx = spec
        .table_schema
        .columns
        .iter()
        .position(|c| c.primary_key)
        .unwrap_or(0);
    let budget = spec.row_budget(ctx);

    let mut rows = Vec::new();
    for mut row in table.scan() {
        // Which needed cells are missing?
        let missing: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| row.get(i).is_null() && i != key_idx)
            .collect();
        let calls_so_far = ctx.metrics.snapshot().llm_calls() as usize;
        if !missing.is_empty() && calls_so_far < ctx.config.max_llm_calls {
            let columns: Vec<String> = missing
                .iter()
                .map(|&i| spec.table_schema.columns[i].name.clone())
                .collect();
            let types: Vec<DataType> = missing
                .iter()
                .map(|&i| spec.table_schema.columns[i].data_type)
                .collect();
            let task = TaskSpec::Lookup {
                table: spec.table.clone(),
                key: row.get(key_idx).to_display_string(),
                columns,
            };
            ctx.metrics.update(|m| m.record_llm_call(task.kind()));
            let response = client.complete(&CompletionRequest::new(
                task.to_prompt(Some(&spec.table_schema)),
            ))?;
            let parsed = parse_pipe_rows(&response.text, &types);
            ctx.metrics
                .update(|m| m.dropped_lines += parsed.dropped_lines as u64);
            if let Some(values) = parsed.rows.into_iter().next() {
                for (vi, &col) in missing.iter().enumerate() {
                    let v = values.get(vi).clone();
                    if !v.is_null() {
                        row.set(col, v);
                        ctx.metrics.update(|m| m.cells_filled_by_llm += 1);
                    }
                }
            }
        }
        if let Some(filter) = &spec.pushed_filter {
            if eval_predicate(filter, &row)? != Some(true) {
                continue;
            }
        }
        rows.push(row);
        if rows.len() >= budget {
            break;
        }
    }
    ctx.metrics.update(|m| m.rows_from_store += rows.len() as u64);
    Ok(rows)
}

// ---------------------------------------------------------------------------

/// Expand a row containing only the prompt columns into the full base arity,
/// filling non-requested columns with NULL.
fn widen_row(indices: &[usize], partial: Row, arity: usize) -> Row {
    let mut full = vec![Value::Null; arity];
    for (vi, &idx) in indices.iter().enumerate() {
        full[idx] = partial.get(vi).clone();
    }
    Row::new(full)
}

/// Apply the pushed filter locally (rows with missing evidence are kept out
/// only when the predicate definitively fails — NULL-tolerant).
fn apply_local_filter(ctx: &ExecContext, spec: &ScanSpec, rows: &mut Vec<Row>) -> Result<()> {
    let _ = ctx;
    if let Some(filter) = &spec.pushed_filter {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows.drain(..) {
            if eval_predicate(filter, &row)? == Some(true) {
                out.push(row);
            }
        }
        *rows = out;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_llm::{KnowledgeBase, LlmClient, SimLlm};
    use llmsql_store::Catalog;
    use llmsql_types::{Column, EngineConfig, ExecutionMode, LlmFidelity};
    use std::sync::Arc;

    fn country_schema() -> Schema {
        Schema::virtual_table(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        )
    }

    fn world_rows() -> Vec<Row> {
        [
            ("France", "Europe", 68),
            ("Germany", "Europe", 84),
            ("Japan", "Asia", 125),
            ("Peru", "Americas", 34),
            ("Kenya", "Africa", 54),
        ]
        .iter()
        .map(|(n, r, p)| Row::new(vec![(*n).into(), (*r).into(), Value::Int(*p)]))
        .collect()
    }

    fn context(strategy: PromptStrategy, fidelity: LlmFidelity) -> ExecContext {
        let mut kb = KnowledgeBase::new();
        kb.add_table(country_schema(), world_rows());
        let sim = SimLlm::new(kb.into_shared(), fidelity, 7);
        let client = LlmClient::new(Arc::new(sim));
        let catalog = Catalog::new();
        catalog.create_virtual_table(country_schema()).unwrap();
        let config = EngineConfig::default()
            .with_mode(ExecutionMode::LlmOnly)
            .with_strategy(strategy)
            .with_batch_size(2);
        ExecContext::new(catalog, Some(client), config)
    }

    fn spec(filter: Option<BoundExpr>, prompt_columns: Option<Vec<usize>>) -> ScanSpec {
        ScanSpec {
            table: "countries".into(),
            table_schema: country_schema(),
            pushed_filter: filter,
            prompt_columns,
            pushed_limit: None,
        }
    }

    fn gt_filter(population: i64) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(BoundExpr::col(2, "population", DataType::Int)),
            op: llmsql_sql::ast::BinaryOp::Gt,
            right: Box::new(BoundExpr::lit(population)),
        }
    }

    #[test]
    fn batched_scan_pages_through_table() {
        let ctx = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        let rows = llm_scan(&ctx, &spec(None, None)).unwrap();
        assert_eq!(rows.len(), 5);
        let m = ctx.metrics.snapshot();
        // page size 2 over 5 rows: at least 3 calls
        assert!(m.llm_calls_by_kind["row_batch"] >= 3);
        assert_eq!(m.rows_from_llm, 5);
    }

    #[test]
    fn batched_scan_with_filter_and_pruning() {
        let ctx = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        let rows = llm_scan(&ctx, &spec(Some(gt_filter(60)), Some(vec![0, 2]))).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // pruned column (region) is NULL
            assert!(r.get(1).is_null());
            assert!(r.get(2).as_int().unwrap() > 60);
        }
    }

    #[test]
    fn tuple_strategy_issues_lookup_per_row() {
        let ctx = context(PromptStrategy::TupleAtATime, LlmFidelity::perfect());
        let rows = llm_scan(&ctx, &spec(Some(gt_filter(60)), None)).unwrap();
        assert_eq!(rows.len(), 3);
        let m = ctx.metrics.snapshot();
        assert_eq!(m.llm_calls_by_kind["enumerate"], 1);
        assert!(m.llm_calls_by_kind["lookup"] >= 3);
    }

    #[test]
    fn decomposed_strategy_uses_filter_checks() {
        let ctx = context(PromptStrategy::DecomposedOperators, LlmFidelity::perfect());
        let rows = llm_scan(&ctx, &spec(Some(gt_filter(60)), None)).unwrap();
        assert_eq!(rows.len(), 3);
        let m = ctx.metrics.snapshot();
        assert_eq!(m.llm_calls_by_kind["filter_check"], 5);
    }

    #[test]
    fn pushed_limit_caps_rows_and_calls() {
        let ctx = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        let mut s = spec(None, None);
        s.pushed_limit = Some(2);
        let rows = llm_scan(&ctx, &s).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(ctx.metrics.snapshot().llm_calls(), 1);
    }

    #[test]
    fn max_scan_rows_is_respected() {
        let mut ctx = context(PromptStrategy::BatchedRows, LlmFidelity::perfect());
        ctx.config.max_scan_rows = 3;
        let rows = llm_scan(&ctx, &spec(None, None)).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn table_scan_applies_filter_locally() {
        let catalog = Catalog::new();
        let schema = Schema::new(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        );
        let table = catalog.create_table(schema).unwrap();
        table.insert_many(world_rows()).unwrap();
        let ctx = ExecContext::new(catalog, None, EngineConfig::default());
        let rows = table_scan(&ctx, &spec(Some(gt_filter(60)), None), &table).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(ctx.metrics.snapshot().rows_from_store, 3);
    }

    #[test]
    fn hybrid_scan_fills_nulls() {
        // Store with some NULL populations; the model knows the truth.
        let catalog = Catalog::new();
        let schema = Schema::new(
            "countries",
            vec![
                Column::new("name", DataType::Text).primary_key(),
                Column::new("region", DataType::Text),
                Column::new("population", DataType::Int),
            ],
        );
        let table = catalog.create_table(schema).unwrap();
        table
            .insert_many(vec![
                Row::new(vec!["France".into(), "Europe".into(), Value::Null]),
                Row::new(vec!["Japan".into(), Value::Null, Value::Int(125)]),
            ])
            .unwrap();

        let mut kb = KnowledgeBase::new();
        kb.add_table(country_schema(), world_rows());
        let client = LlmClient::new(Arc::new(SimLlm::new(
            kb.into_shared(),
            LlmFidelity::perfect(),
            3,
        )));
        let ctx = ExecContext::new(
            catalog,
            Some(client),
            EngineConfig::default().with_mode(ExecutionMode::Hybrid),
        );
        let rows = hybrid_scan(&ctx, &spec(None, None), &table).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(2), &Value::Int(68));
        assert_eq!(rows[1].get(1), &Value::Text("Asia".into()));
        let m = ctx.metrics.snapshot();
        assert_eq!(m.cells_filled_by_llm, 2);
        assert_eq!(m.llm_calls_by_kind["lookup"], 2);
    }

    #[test]
    fn weak_model_loses_rows() {
        let ctx = context(PromptStrategy::BatchedRows, LlmFidelity::weak());
        let rows = llm_scan(&ctx, &spec(None, None)).unwrap();
        // The weak model forgets entities and mangles lines: strictly fewer
        // than or equal to the real 5, and deterministic for the seed.
        assert!(rows.len() <= 5);
        let ctx2 = context(PromptStrategy::BatchedRows, LlmFidelity::weak());
        let rows2 = llm_scan(&ctx2, &spec(None, None)).unwrap();
        assert_eq!(rows.len(), rows2.len());
    }
}
