//! Execution context shared by all operators of one query.

use std::sync::Arc;
use std::time::Instant;

use llmsql_llm::{BackendStats, LlmClient};
use llmsql_store::Catalog;
use llmsql_types::{EngineConfig, Error, Result};

use crate::metrics::SharedMetrics;
use crate::reactor::SharedReactor;
use crate::slots::{CallSlots, SlotGuard};

/// Everything an operator needs: the catalog, the (optional) LLM client, the
/// engine configuration and the metrics sink.
#[derive(Clone)]
pub struct ExecContext {
    /// The catalog resolving table names to stored tables / virtual schemas.
    pub catalog: Catalog,
    /// The language-model client; `None` in pure traditional deployments.
    pub client: Option<LlmClient>,
    /// Engine configuration (mode, strategy, batch size, caps).
    pub config: EngineConfig,
    /// Metrics sink.
    pub metrics: SharedMetrics,
    /// Per-backend counters at context creation: the client (and its pool)
    /// outlive a single query, so this query's contribution is the delta
    /// against this snapshot (see [`ExecContext::sync_backend_metrics`]).
    backend_baseline: Vec<BackendStats>,
    /// Global LLM-call slot pool (cross-query admission). `None` outside a
    /// scheduler: dispatch is bounded only by this query's `parallelism`.
    slots: Option<Arc<CallSlots>>,
    /// Deployment-shared dispatch reactor. When set, waves from this query
    /// are submitted to the shared event loop (where completions from other
    /// queries interleave) instead of a per-wave private loop. `None` outside
    /// a scheduler.
    reactor: Option<Arc<SharedReactor>>,
    /// When this query started executing — the anchor for
    /// `EngineConfig::deadline_ms` (see [`ExecContext::check_deadline`]).
    started: Instant,
}

impl ExecContext {
    /// Create a context.
    pub fn new(catalog: Catalog, client: Option<LlmClient>, config: EngineConfig) -> Self {
        let backend_baseline = client
            .as_ref()
            .and_then(llmsql_llm::LlmClient::backend_stats)
            .unwrap_or_default();
        ExecContext {
            catalog,
            client,
            config,
            metrics: SharedMetrics::new(),
            backend_baseline,
            slots: None,
            reactor: None,
            started: Instant::now(),
        }
    }

    /// Fail the query once its deadline has passed. Scans call this between
    /// dispatch waves, so a straggling wave is the most a late query still
    /// pays for. The error carries the partial accounting at the moment of
    /// failure: elapsed wall time and logical LLM calls already issued.
    pub fn check_deadline(&self) -> Result<()> {
        let Some(deadline_ms) = self.config.deadline_ms else {
            return Ok(());
        };
        let elapsed_ms = self.started.elapsed().as_secs_f64() * 1000.0;
        if elapsed_ms > deadline_ms {
            return Err(self.deadline_error());
        }
        Ok(())
    }

    /// The structured `DeadlineExceeded` error with this query's partial
    /// accounting (elapsed wall time, logical calls issued so far). Used by
    /// [`ExecContext::check_deadline`] between waves and by the reactor path
    /// when the deadline fires while calls are parked mid-wave.
    pub fn deadline_error(&self) -> Error {
        let deadline_ms = self.config.deadline_ms.unwrap_or(0.0);
        let elapsed_ms = self.started.elapsed().as_secs_f64() * 1000.0;
        let calls = self.metrics.llm_call_count();
        Error::deadline_exceeded(format!(
            "query exceeded its {deadline_ms:.0}ms deadline after {elapsed_ms:.1}ms \
             with {calls} LLM call(s) issued"
        ))
    }

    /// The wall-clock instant at which this query's deadline fires, if one
    /// is configured — the abort signal handed to the dispatch reactor so a
    /// worker parked on in-flight calls still honours the deadline mid-wave.
    pub fn deadline_instant(&self) -> Option<std::time::Instant> {
        self.config
            .deadline_ms
            .map(|ms| self.started + std::time::Duration::from_secs_f64(ms.max(0.0) / 1000.0))
    }

    /// Builder-style: throttle this query's LLM dispatch through a shared
    /// [`CallSlots`] pool (see the [`crate::slots`] module docs for the
    /// contract). Wave planning is unaffected — only dispatch timing is.
    pub fn with_slots(mut self, slots: Arc<CallSlots>) -> Self {
        self.slots = Some(slots);
        self
    }

    /// The attached global slot pool, if any (the reactor path acquires
    /// non-blockingly through it instead of via [`ExecContext::acquire_slot`]).
    pub(crate) fn slots(&self) -> Option<&Arc<CallSlots>> {
        self.slots.as_ref()
    }

    /// Builder-style: dispatch this query's waves on a deployment-shared
    /// [`SharedReactor`] instead of a private per-wave event loop. Wave
    /// planning, results and logical call accounting are unaffected — only
    /// *where* the in-flight completions are parked changes.
    pub fn with_reactor(mut self, reactor: Arc<SharedReactor>) -> Self {
        self.reactor = Some(reactor);
        self
    }

    /// The attached shared reactor, if any.
    pub(crate) fn reactor(&self) -> Option<&Arc<SharedReactor>> {
        self.reactor.as_ref()
    }

    /// Acquire a global call slot before dispatching one model request,
    /// recording the blocked time in [`crate::ExecMetrics::slot_wait_ms`].
    /// Returns `None` (no throttling) when no pool is attached.
    pub fn acquire_slot(&self) -> Option<SlotGuard<'_>> {
        let slots = self.slots.as_deref()?;
        let (guard, waited_ms) = slots.acquire();
        self.metrics.update(|m| {
            m.slot_waits += 1;
            m.slot_wait_ms += waited_ms;
        });
        Some(guard)
    }

    /// Copy this query's per-backend physical-call counters (the delta since
    /// context creation) into [`crate::ExecMetrics`]. Called once at the end
    /// of plan execution; callers driving scans directly can invoke it
    /// manually before snapshotting metrics.
    pub fn sync_backend_metrics(&self) {
        let Some(stats) = self
            .client
            .as_ref()
            .and_then(llmsql_llm::LlmClient::backend_stats)
        else {
            return;
        };
        self.metrics.update(|m| {
            m.hedges_issued = 0;
            m.hedges_won = 0;
            for current in &stats {
                let base = self
                    .backend_baseline
                    .iter()
                    .find(|b| b.id == current.id)
                    .cloned()
                    .unwrap_or_default();
                m.backend_calls
                    .insert(current.id.clone(), current.calls.saturating_sub(base.calls));
                m.backend_errors.insert(
                    current.id.clone(),
                    current.errors.saturating_sub(base.errors),
                );
                m.backend_latency_ms.insert(
                    current.id.clone(),
                    (current.latency_ms - base.latency_ms).max(0.0),
                );
                m.hedges_issued += current.hedges.saturating_sub(base.hedges);
                m.hedges_won += current.hedges_won.saturating_sub(base.hedges_won);
            }
        });
    }

    /// The LLM client, or an error explaining that the query needs one.
    pub fn require_client(&self) -> Result<&LlmClient> {
        self.client.as_ref().ok_or_else(|| {
            Error::execution(
                "this query needs the language-model storage layer but no model is configured",
            )
        })
    }

    /// The scan-concurrency knob: how many LLM requests one scan may keep in
    /// flight at a time (never zero).
    pub fn scan_fanout(&self) -> usize {
        self.config.parallelism.max(1)
    }
}
