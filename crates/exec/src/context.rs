//! Execution context shared by all operators of one query.

use llmsql_llm::LlmClient;
use llmsql_store::Catalog;
use llmsql_types::{EngineConfig, Error, Result};

use crate::metrics::SharedMetrics;

/// Everything an operator needs: the catalog, the (optional) LLM client, the
/// engine configuration and the metrics sink.
#[derive(Clone)]
pub struct ExecContext {
    /// The catalog resolving table names to stored tables / virtual schemas.
    pub catalog: Catalog,
    /// The language-model client; `None` in pure traditional deployments.
    pub client: Option<LlmClient>,
    /// Engine configuration (mode, strategy, batch size, caps).
    pub config: EngineConfig,
    /// Metrics sink.
    pub metrics: SharedMetrics,
}

impl ExecContext {
    /// Create a context.
    pub fn new(catalog: Catalog, client: Option<LlmClient>, config: EngineConfig) -> Self {
        ExecContext {
            catalog,
            client,
            config,
            metrics: SharedMetrics::new(),
        }
    }

    /// The LLM client, or an error explaining that the query needs one.
    pub fn require_client(&self) -> Result<&LlmClient> {
        self.client.as_ref().ok_or_else(|| {
            Error::execution(
                "this query needs the language-model storage layer but no model is configured",
            )
        })
    }

    /// The scan-concurrency knob: how many LLM requests one scan may keep in
    /// flight at a time (never zero).
    pub fn scan_fanout(&self) -> usize {
        self.config.parallelism.max(1)
    }
}
