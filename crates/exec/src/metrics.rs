//! Execution metrics collected while a query runs.
//!
//! Counter updates funnel through [`SharedMetrics`], which operators on any
//! worker thread can clone and update concurrently. In-flight request
//! tracking is lock-free (`AtomicU64`) so it can sit directly on the LLM
//! dispatch hot path.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use llmsql_types::Incomplete;
use parking_lot::Mutex;

/// Actuals for one executed plan node, reported by `EXPLAIN ANALYZE`.
///
/// `llm_calls` and `wall_ms` are *inclusive* of the node's children (the
/// executor recurses operator-at-a-time, so a parent's interval covers its
/// subtree); `rows_out` is the node's own output.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpStats {
    /// Rows this operator emitted.
    pub rows_out: u64,
    /// LLM calls issued while this operator (and its subtree) ran.
    pub llm_calls: u64,
    /// Wall-clock time this operator (and its subtree) took, milliseconds.
    pub wall_ms: f64,
}

/// Metrics for one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecMetrics {
    /// Rows read from materialized tables.
    pub rows_from_store: u64,
    /// Rows materialized from LLM completions.
    pub rows_from_llm: u64,
    /// Rows emitted by the root operator.
    pub rows_output: u64,
    /// Completion lines the tolerant parsers had to drop.
    pub dropped_lines: u64,
    /// NULL cells filled from the model by hybrid scans.
    pub cells_filled_by_llm: u64,
    /// Highest number of LLM requests that were in flight at the same time
    /// (1 under sequential dispatch, up to `EngineConfig::parallelism` under
    /// concurrent dispatch).
    pub peak_in_flight: u64,
    /// Dispatches that went through a shared cross-query slot pool.
    pub slot_waits: u64,
    /// Hedged requests issued on this query's behalf: duplicates of a late
    /// in-flight request sent to a sibling backend. Hedges are physical
    /// attempts — they never consume the logical call budget
    /// (`max_llm_calls`), like retries — but each held a call slot while in
    /// flight.
    pub hedges_issued: u64,
    /// Hedges whose response beat the late primary (each one shaved the
    /// difference off this query's tail latency).
    pub hedges_won: u64,
    /// Logical calls served by deployment-scope coalescing: an identical
    /// request (possibly from another query on the shared reactor) was
    /// already in flight, and its successful response fanned out here. These
    /// calls are counted in `llm_calls_by_kind` like any other — the logical
    /// budget is charged — but issued zero physical requests.
    pub coalesced_calls: u64,
    /// Per-tuple prompts that rode a packed composite request (tuple
    /// batching, `EngineConfig::batch_rows_per_call`): each counts one
    /// logical call but shared a single physical request with its chunk
    /// neighbours. Single-member chunks are not counted.
    pub batched_rows: u64,
    /// Total time this query's workers spent blocked waiting for a global
    /// LLM-call slot, milliseconds (0 outside a scheduler). High values mean
    /// the deployment's slot pool, not this query's parallelism, is the
    /// bottleneck.
    pub slot_wait_ms: f64,
    /// LLM prompts issued, by task kind ("row_batch", "lookup", ...).
    pub llm_calls_by_kind: BTreeMap<String, u64>,
    /// Physical attempts per backend (multi-backend deployments only;
    /// includes failed attempts and retries, so the sum can exceed
    /// [`ExecMetrics::llm_calls`], which counts *logical* prompts).
    pub backend_calls: BTreeMap<String, u64>,
    /// Failed attempts per backend.
    pub backend_errors: BTreeMap<String, u64>,
    /// Reported completion latency accumulated per backend, milliseconds.
    pub backend_latency_ms: BTreeMap<String, f64>,
    /// Plan nodes executed, by operator name.
    pub operators: BTreeMap<String, u64>,
    /// Per-operator actuals, keyed by the node's pre-order path (`"0"` =
    /// root, `"0.1"` = its second child — the same scheme the static cost
    /// model uses, so `EXPLAIN ANALYZE` can join estimates to actuals).
    pub op_stats: BTreeMap<String, OpStats>,
    /// Set when graceful degradation cut this query short
    /// (`EngineConfig::with_partial_results`): the rows produced are an
    /// exact page-aligned prefix of the full result, and this marker carries
    /// the triggering fault plus the accounting at the moment of the cut.
    /// `None` = the result is complete.
    pub incomplete: Option<Incomplete>,
}

impl ExecMetrics {
    /// Total LLM prompts issued (all kinds).
    pub fn llm_calls(&self) -> u64 {
        self.llm_calls_by_kind.values().sum()
    }

    /// Record one LLM prompt of the given kind.
    pub fn record_llm_call(&mut self, kind: &str) {
        *self.llm_calls_by_kind.entry(kind.to_string()).or_default() += 1;
    }

    /// Record an executed operator.
    pub fn record_operator(&mut self, name: &str) {
        *self.operators.entry(name.to_string()).or_default() += 1;
    }

    /// Merge another metrics object into this one.
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.rows_from_store += other.rows_from_store;
        self.rows_from_llm += other.rows_from_llm;
        self.rows_output += other.rows_output;
        self.dropped_lines += other.dropped_lines;
        self.cells_filled_by_llm += other.cells_filled_by_llm;
        self.peak_in_flight = self.peak_in_flight.max(other.peak_in_flight);
        self.slot_waits += other.slot_waits;
        self.slot_wait_ms += other.slot_wait_ms;
        self.hedges_issued += other.hedges_issued;
        self.hedges_won += other.hedges_won;
        self.coalesced_calls += other.coalesced_calls;
        self.batched_rows += other.batched_rows;
        for (k, v) in &other.llm_calls_by_kind {
            *self.llm_calls_by_kind.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.backend_calls {
            *self.backend_calls.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.backend_errors {
            *self.backend_errors.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.backend_latency_ms {
            *self.backend_latency_ms.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.operators {
            *self.operators.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.op_stats {
            let s = self.op_stats.entry(k.clone()).or_default();
            s.rows_out += v.rows_out;
            s.llm_calls += v.llm_calls;
            s.wall_ms += v.wall_ms;
        }
        // First marker wins: the earliest cut is the one that shaped the
        // delivered prefix; later merges must not rewrite the story.
        if self.incomplete.is_none() {
            self.incomplete.clone_from(&other.incomplete);
        }
    }
}

impl fmt::Display for ExecMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store_rows={} llm_rows={} out_rows={} llm_calls={} dropped={} filled={} peak_in_flight={}",
            self.rows_from_store,
            self.rows_from_llm,
            self.rows_output,
            self.llm_calls(),
            self.dropped_lines,
            self.cells_filled_by_llm,
            self.peak_in_flight
        )
    }
}

/// A shared, thread-safe metrics handle.
#[derive(Clone, Default)]
pub struct SharedMetrics {
    inner: Arc<Mutex<ExecMetrics>>,
    in_flight: Arc<AtomicU64>,
    peak_in_flight: Arc<AtomicU64>,
}

impl SharedMetrics {
    /// Create a fresh handle.
    pub fn new() -> Self {
        SharedMetrics::default()
    }

    /// Run a closure with mutable access to the metrics.
    pub fn update(&self, f: impl FnOnce(&mut ExecMetrics)) {
        f(&mut self.inner.lock());
    }

    /// Total LLM calls recorded so far, without cloning the metrics (cheap
    /// enough for per-wave budget checks on the dispatch hot path).
    pub fn llm_call_count(&self) -> u64 {
        self.inner.lock().llm_calls()
    }

    /// Snapshot the current metrics (including the in-flight peak).
    pub fn snapshot(&self) -> ExecMetrics {
        let mut m = self.inner.lock().clone();
        // ordering: SeqCst — the in-flight gauge pairs increments with peak
        // observation across threads; SeqCst keeps gauge and peak totally
        // ordered so a snapshot can never report peak < a gauge value some
        // thread already observed. Cold path (snapshots), cost irrelevant.
        m.peak_in_flight = m
            .peak_in_flight
            .max(self.peak_in_flight.load(Ordering::SeqCst));
        m
    }

    /// Mark one LLM request as in flight; the returned guard decrements the
    /// gauge on drop. The observed maximum is reported as
    /// [`ExecMetrics::peak_in_flight`].
    pub fn track_in_flight(&self) -> InFlightGuard {
        // ordering: SeqCst — increment and peak update must appear in one
        // total order with the decrements in InFlightGuard::drop, so the
        // recorded peak equals the true maximum concurrency (the
        // parallel-pipeline tests assert exact peaks).
        let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_in_flight.fetch_max(now, Ordering::SeqCst);
        InFlightGuard {
            in_flight: Arc::clone(&self.in_flight),
        }
    }

    /// Requests currently in flight (0 when idle).
    pub fn in_flight(&self) -> u64 {
        // ordering: SeqCst — read in the same total order as the gauge
        // updates above; cold path, cost irrelevant.
        self.in_flight.load(Ordering::SeqCst)
    }
}

/// RAII guard for one in-flight LLM request.
pub struct InFlightGuard {
    in_flight: Arc<AtomicU64>,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        // ordering: SeqCst — pairs with the fetch_add in track_in_flight;
        // see the peak-accuracy note there.
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut m = ExecMetrics::default();
        m.record_llm_call("row_batch");
        m.record_llm_call("row_batch");
        m.record_llm_call("lookup");
        m.record_operator("Filter");
        assert_eq!(m.llm_calls(), 3);
        assert_eq!(m.llm_calls_by_kind["row_batch"], 2);
        assert_eq!(m.operators["Filter"], 1);
        assert!(m.to_string().contains("llm_calls=3"));
    }

    #[test]
    fn merge_adds_up() {
        let mut a = ExecMetrics {
            rows_from_llm: 5,
            peak_in_flight: 2,
            ..ExecMetrics::default()
        };
        a.record_llm_call("lookup");
        let mut b = ExecMetrics {
            rows_from_llm: 7,
            peak_in_flight: 4,
            ..ExecMetrics::default()
        };
        b.record_llm_call("lookup");
        b.record_llm_call("enumerate");
        a.merge(&b);
        assert_eq!(a.rows_from_llm, 12);
        assert_eq!(a.llm_calls(), 3);
        assert_eq!(a.peak_in_flight, 4);
    }

    #[test]
    fn merge_keeps_the_first_incomplete_marker() {
        use llmsql_types::ErrorKind;
        let marker = |rows: u64| Incomplete {
            kind: ErrorKind::DeadlineExceeded,
            message: "cut".to_string(),
            rows_delivered: rows,
            calls_spent: 1,
        };
        let mut a = ExecMetrics {
            incomplete: Some(marker(10)),
            ..ExecMetrics::default()
        };
        let b = ExecMetrics {
            incomplete: Some(marker(99)),
            ..ExecMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.incomplete.as_ref().unwrap().rows_delivered, 10);
        let mut c = ExecMetrics::default();
        c.merge(&b);
        assert_eq!(c.incomplete.as_ref().unwrap().rows_delivered, 99);
    }

    #[test]
    fn shared_handle() {
        let shared = SharedMetrics::new();
        let clone = shared.clone();
        clone.update(|m| m.rows_output = 9);
        assert_eq!(shared.snapshot().rows_output, 9);
    }

    #[test]
    fn in_flight_gauge_tracks_peak() {
        let shared = SharedMetrics::new();
        assert_eq!(shared.in_flight(), 0);
        {
            let _a = shared.track_in_flight();
            let _b = shared.track_in_flight();
            assert_eq!(shared.in_flight(), 2);
            {
                let _c = shared.track_in_flight();
                assert_eq!(shared.in_flight(), 3);
            }
            assert_eq!(shared.in_flight(), 2);
        }
        assert_eq!(shared.in_flight(), 0);
        assert_eq!(shared.snapshot().peak_in_flight, 3);
    }

    #[test]
    fn peak_survives_across_threads() {
        let shared = SharedMetrics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = shared.clone();
                scope.spawn(move || {
                    let _g = handle.track_in_flight();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                });
            }
        });
        assert!(shared.snapshot().peak_in_flight >= 2);
        assert_eq!(shared.in_flight(), 0);
    }
}
