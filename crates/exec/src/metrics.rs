//! Execution metrics collected while a query runs.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

/// Metrics for one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecMetrics {
    /// Rows read from materialized tables.
    pub rows_from_store: u64,
    /// Rows materialized from LLM completions.
    pub rows_from_llm: u64,
    /// Rows emitted by the root operator.
    pub rows_output: u64,
    /// Completion lines the tolerant parsers had to drop.
    pub dropped_lines: u64,
    /// NULL cells filled from the model by hybrid scans.
    pub cells_filled_by_llm: u64,
    /// LLM prompts issued, by task kind ("row_batch", "lookup", ...).
    pub llm_calls_by_kind: BTreeMap<String, u64>,
    /// Plan nodes executed, by operator name.
    pub operators: BTreeMap<String, u64>,
}

impl ExecMetrics {
    /// Total LLM prompts issued (all kinds).
    pub fn llm_calls(&self) -> u64 {
        self.llm_calls_by_kind.values().sum()
    }

    /// Record one LLM prompt of the given kind.
    pub fn record_llm_call(&mut self, kind: &str) {
        *self.llm_calls_by_kind.entry(kind.to_string()).or_default() += 1;
    }

    /// Record an executed operator.
    pub fn record_operator(&mut self, name: &str) {
        *self.operators.entry(name.to_string()).or_default() += 1;
    }

    /// Merge another metrics object into this one.
    pub fn merge(&mut self, other: &ExecMetrics) {
        self.rows_from_store += other.rows_from_store;
        self.rows_from_llm += other.rows_from_llm;
        self.rows_output += other.rows_output;
        self.dropped_lines += other.dropped_lines;
        self.cells_filled_by_llm += other.cells_filled_by_llm;
        for (k, v) in &other.llm_calls_by_kind {
            *self.llm_calls_by_kind.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.operators {
            *self.operators.entry(k.clone()).or_default() += v;
        }
    }
}

impl fmt::Display for ExecMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "store_rows={} llm_rows={} out_rows={} llm_calls={} dropped={} filled={}",
            self.rows_from_store,
            self.rows_from_llm,
            self.rows_output,
            self.llm_calls(),
            self.dropped_lines,
            self.cells_filled_by_llm
        )
    }
}

/// A shared, thread-safe metrics handle.
#[derive(Clone, Default)]
pub struct SharedMetrics(Arc<Mutex<ExecMetrics>>);

impl SharedMetrics {
    /// Create a fresh handle.
    pub fn new() -> Self {
        SharedMetrics::default()
    }

    /// Run a closure with mutable access to the metrics.
    pub fn update(&self, f: impl FnOnce(&mut ExecMetrics)) {
        f(&mut self.0.lock());
    }

    /// Snapshot the current metrics.
    pub fn snapshot(&self) -> ExecMetrics {
        self.0.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut m = ExecMetrics::default();
        m.record_llm_call("row_batch");
        m.record_llm_call("row_batch");
        m.record_llm_call("lookup");
        m.record_operator("Filter");
        assert_eq!(m.llm_calls(), 3);
        assert_eq!(m.llm_calls_by_kind["row_batch"], 2);
        assert_eq!(m.operators["Filter"], 1);
        assert!(m.to_string().contains("llm_calls=3"));
    }

    #[test]
    fn merge_adds_up() {
        let mut a = ExecMetrics::default();
        a.rows_from_llm = 5;
        a.record_llm_call("lookup");
        let mut b = ExecMetrics::default();
        b.rows_from_llm = 7;
        b.record_llm_call("lookup");
        b.record_llm_call("enumerate");
        a.merge(&b);
        assert_eq!(a.rows_from_llm, 12);
        assert_eq!(a.llm_calls(), 3);
    }

    #[test]
    fn shared_handle() {
        let shared = SharedMetrics::new();
        let clone = shared.clone();
        clone.update(|m| m.rows_output = 9);
        assert_eq!(shared.snapshot().rows_output, 9);
    }
}
