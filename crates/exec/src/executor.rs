//! The plan interpreter: turns a [`LogicalPlan`] into rows.
//!
//! Execution is operator-at-a-time (each operator materializes its output),
//! which keeps every operator easy to verify in isolation. Latency no longer
//! comes operator-at-a-time, though: scans dispatch their model calls in
//! concurrent waves (see [`crate::scan`]), and the CPU-bound operators
//! (`Filter`, `Project`, the hash-join build/probe) fan out over the same
//! worker-pool width once inputs exceed [`PAR_ROW_THRESHOLD`] rows. Both
//! levels are controlled by `EngineConfig::parallelism` and preserve output
//! order exactly, so plans produce identical rows at any setting.

use std::collections::HashMap;

use llmsql_plan::{BoundExpr, LogicalPlan, SortKey};
use llmsql_sql::ast::{BinaryOp, JoinKind};
use llmsql_store::CatalogEntry;
use llmsql_types::{Batch, Error, ExecutionMode, RelSchema, Result, Row, Value};

use crate::context::ExecContext;
use crate::eval::{eval, eval_predicate, AggAccumulator};
use crate::parallel::{par_map, try_par_map, PAR_ROW_THRESHOLD};
use crate::scan::{hybrid_scan, llm_scan, table_scan, ScanSpec};

/// Execute a logical plan and return the result batch.
pub fn execute(ctx: &ExecContext, plan: &LogicalPlan) -> Result<Batch> {
    let rows = execute_rows(ctx, plan)?;
    ctx.metrics.update(|m| m.rows_output = rows.len() as u64);
    // Multi-backend deployments: surface this query's per-backend
    // physical-call counters alongside the logical-call metrics.
    ctx.sync_backend_metrics();
    Ok(Batch::new(plan.schema(), rows))
}

/// Execute a plan node to rows.
pub fn execute_rows(ctx: &ExecContext, plan: &LogicalPlan) -> Result<Vec<Row>> {
    execute_rows_at(ctx, plan, "0")
}

/// Execute a plan node identified by its pre-order path (`"0"` = root,
/// `"0.1"` = its second child), recording per-operator actuals — output
/// rows, wall time, and the LLM calls issued while the subtree ran — under
/// that path in [`crate::metrics::ExecMetrics::op_stats`]. Call attribution
/// works by before/after deltas of the shared call counter, which is exact
/// because operators run one at a time: a child completes before its parent
/// does any work of its own.
fn execute_rows_at(ctx: &ExecContext, plan: &LogicalPlan, path: &str) -> Result<Vec<Row>> {
    let calls_before = ctx.metrics.llm_call_count();
    // Per-operator wall clock for EXPLAIN ANALYZE. Deliberately not routed
    // through the reactor: this measures the whole operator (including CPU
    // work), not an I/O deadline — carried as a banned-time ledger entry.
    let started = std::time::Instant::now();
    let rows = execute_node(ctx, plan, path)?;
    let wall_ms = started.elapsed().as_secs_f64() * 1000.0;
    let calls = ctx.metrics.llm_call_count().saturating_sub(calls_before);
    ctx.metrics.update(|m| {
        let s = m.op_stats.entry(path.to_string()).or_default();
        s.rows_out += rows.len() as u64;
        s.llm_calls += calls;
        s.wall_ms += wall_ms;
    });
    Ok(rows)
}

fn execute_node(ctx: &ExecContext, plan: &LogicalPlan, path: &str) -> Result<Vec<Row>> {
    match plan {
        LogicalPlan::Scan {
            table,
            table_schema,
            pushed_filter,
            prompt_columns,
            virtual_table,
            pushed_limit,
            ..
        } => {
            ctx.metrics.update(|m| m.record_operator("Scan"));
            let spec = ScanSpec {
                table,
                table_schema,
                pushed_filter: pushed_filter.as_ref(),
                prompt_columns: prompt_columns.as_deref(),
                pushed_limit: *pushed_limit,
            };
            execute_scan(ctx, &spec, *virtual_table)
        }
        LogicalPlan::Values { rows, .. } => {
            ctx.metrics.update(|m| m.record_operator("Values"));
            rows.iter()
                .map(|exprs| {
                    exprs
                        .iter()
                        .map(|e| eval(e, &Row::empty()))
                        .collect::<Result<Vec<Value>>>()
                        .map(Row::new)
                })
                .collect()
        }
        LogicalPlan::Filter { input, predicate } => {
            ctx.metrics.update(|m| m.record_operator("Filter"));
            let rows = execute_rows_at(ctx, input, &format!("{path}.0"))?;
            let keep = try_par_map(operator_parallelism(ctx, rows.len()), &rows, |_, row| {
                Ok(eval_predicate(predicate, row)? == Some(true))
            })?;
            Ok(rows
                .into_iter()
                .zip(keep)
                .filter_map(|(row, keep)| keep.then_some(row))
                .collect())
        }
        LogicalPlan::Project { input, exprs, .. } => {
            ctx.metrics.update(|m| m.record_operator("Project"));
            let rows = execute_rows_at(ctx, input, &format!("{path}.0"))?;
            try_par_map(operator_parallelism(ctx, rows.len()), &rows, |_, row| {
                exprs
                    .iter()
                    .map(|e| eval(e, row))
                    .collect::<Result<Vec<Value>>>()
                    .map(Row::new)
            })
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            ..
        } => {
            ctx.metrics.update(|m| m.record_operator("Join"));
            let left_rows = execute_rows_at(ctx, left, &format!("{path}.0"))?;
            let right_rows = execute_rows_at(ctx, right, &format!("{path}.1"))?;
            join_rows_with_parallelism(
                &left_rows,
                &right_rows,
                left.schema().len(),
                right.schema().len(),
                *kind,
                on.as_ref(),
                operator_parallelism(ctx, left_rows.len().max(right_rows.len())),
            )
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
            ..
        } => {
            ctx.metrics.update(|m| m.record_operator("Aggregate"));
            let rows = execute_rows_at(ctx, input, &format!("{path}.0"))?;
            aggregate_rows(&rows, group_exprs, aggregates)
        }
        LogicalPlan::Sort { input, keys } => {
            ctx.metrics.update(|m| m.record_operator("Sort"));
            let mut rows = execute_rows_at(ctx, input, &format!("{path}.0"))?;
            sort_rows(&mut rows, keys)?;
            Ok(rows)
        }
        LogicalPlan::Limit {
            input,
            limit,
            offset,
        } => {
            ctx.metrics.update(|m| m.record_operator("Limit"));
            let rows = execute_rows_at(ctx, input, &format!("{path}.0"))?;
            let iter = rows.into_iter().skip(*offset);
            Ok(match limit {
                Some(l) => iter.take(*l).collect(),
                None => iter.collect(),
            })
        }
        LogicalPlan::Distinct { input } => {
            ctx.metrics.update(|m| m.record_operator("Distinct"));
            let rows = execute_rows_at(ctx, input, &format!("{path}.0"))?;
            let mut seen = std::collections::HashSet::new();
            Ok(rows
                .into_iter()
                .filter(|r| seen.insert(r.clone()))
                .collect())
        }
    }
}

/// Pick the physical scan for a logical scan based on the execution mode and
/// whether the relation is virtual.
fn execute_scan(ctx: &ExecContext, spec: &ScanSpec, virtual_table: bool) -> Result<Vec<Row>> {
    match ctx.config.mode {
        ExecutionMode::Traditional => {
            let entry = ctx.catalog.get(spec.table)?;
            match entry {
                CatalogEntry::Materialized(table) => table_scan(ctx, spec, &table),
                CatalogEntry::Virtual(_) => Err(Error::execution(format!(
                    "table '{}' is virtual; traditional mode cannot scan it",
                    spec.table
                ))),
            }
        }
        ExecutionMode::LlmOnly => llm_scan(ctx, spec),
        ExecutionMode::Hybrid => {
            if virtual_table {
                return llm_scan(ctx, spec);
            }
            match ctx.catalog.get(spec.table)? {
                CatalogEntry::Materialized(table) => hybrid_scan(ctx, spec, &table),
                CatalogEntry::Virtual(_) => llm_scan(ctx, spec),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// Extract equi-join key pairs `(left_index, right_index)` from a join
/// condition, plus the residual predicate that is not a simple equality.
fn equi_keys(on: &BoundExpr, left_arity: usize) -> (Vec<(usize, usize)>, Vec<BoundExpr>) {
    let mut keys = Vec::new();
    let mut residual = Vec::new();
    for conjunct in llmsql_plan::split_conjunction(on) {
        if let BoundExpr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = &conjunct
        {
            if let (BoundExpr::Column { index: a, .. }, BoundExpr::Column { index: b, .. }) =
                (left.as_ref(), right.as_ref())
            {
                let (l, r) = if *a < left_arity && *b >= left_arity {
                    (*a, *b - left_arity)
                } else if *b < left_arity && *a >= left_arity {
                    (*b, *a - left_arity)
                } else {
                    residual.push(conjunct.clone());
                    continue;
                };
                keys.push((l, r));
                continue;
            }
        }
        residual.push(conjunct.clone());
    }
    (keys, residual)
}

/// The worker-pool width to use for a CPU-bound operator over `rows` rows:
/// the configured parallelism once the input is large enough to amortize
/// thread spawns, else sequential.
fn operator_parallelism(ctx: &ExecContext, rows: usize) -> usize {
    if rows >= PAR_ROW_THRESHOLD {
        ctx.config.parallelism.max(1)
    } else {
        1
    }
}

/// Join two row sets. Uses a hash join on equi-key conjuncts when possible,
/// falling back to a nested loop; residual conditions are applied to each
/// candidate pair. Handles INNER, LEFT, RIGHT and CROSS joins.
pub fn join_rows(
    left_rows: &[Row],
    right_rows: &[Row],
    left_arity: usize,
    right_arity: usize,
    kind: JoinKind,
    on: Option<&BoundExpr>,
) -> Result<Vec<Row>> {
    join_rows_with_parallelism(left_rows, right_rows, left_arity, right_arity, kind, on, 1)
}

/// [`join_rows`] with an explicit worker-pool width. Key extraction, probe
/// and residual evaluation fan out across workers; output order (left row
/// order, then build-side insertion order per key) is identical at any
/// width. Join keys are borrowed from the input rows — the build side
/// allocates no per-row key clones.
pub fn join_rows_with_parallelism(
    left_rows: &[Row],
    right_rows: &[Row],
    left_arity: usize,
    right_arity: usize,
    kind: JoinKind,
    on: Option<&BoundExpr>,
    parallelism: usize,
) -> Result<Vec<Row>> {
    // RIGHT JOIN is a LEFT JOIN with sides swapped then columns reordered.
    if kind == JoinKind::Right {
        let swapped_on = on.map(|e| {
            e.remap_columns(&|i| {
                Some(if i < left_arity {
                    i + right_arity
                } else {
                    i - left_arity
                })
            })
            .expect("total remap")
        });
        let swapped = join_rows_with_parallelism(
            right_rows,
            left_rows,
            right_arity,
            left_arity,
            JoinKind::Left,
            swapped_on.as_ref(),
            parallelism,
        )?;
        return Ok(swapped
            .into_iter()
            .map(|row| {
                let vals = row.into_values();
                let (r, l) = vals.split_at(right_arity);
                let mut out = l.to_vec();
                out.extend(r.iter().cloned());
                Row::new(out)
            })
            .collect());
    }

    let (keys, residual) = match on {
        Some(on) => equi_keys(on, left_arity),
        None => (vec![], vec![]),
    };
    let residual_pred = llmsql_plan::conjoin(&residual);

    let mut out = Vec::new();
    if !keys.is_empty() {
        // Hash join: build on the right side, keying by reference into the
        // build rows (no per-row `Vec<Value>` clones). Key extraction is
        // embarrassingly parallel; the map insert stays sequential to keep
        // per-key candidate order equal to build-row order.
        let right_keys: Vec<Option<Vec<&Value>>> = par_map(parallelism, right_rows, |_, r| {
            let key: Vec<&Value> = keys.iter().map(|(_, ri)| r.get(*ri)).collect();
            (!key.iter().any(|v| v.is_null())).then_some(key)
        });
        let mut table: HashMap<Vec<&Value>, Vec<&Row>> = HashMap::new();
        for (r, key) in right_rows.iter().zip(right_keys) {
            if let Some(key) = key {
                table.entry(key).or_default().push(r);
            }
        }
        // Probe left rows in parallel; each worker emits its row's matches,
        // concatenated afterwards in left-row order.
        let table = &table;
        let residual_pred = &residual_pred;
        let per_left: Vec<Result<Vec<Row>>> = par_map(parallelism, left_rows, |_, l| {
            let key: Vec<&Value> = keys.iter().map(|(li, _)| l.get(*li)).collect();
            let mut matches = Vec::new();
            if !key.iter().any(|v| v.is_null()) {
                if let Some(candidates) = table.get(&key) {
                    for r in candidates {
                        let combined = l.concat(r);
                        let keep = match residual_pred {
                            Some(p) => eval_predicate(p, &combined)? == Some(true),
                            None => true,
                        };
                        if keep {
                            matches.push(combined);
                        }
                    }
                }
            }
            if matches.is_empty() && kind == JoinKind::Left {
                let mut padded = l.clone();
                padded.resize(left_arity + right_arity);
                matches.push(padded);
            }
            Ok(matches)
        });
        for matches in per_left {
            out.extend(matches?);
        }
    } else {
        // Nested loop, parallel over the outer (left) side.
        let per_left: Vec<Result<Vec<Row>>> = par_map(parallelism, left_rows, |_, l| {
            let mut matches = Vec::new();
            for r in right_rows {
                let combined = l.concat(r);
                let keep = match on {
                    Some(p) => eval_predicate(p, &combined)? == Some(true),
                    None => true,
                };
                if keep {
                    matches.push(combined);
                }
            }
            if matches.is_empty() && kind == JoinKind::Left {
                let mut padded = l.clone();
                padded.resize(left_arity + right_arity);
                matches.push(padded);
            }
            Ok(matches)
        });
        for matches in per_left {
            out.extend(matches?);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Aggregation and sorting
// ---------------------------------------------------------------------------

/// Hash aggregation.
pub fn aggregate_rows(
    rows: &[Row],
    group_exprs: &[BoundExpr],
    aggregates: &[BoundExpr],
) -> Result<Vec<Row>> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<Vec<Value>, Vec<AggAccumulator>> = BTreeMap::new();

    let make_accs = || -> Result<Vec<AggAccumulator>> {
        aggregates
            .iter()
            .map(|a| match a {
                BoundExpr::Aggregate { func, distinct, .. } => {
                    Ok(AggAccumulator::new(*func, *distinct))
                }
                other => Err(Error::execution(format!(
                    "aggregate list contains a non-aggregate expression: {other}"
                ))),
            })
            .collect()
    };

    for row in rows {
        let key: Vec<Value> = group_exprs
            .iter()
            .map(|e| eval(e, row))
            .collect::<Result<_>>()?;
        let accs = match groups.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(e) => e.insert(make_accs()?),
        };
        for (acc, agg) in accs.iter_mut().zip(aggregates) {
            let BoundExpr::Aggregate { arg, .. } = agg else {
                unreachable!("validated above")
            };
            let value = match arg {
                None => Value::Int(1),
                Some(a) => eval(a, row)?,
            };
            acc.update(&value);
        }
    }

    // A global aggregate over zero rows still produces one output row.
    if groups.is_empty() && group_exprs.is_empty() {
        groups.insert(vec![], make_accs()?);
    }

    Ok(groups
        .into_iter()
        .map(|(key, accs)| {
            let mut values = key;
            values.extend(accs.iter().map(super::eval::AggAccumulator::finish));
            Row::new(values)
        })
        .collect())
}

/// Stable multi-key sort. NULL keys sort first under both ASC and DESC
/// (NULLS FIRST, as in PostgreSQL's `NULLS FIRST` / SQLite's default for
/// ASC — we extend it to DESC so missing evidence always surfaces at the top
/// rather than flipping ends with the direction).
pub fn sort_rows(rows: &mut [Row], keys: &[SortKey]) -> Result<()> {
    // Precompute key values (keeps the comparator infallible) and sort an
    // index permutation: rows — arbitrarily wide — are never cloned, only
    // moved once into their sorted slots at the end.
    let key_values: Vec<Vec<Value>> = rows
        .iter()
        .map(|row| {
            keys.iter()
                .map(|k| eval(&k.expr, row))
                .collect::<Result<Vec<_>>>()
        })
        .collect::<Result<_>>()?;
    let mut order: Vec<usize> = (0..rows.len()).collect();
    // Stable sort over indices: equal keys keep input order.
    order.sort_by(|&a, &b| {
        for (i, key) in keys.iter().enumerate() {
            let (ka, kb) = (&key_values[a][i], &key_values[b][i]);
            let ord = match (ka.is_null(), kb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                // NULLS FIRST regardless of direction.
                (true, false) => std::cmp::Ordering::Less,
                (false, true) => std::cmp::Ordering::Greater,
                (false, false) => {
                    let ord = ka.total_cmp(kb);
                    if key.ascending {
                        ord
                    } else {
                        ord.reverse()
                    }
                }
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    // Apply the permutation by moving rows (no deep clones).
    let mut taken: Vec<Option<Row>> = rows
        .iter_mut()
        .map(|r| Some(std::mem::replace(r, Row::empty())))
        .collect();
    for (slot, &src) in rows.iter_mut().zip(&order) {
        *slot = taken[src].take().expect("each source row moved once");
    }
    Ok(())
}

/// Convenience for tests and benchmarks: execute and render as an ASCII table.
pub fn execute_to_table(ctx: &ExecContext, plan: &LogicalPlan) -> Result<String> {
    Ok(execute(ctx, plan)?.to_ascii_table())
}

/// Build an empty batch with the plan's schema (used for EXPLAIN-only paths).
pub fn empty_result(plan: &LogicalPlan) -> Batch {
    Batch::empty(plan.schema())
}

/// Helper: look up the output schema of a plan (re-exported convenience).
pub fn output_schema(plan: &LogicalPlan) -> RelSchema {
    plan.schema()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_plan::{bind_select, optimize, OptimizerOptions};
    use llmsql_sql::{parse_statement, Statement};
    use llmsql_store::Catalog;
    use llmsql_types::{Column, DataType, EngineConfig, Schema};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let countries = cat
            .create_table(Schema::new(
                "countries",
                vec![
                    Column::new("name", DataType::Text).primary_key(),
                    Column::new("region", DataType::Text),
                    Column::new("population", DataType::Int),
                ],
            ))
            .unwrap();
        for (n, r, p) in [
            ("France", "Europe", 68),
            ("Germany", "Europe", 84),
            ("Japan", "Asia", 125),
            ("Peru", "Americas", 34),
            ("Kenya", "Africa", 54),
            ("Iceland", "Europe", 1),
        ] {
            countries
                .insert(Row::new(vec![n.into(), r.into(), Value::Int(p)]))
                .unwrap();
        }
        let cities = cat
            .create_table(Schema::new(
                "cities",
                vec![
                    Column::new("name", DataType::Text).primary_key(),
                    Column::new("country", DataType::Text),
                    Column::new("population", DataType::Int),
                ],
            ))
            .unwrap();
        for (n, c, p) in [
            ("Paris", "France", 2),
            ("Lyon", "France", 1),
            ("Berlin", "Germany", 3),
            ("Tokyo", "Japan", 13),
            ("Atlantis City", "Atlantis", 0),
        ] {
            cities
                .insert(Row::new(vec![n.into(), c.into(), Value::Int(p)]))
                .unwrap();
        }
        cat
    }

    fn run(sql: &str) -> Batch {
        let cat = catalog();
        let stmt = parse_statement(sql).unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        let plan = optimize(
            bind_select(&cat, &select).unwrap(),
            &OptimizerOptions::default(),
        );
        let ctx = ExecContext::new(
            cat,
            None,
            EngineConfig {
                mode: ExecutionMode::Traditional,
                ..EngineConfig::default()
            },
        );
        execute(&ctx, &plan).unwrap()
    }

    fn cell(batch: &Batch, row: usize, col: usize) -> Value {
        batch.rows[row].get(col).clone()
    }

    #[test]
    fn select_star() {
        let b = run("SELECT * FROM countries");
        assert_eq!(b.len(), 6);
        assert_eq!(b.schema.len(), 3);
    }

    #[test]
    fn filter_projection_order_limit() {
        let b = run(
            "SELECT name, population FROM countries WHERE region = 'Europe' \
             ORDER BY population DESC LIMIT 2",
        );
        assert_eq!(b.len(), 2);
        assert_eq!(cell(&b, 0, 0), Value::Text("Germany".into()));
        assert_eq!(cell(&b, 1, 0), Value::Text("France".into()));
    }

    #[test]
    fn expression_projection() {
        let b =
            run("SELECT name, population * 2 AS double_pop FROM countries WHERE name = 'Japan'");
        assert_eq!(cell(&b, 0, 1), Value::Int(250));
        assert_eq!(b.schema.names()[1], "double_pop");
    }

    #[test]
    fn inner_join_matches() {
        let b = run(
            "SELECT ci.name, c.region FROM cities ci JOIN countries c ON ci.country = c.name \
             ORDER BY ci.name",
        );
        assert_eq!(b.len(), 4); // Atlantis City has no matching country
        assert_eq!(cell(&b, 0, 0), Value::Text("Berlin".into()));
        assert_eq!(cell(&b, 0, 1), Value::Text("Europe".into()));
    }

    #[test]
    fn left_join_pads_nulls() {
        let b = run(
            "SELECT ci.name, c.name FROM cities ci LEFT JOIN countries c ON ci.country = c.name \
             ORDER BY ci.name",
        );
        assert_eq!(b.len(), 5);
        let atlantis = b
            .rows
            .iter()
            .find(|r| r.get(0) == &Value::Text("Atlantis City".into()))
            .unwrap();
        assert!(atlantis.get(1).is_null());
    }

    #[test]
    fn right_join_keeps_unmatched_right() {
        let b = run(
            "SELECT ci.name, c.name FROM cities ci RIGHT JOIN countries c ON ci.country = c.name",
        );
        // every country appears; countries without cities padded with NULL city
        assert_eq!(
            b.rows.iter().filter(|r| r.get(0).is_null()).count(),
            3 // Peru, Kenya, Iceland
        );
    }

    #[test]
    fn cross_join_cardinality() {
        let b = run("SELECT c.name, ci.name FROM countries c CROSS JOIN cities ci");
        assert_eq!(b.len(), 30);
    }

    #[test]
    fn join_with_extra_condition() {
        let b = run(
            "SELECT ci.name FROM cities ci JOIN countries c ON ci.country = c.name AND ci.population > 1",
        );
        assert_eq!(b.len(), 3); // Paris, Berlin, Tokyo
    }

    #[test]
    fn group_by_aggregates() {
        let b = run(
            "SELECT region, COUNT(*) AS n, SUM(population) AS pop, AVG(population) AS avg_pop, \
             MIN(population) AS min_pop, MAX(population) AS max_pop \
             FROM countries GROUP BY region ORDER BY region",
        );
        assert_eq!(b.len(), 4);
        // regions sorted: Africa, Americas, Asia, Europe
        assert_eq!(cell(&b, 3, 0), Value::Text("Europe".into()));
        assert_eq!(cell(&b, 3, 1), Value::Int(3));
        assert_eq!(cell(&b, 3, 2), Value::Int(153));
        assert_eq!(cell(&b, 3, 3), Value::Float(51.0));
        assert_eq!(cell(&b, 3, 4), Value::Int(1));
        assert_eq!(cell(&b, 3, 5), Value::Int(84));
    }

    #[test]
    fn having_filters_groups() {
        let b =
            run("SELECT region, COUNT(*) AS n FROM countries GROUP BY region HAVING COUNT(*) > 1");
        assert_eq!(b.len(), 1);
        assert_eq!(cell(&b, 0, 0), Value::Text("Europe".into()));
    }

    #[test]
    fn global_aggregate() {
        let b = run("SELECT COUNT(*), SUM(population) FROM countries");
        assert_eq!(b.len(), 1);
        assert_eq!(cell(&b, 0, 0), Value::Int(6));
        assert_eq!(cell(&b, 0, 1), Value::Int(366));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let b = run("SELECT COUNT(*) FROM countries WHERE population > 99999");
        assert_eq!(b.len(), 1);
        assert_eq!(cell(&b, 0, 0), Value::Int(0));
    }

    #[test]
    fn distinct_values() {
        let b = run("SELECT DISTINCT region FROM countries");
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn count_distinct() {
        let b = run("SELECT COUNT(DISTINCT region) FROM countries");
        assert_eq!(cell(&b, 0, 0), Value::Int(4));
    }

    #[test]
    fn in_and_between_and_like() {
        assert_eq!(
            run("SELECT name FROM countries WHERE region IN ('Asia', 'Africa')").len(),
            2
        );
        assert_eq!(
            run("SELECT name FROM countries WHERE population BETWEEN 50 AND 90").len(),
            3
        );
        assert_eq!(
            run("SELECT name FROM countries WHERE name LIKE 'I%'").len(),
            1
        );
    }

    #[test]
    fn case_expression_in_projection() {
        let b = run(
            "SELECT name, CASE WHEN population > 80 THEN 'big' ELSE 'small' END AS size \
             FROM countries WHERE name IN ('Japan', 'Iceland') ORDER BY name",
        );
        assert_eq!(cell(&b, 0, 1), Value::Text("small".into()));
        assert_eq!(cell(&b, 1, 1), Value::Text("big".into()));
    }

    #[test]
    fn constant_query_without_from() {
        let b = run("SELECT 1 + 1 AS two, 'hello' AS greeting");
        assert_eq!(b.len(), 1);
        assert_eq!(cell(&b, 0, 0), Value::Int(2));
        assert_eq!(cell(&b, 0, 1), Value::Text("hello".into()));
    }

    #[test]
    fn offset_and_positional_order() {
        let b = run("SELECT name FROM countries ORDER BY 1 LIMIT 2 OFFSET 1");
        assert_eq!(b.len(), 2);
        assert_eq!(cell(&b, 0, 0), Value::Text("Germany".into()));
    }

    #[test]
    fn subquery_in_from_executes() {
        let b = run(
            "SELECT big.name FROM (SELECT name, population FROM countries WHERE population > 60) AS big \
             ORDER BY big.name",
        );
        assert_eq!(b.len(), 3);
        assert_eq!(cell(&b, 0, 0), Value::Text("France".into()));
    }

    #[test]
    fn traditional_mode_rejects_virtual_tables() {
        let cat = catalog();
        cat.create_virtual_table(Schema::new(
            "ghosts",
            vec![Column::new("name", DataType::Text).primary_key()],
        ))
        .unwrap();
        let stmt = parse_statement("SELECT * FROM ghosts").unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        let plan = bind_select(&cat, &select).unwrap();
        let ctx = ExecContext::new(
            cat,
            None,
            EngineConfig {
                mode: ExecutionMode::Traditional,
                ..EngineConfig::default()
            },
        );
        assert!(execute(&ctx, &plan).is_err());
    }

    #[test]
    fn metrics_track_operators_and_rows() {
        let cat = catalog();
        let stmt = parse_statement("SELECT name FROM countries WHERE population > 60").unwrap();
        let Statement::Select(select) = stmt else {
            panic!()
        };
        let plan = optimize(
            bind_select(&cat, &select).unwrap(),
            &OptimizerOptions::default(),
        );
        let ctx = ExecContext::new(
            cat,
            None,
            EngineConfig {
                mode: ExecutionMode::Traditional,
                ..EngineConfig::default()
            },
        );
        let batch = execute(&ctx, &plan).unwrap();
        let m = ctx.metrics.snapshot();
        assert_eq!(m.rows_output, batch.len() as u64);
        assert!(m.operators.contains_key("Scan"));
        assert!(m.operators.contains_key("Project"));
        assert_eq!(m.llm_calls(), 0);
    }

    #[test]
    fn sort_rows_puts_nulls_first_in_both_directions() {
        use llmsql_types::DataType;
        let make_rows = || -> Vec<Row> {
            vec![
                Row::new(vec!["b".into(), Value::Int(2)]),
                Row::new(vec!["n1".into(), Value::Null]),
                Row::new(vec!["a".into(), Value::Int(1)]),
                Row::new(vec!["n2".into(), Value::Null]),
                Row::new(vec!["c".into(), Value::Int(3)]),
            ]
        };
        let key = |ascending: bool| {
            vec![SortKey {
                expr: BoundExpr::col(1, "v", DataType::Int),
                ascending,
            }]
        };
        let labels = |rows: &[Row]| -> Vec<String> {
            rows.iter().map(|r| r.get(0).to_display_string()).collect()
        };

        let mut asc = make_rows();
        sort_rows(&mut asc, &key(true)).unwrap();
        // NULLs lead and preserve input order (stable sort).
        assert_eq!(labels(&asc), vec!["n1", "n2", "a", "b", "c"]);

        let mut desc = make_rows();
        sort_rows(&mut desc, &key(false)).unwrap();
        // NULLs still first even though the value order flips.
        assert_eq!(labels(&desc), vec!["n1", "n2", "c", "b", "a"]);
    }

    #[test]
    fn sort_rows_multi_key_stability() {
        use llmsql_types::DataType;
        let mut rows = vec![
            Row::new(vec!["x".into(), Value::Int(1), Value::Int(10)]),
            Row::new(vec!["y".into(), Value::Int(1), Value::Null]),
            Row::new(vec!["z".into(), Value::Int(0), Value::Int(5)]),
        ];
        let keys = vec![
            SortKey {
                expr: BoundExpr::col(1, "k1", DataType::Int),
                ascending: true,
            },
            SortKey {
                expr: BoundExpr::col(2, "k2", DataType::Int),
                ascending: false,
            },
        ];
        sort_rows(&mut rows, &keys).unwrap();
        let order: Vec<String> = rows.iter().map(|r| r.get(0).to_display_string()).collect();
        // k1 ascending groups z first; within k1 = 1 the NULL k2 leads even
        // under DESC.
        assert_eq!(order, vec!["z", "y", "x"]);
    }
}
