//! Scalar evaluation of [`BoundExpr`] against rows, and aggregate
//! accumulators. This is the engine's own evaluator — distinct from the
//! simulator's (`llmsql-llm`), which models the *model's* reading of pushed
//! predicates.

use llmsql_plan::BoundExpr;
use llmsql_sql::ast::{AggregateFunc, BinaryOp, UnaryOp};
use llmsql_types::{Error, Result, Row, Value};

/// Evaluate an expression against a row. Aggregates are rejected (they are
/// handled by [`AggAccumulator`] under an Aggregate plan node).
pub fn eval(expr: &BoundExpr, row: &Row) -> Result<Value> {
    match expr {
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Column { index, .. } => Ok(row.get(*index).clone()),
        BoundExpr::Binary { left, op, right } => {
            let l = eval(left, row)?;
            let r = eval(right, row)?;
            binary(&l, *op, &r)
        }
        BoundExpr::Unary { op, expr } => {
            let v = eval(expr, row)?;
            match op {
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Bool(!truthy(&other)),
                }),
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(Error::execution(format!(
                        "cannot negate {}",
                        other.type_name()
                    ))),
                },
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, row)?;
                if iv.is_null() {
                    saw_null = true;
                } else if v.semantic_eq(&iv) {
                    found = true;
                    break;
                }
            }
            if found {
                Ok(Value::Bool(!*negated))
            } else if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, row)?;
            let lo = eval(low, row)?;
            let hi = eval(high, row)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let within = v.total_cmp(&lo) != std::cmp::Ordering::Less
                && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
            Ok(Value::Bool(within != *negated))
        }
        BoundExpr::Cast { expr, data_type } => {
            let v = eval(expr, row)?;
            // Follow the lenient philosophy at runtime: failed casts of dirty
            // (LLM-produced) values degrade to NULL instead of failing the
            // whole query.
            Ok(v.cast(*data_type).unwrap_or(Value::Null))
        }
        BoundExpr::Case {
            branches,
            else_expr,
        } => {
            for (cond, val) in branches {
                if truthy(&eval(cond, row)?) {
                    return eval(val, row);
                }
            }
            match else_expr {
                Some(e) => eval(e, row),
                None => Ok(Value::Null),
            }
        }
        BoundExpr::Aggregate { .. } => Err(Error::execution(
            "aggregate expression evaluated outside an Aggregate operator",
        )),
    }
}

/// Evaluate a predicate to a three-valued boolean.
pub fn eval_predicate(expr: &BoundExpr, row: &Row) -> Result<Option<bool>> {
    Ok(match eval(expr, row)? {
        Value::Null => None,
        Value::Bool(b) => Some(b),
        other => Some(truthy(&other)),
    })
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Text(s) => !s.is_empty(),
        Value::Null => false,
    }
}

fn binary(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    if matches!(op, And | Or) {
        let lb = if l.is_null() { None } else { Some(truthy(l)) };
        let rb = if r.is_null() { None } else { Some(truthy(r)) };
        return Ok(match (op, lb, rb) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
            (And, Some(true), Some(true)) => Value::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
            (Or, Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let out = match op {
        Plus | Minus | Multiply | Divide | Modulo => arith(l, op, r).ok_or_else(|| {
            Error::execution(format!(
                "invalid operands for arithmetic: {} {} {}",
                l.type_name(),
                op,
                r.type_name()
            ))
        })?,
        Eq => Value::Bool(l.semantic_eq(r)),
        NotEq => Value::Bool(!l.semantic_eq(r)),
        Lt => Value::Bool(l.total_cmp(r) == std::cmp::Ordering::Less),
        LtEq => Value::Bool(l.total_cmp(r) != std::cmp::Ordering::Greater),
        Gt => Value::Bool(l.total_cmp(r) == std::cmp::Ordering::Greater),
        GtEq => Value::Bool(l.total_cmp(r) != std::cmp::Ordering::Less),
        Like => Value::Bool(llmsql_llm::eval::like_match(
            &l.to_display_string(),
            &r.to_display_string(),
        )),
        Concat => Value::Text(format!(
            "{}{}",
            l.to_display_string(),
            r.to_display_string()
        )),
        And | Or => unreachable!(),
    };
    Ok(out)
}

fn arith(l: &Value, op: BinaryOp, r: &Value) -> Option<Value> {
    use BinaryOp::*;
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Some(match op {
            Plus => Value::Int(a.wrapping_add(*b)),
            Minus => Value::Int(a.wrapping_sub(*b)),
            Multiply => Value::Int(a.wrapping_mul(*b)),
            Divide => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            Modulo => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a % b)
                }
            }
            _ => return None,
        }),
        _ => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            Some(match op {
                Plus => Value::Float(a + b),
                Minus => Value::Float(a - b),
                Multiply => Value::Float(a * b),
                Divide => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                Modulo => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a % b)
                    }
                }
                _ => return None,
            })
        }
    }
}

/// A running aggregate.
#[derive(Debug, Clone)]
pub struct AggAccumulator {
    func: AggregateFunc,
    distinct: bool,
    seen: Vec<Value>,
    count: i64,
    sum: f64,
    sum_int: i64,
    all_int: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggAccumulator {
    /// Create an accumulator for the given aggregate.
    pub fn new(func: AggregateFunc, distinct: bool) -> Self {
        AggAccumulator {
            func,
            distinct,
            seen: Vec::new(),
            count: 0,
            sum: 0.0,
            sum_int: 0,
            all_int: true,
            min: None,
            max: None,
        }
    }

    /// Feed one value. `Value::Null` is ignored except for COUNT(*) which the
    /// executor feeds with `Value::Int(1)` per row.
    pub fn update(&mut self, value: &Value) {
        if value.is_null() {
            return;
        }
        if self.distinct {
            if self.seen.iter().any(|s| s.semantic_eq(value)) {
                return;
            }
            self.seen.push(value.clone());
        }
        self.count += 1;
        if let Some(f) = value.as_f64() {
            self.sum += f;
        }
        if let Some(i) = value.as_int() {
            self.sum_int = self.sum_int.wrapping_add(i);
        } else {
            self.all_int = false;
        }
        match &self.min {
            Some(m) if value.total_cmp(m) != std::cmp::Ordering::Less => {}
            _ => self.min = Some(value.clone()),
        }
        match &self.max {
            Some(m) if value.total_cmp(m) != std::cmp::Ordering::Greater => {}
            _ => self.max = Some(value.clone()),
        }
    }

    /// Produce the final aggregate value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggregateFunc::Count => Value::Int(self.count),
            AggregateFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.all_int {
                    Value::Int(self.sum_int)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggregateFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggregateFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggregateFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsql_types::DataType;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::col(i, &format!("c{i}"), DataType::Int)
    }

    fn row(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = BoundExpr::Binary {
            left: Box::new(col(0)),
            op: BinaryOp::Plus,
            right: Box::new(BoundExpr::lit(5i64)),
        };
        assert_eq!(eval(&e, &row(&[10])).unwrap(), Value::Int(15));

        let cmp = BoundExpr::Binary {
            left: Box::new(col(0)),
            op: BinaryOp::Gt,
            right: Box::new(col(1)),
        };
        assert_eq!(eval(&cmp, &row(&[3, 2])).unwrap(), Value::Bool(true));
        assert_eq!(eval(&cmp, &row(&[1, 2])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn int_division_yields_float() {
        let e = BoundExpr::Binary {
            left: Box::new(col(0)),
            op: BinaryOp::Divide,
            right: Box::new(BoundExpr::lit(4i64)),
        };
        assert_eq!(eval(&e, &row(&[10])).unwrap(), Value::Float(2.5));
        let z = BoundExpr::Binary {
            left: Box::new(col(0)),
            op: BinaryOp::Divide,
            right: Box::new(BoundExpr::lit(0i64)),
        };
        assert_eq!(eval(&z, &row(&[10])).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagation_and_three_valued_logic() {
        let null_row = Row::new(vec![Value::Null, Value::Int(1)]);
        let cmp = BoundExpr::Binary {
            left: Box::new(col(0)),
            op: BinaryOp::Eq,
            right: Box::new(col(1)),
        };
        assert_eq!(eval(&cmp, &null_row).unwrap(), Value::Null);
        assert_eq!(eval_predicate(&cmp, &null_row).unwrap(), None);

        // false AND NULL = false
        let and = BoundExpr::Binary {
            left: Box::new(BoundExpr::lit(false)),
            op: BinaryOp::And,
            right: Box::new(cmp.clone()),
        };
        assert_eq!(eval(&and, &null_row).unwrap(), Value::Bool(false));
        // true OR NULL = true
        let or = BoundExpr::Binary {
            left: Box::new(BoundExpr::lit(true)),
            op: BinaryOp::Or,
            right: Box::new(cmp),
        };
        assert_eq!(eval(&or, &null_row).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_null_semantics() {
        let e = BoundExpr::InList {
            expr: Box::new(col(0)),
            list: vec![BoundExpr::lit(1i64), BoundExpr::Literal(Value::Null)],
            negated: false,
        };
        assert_eq!(eval(&e, &row(&[1])).unwrap(), Value::Bool(true));
        // not found but NULL present -> unknown
        assert_eq!(eval(&e, &row(&[9])).unwrap(), Value::Null);
    }

    #[test]
    fn cast_failures_degrade_to_null() {
        let e = BoundExpr::Cast {
            expr: Box::new(BoundExpr::lit("not a number")),
            data_type: DataType::Int,
        };
        assert_eq!(eval(&e, &Row::empty()).unwrap(), Value::Null);
    }

    #[test]
    fn case_expression() {
        let e = BoundExpr::Case {
            branches: vec![(
                BoundExpr::Binary {
                    left: Box::new(col(0)),
                    op: BinaryOp::Gt,
                    right: Box::new(BoundExpr::lit(5i64)),
                },
                BoundExpr::lit("big"),
            )],
            else_expr: Some(Box::new(BoundExpr::lit("small"))),
        };
        assert_eq!(eval(&e, &row(&[10])).unwrap(), Value::Text("big".into()));
        assert_eq!(eval(&e, &row(&[1])).unwrap(), Value::Text("small".into()));
    }

    #[test]
    fn aggregate_outside_aggregate_node_errors() {
        let e = BoundExpr::Aggregate {
            func: AggregateFunc::Count,
            arg: None,
            distinct: false,
        };
        assert!(eval(&e, &Row::empty()).is_err());
    }

    #[test]
    fn accumulators() {
        let vals = [Value::Int(3), Value::Int(1), Value::Null, Value::Int(3)];
        let mut count = AggAccumulator::new(AggregateFunc::Count, false);
        let mut count_d = AggAccumulator::new(AggregateFunc::Count, true);
        let mut sum = AggAccumulator::new(AggregateFunc::Sum, false);
        let mut avg = AggAccumulator::new(AggregateFunc::Avg, false);
        let mut min = AggAccumulator::new(AggregateFunc::Min, false);
        let mut max = AggAccumulator::new(AggregateFunc::Max, false);
        for v in &vals {
            for acc in [
                &mut count,
                &mut count_d,
                &mut sum,
                &mut avg,
                &mut min,
                &mut max,
            ] {
                acc.update(v);
            }
        }
        assert_eq!(count.finish(), Value::Int(3));
        assert_eq!(count_d.finish(), Value::Int(2));
        assert_eq!(sum.finish(), Value::Int(7));
        assert_eq!(avg.finish(), Value::Float(7.0 / 3.0));
        assert_eq!(min.finish(), Value::Int(1));
        assert_eq!(max.finish(), Value::Int(3));
    }

    #[test]
    fn empty_accumulators() {
        assert_eq!(
            AggAccumulator::new(AggregateFunc::Count, false).finish(),
            Value::Int(0)
        );
        assert_eq!(
            AggAccumulator::new(AggregateFunc::Sum, false).finish(),
            Value::Null
        );
        assert_eq!(
            AggAccumulator::new(AggregateFunc::Avg, false).finish(),
            Value::Null
        );
        assert_eq!(
            AggAccumulator::new(AggregateFunc::Min, false).finish(),
            Value::Null
        );
    }

    #[test]
    fn float_sum_when_mixed() {
        let mut sum = AggAccumulator::new(AggregateFunc::Sum, false);
        sum.update(&Value::Int(1));
        sum.update(&Value::Float(2.5));
        assert_eq!(sum.finish(), Value::Float(3.5));
    }
}
