//! A shared pool of LLM-call slots: the mechanism by which a cross-query
//! scheduler enforces a *global* in-flight cap across many concurrent
//! queries.
//!
//! `EngineConfig::parallelism` bounds how many requests one query keeps in
//! flight; with many queries running against one deployment that per-query
//! bound multiplies out. A [`CallSlots`] pool is a counting semaphore every
//! scan worker must pass through right before dispatching a model request:
//! no matter how many queries run or what parallelism each uses, at most
//! `capacity` requests are in flight at once.
//!
//! The slot/ticket contract (relied on by `llmsql-sched`):
//!
//! * A slot is held only for the duration of one `LlmClient::complete` call
//!   and released on every exit path (RAII guard) — slots are never held
//!   across waves, so waiting for a slot cannot deadlock: some holder is
//!   always inside a completion that finishes.
//! * Slot acquisition throttles *when* a planned prompt is sent, never
//!   *whether* — wave planning happens before acquisition, so a query's
//!   prompt set, row output and logical call count are byte-identical with
//!   or without a slot pool.
//! * Waits are measured: the time a worker blocked waiting for a slot is
//!   surfaced as `ExecMetrics::slot_wait_ms`, making over-subscription
//!   visible per query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A counting semaphore over LLM-call slots. Cheap to share (`Arc`), fair
/// enough for throttling (wakeups race; the OS picks the winner).
pub struct CallSlots {
    capacity: usize,
    available: Mutex<usize>,
    freed: Condvar,
    /// Highest number of slots ever held at once (global in-flight peak).
    peak_in_use: AtomicU64,
    /// Total acquisitions that had to block.
    contended: AtomicU64,
    /// Total time acquisitions spent blocked, microseconds.
    wait_us: AtomicU64,
}

impl CallSlots {
    /// Create a pool of `capacity` slots (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        CallSlots {
            capacity,
            available: Mutex::new(capacity),
            freed: Condvar::new(),
            peak_in_use: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait_us: AtomicU64::new(0),
        }
    }

    /// Block until a slot is free and take it. Returns the guard (releasing
    /// on drop) and how long the call blocked, in milliseconds.
    ///
    /// Accounting only charges *real* waits: a condvar that wakes spuriously
    /// with a slot already free, or an acquisition that never blocked at
    /// all, contributes neither to `contended_acquisitions` nor to
    /// `total_wait_ms` (both counters are monotone — they only ever
    /// `fetch_add` a non-negative measured duration).
    pub fn acquire(&self) -> (SlotGuard<'_>, f64) {
        let mut available = self
            .available
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut waited_us = 0u64;
        if *available == 0 {
            // Measure only the blocked portion, from the moment we found no
            // slot free to the moment one was handed to us.
            let start = Instant::now();
            available = self
                .freed
                .wait_while(available, |a| *a == 0)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            waited_us = start.elapsed().as_micros() as u64;
        }
        *available -= 1;
        let in_use = (self.capacity - *available) as u64;
        drop(available);
        // ordering: Relaxed — in_use was computed under the mutex (which
        // orders the slot handoff); these counters are advisory statistics
        // layered on top, not synchronization.
        self.peak_in_use.fetch_max(in_use, Ordering::Relaxed);
        if waited_us > 0 {
            // ordering: Relaxed — monotone statistics; see above.
            self.contended.fetch_add(1, Ordering::Relaxed);
            self.wait_us.fetch_add(waited_us, Ordering::Relaxed);
        }
        (SlotGuard { pool: self }, waited_us as f64 / 1000.0)
    }

    /// Take a slot only if one is free right now, without blocking; the
    /// guard owns an `Arc` to the pool, so it can outlive the caller's
    /// stack frame (hedged requests hand it to a worker thread). Returns
    /// `None` when the pool is saturated.
    pub fn try_acquire_owned(self: &Arc<Self>) -> Option<OwnedSlotGuard> {
        let mut available = self
            .available
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if *available == 0 {
            return None;
        }
        *available -= 1;
        let in_use = (self.capacity - *available) as u64;
        drop(available);
        // ordering: Relaxed — statistic over a mutex-ordered value, as in
        // acquire() above.
        self.peak_in_use.fetch_max(in_use, Ordering::Relaxed);
        Some(OwnedSlotGuard {
            pool: Arc::clone(self),
        })
    }

    /// The configured slot count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently held.
    pub fn in_use(&self) -> usize {
        self.capacity
            - *self
                .available
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Highest number of slots ever held at once.
    pub fn peak_in_use(&self) -> u64 {
        // ordering: Relaxed — advisory statistics read.
        self.peak_in_use.load(Ordering::Relaxed)
    }

    /// Acquisitions that had to block for a slot.
    pub fn contended_acquisitions(&self) -> u64 {
        // ordering: Relaxed — advisory statistics read.
        self.contended.load(Ordering::Relaxed)
    }

    /// Fold an externally measured blocked wait into the contention counters.
    /// The event-driven dispatch path waits for capacity by re-polling
    /// [`CallSlots::try_acquire_owned`] from its reactor instead of blocking
    /// in [`CallSlots::acquire`]; the time it spent parked must still show up
    /// in `contended_acquisitions` / `total_wait_ms`, or over-subscription
    /// would become invisible exactly when the async core is in use. Zero
    /// waits are ignored, keeping the "only real waits are charged"
    /// invariant.
    pub fn record_blocked_wait(&self, waited_us: u64) {
        if waited_us > 0 {
            // ordering: Relaxed — monotone statistics, same contract as the
            // counters charged in acquire().
            self.contended.fetch_add(1, Ordering::Relaxed);
            self.wait_us.fetch_add(waited_us, Ordering::Relaxed);
        }
    }

    /// Total time spent blocked waiting for slots, milliseconds.
    pub fn total_wait_ms(&self) -> f64 {
        // ordering: Relaxed — advisory statistics read.
        self.wait_us.load(Ordering::Relaxed) as f64 / 1000.0
    }

    fn release(&self) {
        let mut available = self
            .available
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *available += 1;
        debug_assert!(*available <= self.capacity);
        drop(available);
        self.freed.notify_one();
    }
}

/// RAII guard for one held call slot.
pub struct SlotGuard<'a> {
    pool: &'a CallSlots,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.pool.release();
    }
}

/// Owning variant of [`SlotGuard`]: keeps the pool alive and can be moved
/// across threads (see [`CallSlots::try_acquire_owned`]).
pub struct OwnedSlotGuard {
    pool: Arc<CallSlots>,
}

impl Drop for OwnedSlotGuard {
    fn drop(&mut self) {
        self.pool.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_and_release_track_usage() {
        let slots = CallSlots::new(2);
        assert_eq!(slots.capacity(), 2);
        assert_eq!(slots.in_use(), 0);
        {
            let (_a, wait_a) = slots.acquire();
            let (_b, wait_b) = slots.acquire();
            assert_eq!(slots.in_use(), 2);
            assert!(wait_a < 100.0 && wait_b < 100.0);
        }
        assert_eq!(slots.in_use(), 0);
        assert_eq!(slots.peak_in_use(), 2);
        assert_eq!(slots.contended_acquisitions(), 0);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let slots = CallSlots::new(0);
        assert_eq!(slots.capacity(), 1);
        let (_g, _) = slots.acquire();
        assert_eq!(slots.in_use(), 1);
    }

    #[test]
    fn concurrent_holders_never_exceed_capacity() {
        let slots = Arc::new(CallSlots::new(3));
        let max_seen = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..12 {
                let slots = Arc::clone(&slots);
                let max_seen = Arc::clone(&max_seen);
                scope.spawn(move || {
                    for _ in 0..5 {
                        let (_g, _) = slots.acquire();
                        // ordering: Relaxed — test max tracker; the scope
                        // join publishes the final value to the assert.
                        max_seen.fetch_max(slots.in_use() as u64, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                });
            }
        });
        // ordering: Relaxed — read after scope join; join synchronizes.
        assert!(max_seen.load(Ordering::Relaxed) <= 3);
        assert_eq!(slots.peak_in_use(), 3);
        assert_eq!(slots.in_use(), 0);
        // 12 threads over 3 slots: someone must have blocked.
        assert!(slots.contended_acquisitions() > 0);
    }

    #[test]
    fn uncontended_acquisitions_charge_no_wait() {
        // Regression: acquisitions that never block (including back-to-back
        // reacquisition through the free list) must not count as contended
        // or accumulate wait time.
        let slots = CallSlots::new(2);
        for _ in 0..100 {
            let (_g, waited_ms) = slots.acquire();
            assert_eq!(waited_ms, 0.0);
        }
        assert_eq!(slots.contended_acquisitions(), 0);
        assert_eq!(slots.total_wait_ms(), 0.0);
    }

    #[test]
    fn wait_accounting_is_monotone_under_concurrent_readers() {
        // 8 writers hammer a 1-slot pool while a reader samples
        // total_wait_ms / contended_acquisitions: both must only ever grow.
        let slots = Arc::new(CallSlots::new(1));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            {
                let slots = Arc::clone(&slots);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last_wait = 0.0f64;
                    let mut last_contended = 0u64;
                    // ordering: Relaxed — plain stop flag; no data rides on
                    // it, the reader only needs eventual visibility.
                    while stop.load(Ordering::Relaxed) == 0 {
                        let wait = slots.total_wait_ms();
                        let contended = slots.contended_acquisitions();
                        assert!(wait >= last_wait, "total_wait_ms went backwards");
                        assert!(contended >= last_contended, "contended went backwards");
                        last_wait = wait;
                        last_contended = contended;
                    }
                });
            }
            std::thread::scope(|inner| {
                for _ in 0..8 {
                    let slots = Arc::clone(&slots);
                    inner.spawn(move || {
                        for _ in 0..10 {
                            let (_g, waited_ms) = slots.acquire();
                            assert!(waited_ms >= 0.0);
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                    });
                }
            });
            // ordering: Relaxed — see the flag's read loop above.
            stop.store(1, Ordering::Relaxed);
        });
        // 8 threads over 1 slot: some acquisition must have measurably
        // blocked, and every contended acquisition contributed wait time.
        assert!(slots.contended_acquisitions() > 0);
        assert!(slots.total_wait_ms() > 0.0);
    }

    #[test]
    fn try_acquire_owned_never_blocks_and_respects_capacity() {
        let slots = Arc::new(CallSlots::new(2));
        let a = slots.try_acquire_owned().expect("slot 1 free");
        let b = slots.try_acquire_owned().expect("slot 2 free");
        assert!(slots.try_acquire_owned().is_none(), "pool is saturated");
        assert_eq!(slots.in_use(), 2);
        // The owned guard can cross threads and releases on drop there.
        let handle = std::thread::spawn(move || drop(a));
        handle.join().unwrap();
        drop(b);
        assert_eq!(slots.in_use(), 0);
        assert_eq!(slots.peak_in_use(), 2);
        // Non-blocking acquisition is never counted as contention.
        assert_eq!(slots.contended_acquisitions(), 0);
    }

    #[test]
    fn blocked_acquire_measures_wait() {
        let slots = Arc::new(CallSlots::new(1));
        let (guard, _) = slots.acquire();
        let waiter = {
            let slots = Arc::clone(&slots);
            std::thread::spawn(move || slots.acquire().1)
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(guard);
        let waited_ms = waiter.join().unwrap();
        assert!(
            waited_ms >= 20.0,
            "waiter should have blocked ~30ms, measured {waited_ms:.1}ms"
        );
        assert!(slots.total_wait_ms() >= 20.0);
    }
}
