//! The event-driven dispatch core: a timer wheel plus a completion-polling
//! event loop that lets **one OS thread hold many in-flight LLM calls**.
//!
//! # Why
//!
//! Every dispatch path before this module pinned one OS thread per in-flight
//! request (`par_map` workers blocking inside `LlmClient::complete`), so
//! deployment-wide concurrency was capped by thread count, not backend
//! capacity: `SchedConfig::llm_slots = 64` needed ~64 sleeping threads. With
//! the reactor, a scan worker *submits* its whole wave through the
//! non-blocking API (`LanguageModel::submit` → `llmsql_llm::CallHandle`) and
//! then parks **here**, polling the handles as their timers expire — 64
//! in-flight simulated calls are then held by the one worker thread that
//! planned them.
//!
//! # The completion contract
//!
//! [`drive`] owns a set of [`Completion`] operations (in practice
//! `llmsql_llm::ClientCall`s wrapped with per-query accounting) and runs them
//! to completion:
//!
//! * **submit/poll** — an operation makes progress only inside
//!   [`Completion::poll`], which must never block; the reactor calls it when
//!   the operation is *due* ([`Completion::next_wakeup`] has arrived or is
//!   `None`). Polling is level-triggered: a poll that makes no progress is
//!   harmless, so the loop can afford to re-poll broadly.
//! * **timers** — each pending operation's wakeup is armed on the
//!   [`TimerWheel`]; when an operation completes, its timer is **cancelled**
//!   (a completed call never fires a stale wakeup). Backoff, hedge-arm and
//!   simulated-latency deadlines all flow through the same wheel.
//! * **completion cascades** — finishing one operation can unblock another
//!   (dropping a slot permit frees capacity a parked operation is waiting
//!   for), so after any completion the loop re-polls every due operation
//!   before sleeping again.
//! * **cancellation / who owns the slot guard** — the *operation* owns its
//!   slot permit (acquired through its admission gate, held for exactly one
//!   dispatch, released on resolution). The reactor owns nothing but timers:
//!   when [`drive`] returns [`DriveOutcome::DeadlineExceeded`], the caller
//!   simply drops the unfinished operations, and their `Drop` impls release
//!   permits, single-flight leaderships and per-backend gauges. Dropping is
//!   cancelling; there is no other cancel path.
//! * **deadlines** — a query deadline is checked every iteration; firing it
//!   aborts the whole wave even while calls are parked mid-flight, which is
//!   what bounds a late query's overhang to one wave.
//!
//! The loop never spins: between polls it sleeps until the wheel's next
//! deadline (or a short floor when an operation declares itself immediately
//! pollable, e.g. waiting on a slot another *thread's* reactor will free).

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The dispatch path's clock. Scan-side code reads wall-clock time through
/// this passthrough instead of calling `Instant::now()` directly, so the
/// banned-time lint keeps a single allowlisted home (this module) for time
/// reads on the hot path.
pub fn now() -> Instant {
    Instant::now()
}

/// A poll-driven operation the reactor can run to completion.
pub trait Completion {
    /// Attempt progress; `true` once the operation has finished. Not called
    /// again after returning `true`. Must never block.
    fn poll(&mut self, now: Instant) -> bool;

    /// The earliest instant at which another [`Completion::poll`] can make
    /// progress, or `None` for "poll me immediately".
    ///
    /// Must be derived from *stored* state (a flight's ready time, a parked
    /// retry deadline set when parking). Returning `now + δ` unconditionally
    /// makes the wakeup recede forever — the reactor's due-check would never
    /// find the operation due, and it would never be polled again.
    fn next_wakeup(&self, now: Instant) -> Option<Instant>;
}

/// How a [`drive`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveOutcome {
    /// Every operation completed.
    Completed,
    /// The deadline fired first; unfinished operations were left pending
    /// (dropping them is the cancellation).
    DeadlineExceeded,
}

/// Timer granularity: fine enough that sub-millisecond backoffs and
/// follower retries are not rounded into oblivion, coarse enough that the
/// wheel stays tiny.
const TICK: Duration = Duration::from_micros(250);

/// Wheel size. With 250µs ticks one revolution covers 64ms — longer
/// deadlines simply survive extra revolutions (the entry stores its absolute
/// tick).
const WHEEL_SLOTS: usize = 256;

/// Sleep floor: below this, yielding to the OS costs more than it saves.
const MIN_SLEEP: Duration = Duration::from_micros(50);

/// How long an "immediately pollable but unproductive" operation may delay
/// the next poll round — the cross-thread fallback for operations waiting on
/// state (a slot permit) that another thread's reactor will free.
const IMMEDIATE_RETRY: Duration = Duration::from_micros(250);

/// Identifies one armed timer; returned by [`TimerWheel::arm`] and required
/// for [`TimerWheel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerId {
    id: u64,
    tick: u64,
}

struct WheelEntry {
    id: u64,
    tick: u64,
}

/// A hashed timer wheel: O(1) arm/cancel, expiry by advancing a cursor over
/// the slots. Entries past one revolution stay in their slot and fire on the
/// revolution their absolute tick falls in.
pub struct TimerWheel {
    slots: Vec<Vec<WheelEntry>>,
    epoch: Instant,
    /// Ticks fully expired so far (entries with `tick <= cursor` are gone).
    cursor: u64,
    next_id: u64,
    live: usize,
}

impl TimerWheel {
    /// An empty wheel whose tick 0 is "now".
    pub fn new() -> TimerWheel {
        TimerWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            epoch: Instant::now(),
            cursor: 0,
            next_id: 0,
            live: 0,
        }
    }

    /// The absolute tick covering `deadline`, rounded **up** so a timer never
    /// fires before its deadline.
    fn tick_for(&self, deadline: Instant) -> u64 {
        let since = deadline.saturating_duration_since(self.epoch);
        (since.as_nanos() as u64).div_ceil(TICK.as_nanos() as u64)
    }

    /// Arm a timer for `deadline`. Deadlines in the past land on the next
    /// unexpired tick and fire on the next [`TimerWheel::advance`].
    pub fn arm(&mut self, deadline: Instant) -> TimerId {
        let tick = self.tick_for(deadline).max(self.cursor + 1);
        let id = self.next_id;
        self.next_id += 1;
        self.slots[(tick % WHEEL_SLOTS as u64) as usize].push(WheelEntry { id, tick });
        self.live += 1;
        TimerId { id, tick }
    }

    /// Cancel an armed timer; `true` when it was still pending (a timer that
    /// already fired — or was already cancelled — returns `false`).
    pub fn cancel(&mut self, timer: TimerId) -> bool {
        let slot = &mut self.slots[(timer.tick % WHEEL_SLOTS as u64) as usize];
        match slot.iter().position(|e| e.id == timer.id) {
            Some(index) => {
                slot.swap_remove(index);
                self.live -= 1;
                true
            }
            None => false,
        }
    }

    /// Expire every timer whose deadline is at or before `now`, in deadline
    /// order, advancing the cursor.
    pub fn advance(&mut self, now: Instant) -> Vec<TimerId> {
        let now_tick =
            now.saturating_duration_since(self.epoch).as_nanos() as u64 / TICK.as_nanos() as u64;
        if now_tick <= self.cursor || self.live == 0 {
            self.cursor = self.cursor.max(now_tick);
            return Vec::new();
        }
        let mut fired = Vec::new();
        // Visit each slot at most once per advance: a span longer than one
        // revolution has wrapped past every slot anyway.
        let span = (now_tick - self.cursor).min(WHEEL_SLOTS as u64);
        for offset in 1..=span {
            let slot = &mut self.slots[((self.cursor + offset) % WHEEL_SLOTS as u64) as usize];
            let mut index = 0;
            while index < slot.len() {
                if slot[index].tick <= now_tick {
                    let entry = slot.swap_remove(index);
                    fired.push(TimerId {
                        id: entry.id,
                        tick: entry.tick,
                    });
                } else {
                    index += 1;
                }
            }
        }
        self.live -= fired.len();
        self.cursor = now_tick;
        fired.sort_by_key(|t| t.tick);
        fired
    }

    /// The earliest armed deadline, or `None` when the wheel is empty.
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.live == 0 {
            return None;
        }
        let tick = self
            .slots
            .iter()
            .flat_map(|slot| slot.iter().map(|e| e.tick))
            .min()?;
        Some(self.epoch + TICK * tick as u32)
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

/// Run `ops` to completion on the calling thread (see the module docs for
/// the contract), or until `deadline` fires. The caller inspects its
/// operations afterwards for results; on [`DriveOutcome::DeadlineExceeded`]
/// the unfinished ones are simply dropped — that *is* the cancellation.
pub fn drive<C: Completion>(ops: &mut [C], deadline: Option<Instant>) -> DriveOutcome {
    let mut wheel = TimerWheel::new();
    // Per-op armed timer (cancelled on completion or re-armed on change).
    let mut armed: Vec<Option<(TimerId, Instant)>> = ops.iter().map(|_| None).collect();
    let mut pending: Vec<usize> = (0..ops.len()).collect();

    loop {
        let mut now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            return DriveOutcome::DeadlineExceeded;
        }
        // Expire due timers (the fired entries are gone from the wheel, so
        // their ops must not try to cancel them later).
        for fired in wheel.advance(now) {
            for slot in &mut armed {
                if slot.is_some_and(|(id, _)| id == fired) {
                    *slot = None;
                }
            }
        }

        // Poll every due operation; completions can cascade (a released slot
        // permit unblocks a parked op), so keep going until a full pass
        // completes nothing.
        loop {
            let mut progressed = false;
            pending.retain(|&i| {
                let due = ops[i].next_wakeup(now).is_none_or(|wake| wake <= now);
                if due && ops[i].poll(now) {
                    if let Some((timer, _)) = armed[i].take() {
                        wheel.cancel(timer);
                    }
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                break;
            }
            now = Instant::now();
        }
        if pending.is_empty() {
            return DriveOutcome::Completed;
        }

        // Re-arm timers to the survivors' current wakeups and sleep until
        // the earliest of: the wheel, the query deadline, or the
        // immediate-retry floor for ops that are pollable but blocked on
        // external state.
        let mut immediate = false;
        for &i in &pending {
            match ops[i].next_wakeup(now) {
                None => {
                    immediate = true;
                    if let Some((timer, _)) = armed[i].take() {
                        wheel.cancel(timer);
                    }
                }
                Some(wake) => {
                    let stale = armed[i].is_none_or(|(_, at)| {
                        let delta = wake.max(at) - wake.min(at);
                        delta > TICK
                    });
                    if stale {
                        if let Some((timer, _)) = armed[i].take() {
                            wheel.cancel(timer);
                        }
                        armed[i] = Some((wheel.arm(wake), wake));
                    }
                }
            }
        }
        let mut wake_at = wheel.next_deadline();
        if immediate {
            let retry = now + IMMEDIATE_RETRY;
            wake_at = Some(wake_at.map_or(retry, |w| w.min(retry)));
        }
        if let Some(d) = deadline {
            wake_at = Some(wake_at.map_or(d, |w| w.min(d)));
        }
        let until = wake_at.unwrap_or(now + IMMEDIATE_RETRY);
        let sleep = until.saturating_duration_since(now).max(MIN_SLEEP);
        std::thread::sleep(sleep);
    }
}

/// One operation inside the shared reactor, tagged with the wave that
/// submitted it.
struct TaggedOp {
    wave: u64,
    op: Box<dyn Completion + Send>,
}

/// Book-keeping for one submitted wave.
struct WaveState {
    /// Operations of this wave not yet completed.
    remaining: usize,
    /// The submitting query's deadline; firing it resolves (and cancels)
    /// only this wave.
    deadline: Option<Instant>,
    /// Set exactly once when the wave resolves.
    outcome: Option<DriveOutcome>,
}

/// Shared state of a [`SharedReactor`]: the injection queue, per-wave
/// progress, and the driver seat.
struct ReactorState {
    next_wave: u64,
    /// Operations submitted but not yet adopted by the driver.
    injected: Vec<TaggedOp>,
    waves: HashMap<u64, WaveState>,
    /// True while some submitter thread is driving the event loop.
    has_driver: bool,
}

/// A deployment-wide event loop that many threads submit waves to and park
/// on — the scheduler-owned singleton form of [`drive`].
///
/// # The worker model
///
/// [`drive`] gives one *wave* one private event loop: the submitting thread
/// polls its own operations and nothing else. A [`SharedReactor`] lifts that
/// to the deployment: every [`SharedReactor::submit_wave`] call injects its
/// operations into one shared pool, and exactly one of the parked submitter
/// threads — the **driver** — runs the event loop for *all* in-flight waves
/// at once. Completions from different queries therefore interleave on one
/// loop, which is what makes cross-query effects (deployment-scope prompt
/// coalescing, a single `llm_slots` ceiling) observable within one poll
/// round instead of across thread-timer boundaries.
///
/// The driver seat is not a dedicated thread: the first submitter to find
/// the seat empty takes it, drives until **its own wave** resolves, then
/// hands unfinished foreign operations back to the injection queue and wakes
/// a parked submitter to take over. Every parked submitter is a driver
/// candidate, so no wave can be orphaned while its submitter waits.
///
/// Per-wave semantics are unchanged from [`drive`]: a wave's deadline fires
/// only that wave (its unfinished operations are dropped — dropping is
/// cancelling), and [`SharedReactor::submit_wave`] returns the same
/// [`DriveOutcome`] the private loop would have produced.
pub struct SharedReactor {
    state: Mutex<ReactorState>,
    /// Wakes the driver: new operations were injected.
    work: Condvar,
    /// Wakes parked submitters: a wave resolved, or the driver seat freed.
    wave_done: Condvar,
}

impl Default for SharedReactor {
    fn default() -> Self {
        SharedReactor::new()
    }
}

/// Releases the driver seat on every exit path. A *panicking* driver has
/// already dropped the local operations it held, so its waves can never
/// complete: the guard resolves them (and clears the injection queue) so
/// their submitters observe a deadline abort instead of parking forever.
struct DriverSeat<'a> {
    reactor: &'a SharedReactor,
}

impl Drop for DriverSeat<'_> {
    fn drop(&mut self) {
        let mut state = self.reactor.lock_state();
        state.has_driver = false;
        if std::thread::panicking() {
            state.injected.clear();
            for wave in state.waves.values_mut() {
                if wave.outcome.is_none() {
                    wave.outcome = Some(DriveOutcome::DeadlineExceeded);
                }
            }
        }
        drop(state);
        self.reactor.wave_done.notify_all();
        self.reactor.work.notify_all();
    }
}

impl SharedReactor {
    /// An empty shared reactor (typically wrapped in an `Arc` and attached
    /// to an engine by the scheduler that owns the deployment).
    pub fn new() -> SharedReactor {
        SharedReactor {
            state: Mutex::new(ReactorState {
                next_wave: 0,
                injected: Vec::new(),
                waves: HashMap::new(),
                has_driver: false,
            }),
            work: Condvar::new(),
            wave_done: Condvar::new(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, ReactorState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Submit one wave of operations and park until it resolves — the
    /// shared-loop counterpart of [`drive`]. The calling thread either waits
    /// for a resolution or becomes the driver itself; see the type docs for
    /// the worker model. Results are read from wherever the operations write
    /// them (they are consumed here; on a deadline abort the unfinished ones
    /// are dropped, which is the cancellation).
    pub fn submit_wave(
        &self,
        ops: Vec<Box<dyn Completion + Send>>,
        deadline: Option<Instant>,
    ) -> DriveOutcome {
        if ops.is_empty() {
            return DriveOutcome::Completed;
        }
        let wave = {
            let mut state = self.lock_state();
            let wave = state.next_wave;
            state.next_wave += 1;
            state.waves.insert(
                wave,
                WaveState {
                    remaining: ops.len(),
                    deadline,
                    outcome: None,
                },
            );
            state
                .injected
                .extend(ops.into_iter().map(|op| TaggedOp { wave, op }));
            wave
        };
        self.work.notify_all();
        loop {
            let mut state = self.lock_state();
            if let Some(outcome) = state.waves.get(&wave).and_then(|w| w.outcome) {
                state.waves.remove(&wave);
                return outcome;
            }
            if state.has_driver {
                // Park; any wave resolution or driver handoff wakes us.
                let guard = self
                    .wave_done
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
                drop(guard);
            } else {
                state.has_driver = true;
                drop(state);
                return self.drive_waves(wave);
            }
        }
    }

    /// The driver loop: run every in-flight wave's operations until the
    /// caller's own wave (`own`) resolves, then hand back the seat. The
    /// polling discipline is identical to [`drive`]: level-triggered polls
    /// of due operations, cascade re-polls after completions, and sleeps
    /// bounded by the earliest stored wakeup / wave deadline — interruptible
    /// by new injections.
    fn drive_waves(&self, own: u64) -> DriveOutcome {
        let seat = DriverSeat { reactor: self };
        let mut local: Vec<TaggedOp> = Vec::new();
        let mut completed: Vec<u64> = Vec::new();
        loop {
            let mut now = Instant::now();
            // Intake + wave-deadline firing + own-wave exit check, one lock.
            let (cancelled, own_outcome) = {
                let mut state = self.lock_state();
                local.append(&mut state.injected);
                let mut cancelled: Vec<u64> = Vec::new();
                let mut newly_resolved = false;
                for (&id, wave) in &mut state.waves {
                    if wave.outcome.is_none() && wave.deadline.is_some_and(|d| now >= d) {
                        wave.outcome = Some(DriveOutcome::DeadlineExceeded);
                        newly_resolved = true;
                    }
                    if wave.outcome.is_some() {
                        cancelled.push(id);
                    }
                }
                if newly_resolved {
                    self.wave_done.notify_all();
                }
                (cancelled, state.waves.get(&own).and_then(|w| w.outcome))
            };
            // Drop resolved waves' operations outside the state lock
            // (dropping is cancellation and runs arbitrary `Drop` impls).
            if !cancelled.is_empty() {
                local.retain(|t| !cancelled.contains(&t.wave));
            }
            if let Some(outcome) = own_outcome {
                // Hand unfinished foreign operations back; the seat guard
                // frees the seat and wakes a successor.
                let mut state = self.lock_state();
                state.waves.remove(&own);
                state.injected.append(&mut local);
                drop(state);
                drop(seat);
                return outcome;
            }

            // Poll every due operation; completions can cascade (a freed
            // slot permit unblocks a parked op — possibly of another wave).
            loop {
                let mut progressed = false;
                local.retain_mut(|t| {
                    let due = t.op.next_wakeup(now).is_none_or(|wake| wake <= now);
                    if due && t.op.poll(now) {
                        completed.push(t.wave);
                        progressed = true;
                        false
                    } else {
                        true
                    }
                });
                if !progressed {
                    break;
                }
                now = Instant::now();
            }
            if !completed.is_empty() {
                let mut state = self.lock_state();
                let mut newly_resolved = false;
                for id in completed.drain(..) {
                    if let Some(wave) = state.waves.get_mut(&id) {
                        if wave.outcome.is_none() {
                            wave.remaining -= 1;
                            if wave.remaining == 0 {
                                wave.outcome = Some(DriveOutcome::Completed);
                                newly_resolved = true;
                            }
                        }
                    }
                }
                drop(state);
                if newly_resolved {
                    self.wave_done.notify_all();
                }
                // Re-check the own wave and the intake queue before sleeping.
                continue;
            }

            // Sleep until the earliest stored wakeup, wave deadline, or the
            // immediate-retry floor — woken early by any new injection.
            let state = self.lock_state();
            if !state.injected.is_empty() {
                continue;
            }
            let mut wake_at: Option<Instant> = None;
            let mut immediate = false;
            for t in &local {
                match t.op.next_wakeup(now) {
                    None => immediate = true,
                    Some(wake) => wake_at = Some(wake_at.map_or(wake, |w: Instant| w.min(wake))),
                }
            }
            for wave in state.waves.values() {
                if wave.outcome.is_none() {
                    if let Some(d) = wave.deadline {
                        wake_at = Some(wake_at.map_or(d, |w| w.min(d)));
                    }
                }
            }
            if immediate {
                let retry = now + IMMEDIATE_RETRY;
                wake_at = Some(wake_at.map_or(retry, |w| w.min(retry)));
            }
            // The fallback bound is unreachable while the own wave is alive
            // (its operations are local and carry wakeups), but keeps a
            // defect from becoming an unbounded park.
            let until = wake_at.unwrap_or(now + Duration::from_millis(10));
            let sleep = until.saturating_duration_since(now).max(MIN_SLEEP);
            let (guard, _timeout) = self
                .work
                .wait_timeout(state, sleep)
                .unwrap_or_else(PoisonError::into_inner);
            drop(guard);
        }
    }

    /// Waves currently unresolved (parked submitters), advisory.
    pub fn waves_in_flight(&self) -> usize {
        self.lock_state().waves.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_in_deadline_order() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        let late = wheel.arm(base + Duration::from_millis(8));
        let early = wheel.arm(base + Duration::from_millis(2));
        let mid = wheel.arm(base + Duration::from_millis(5));
        assert_eq!(wheel.len(), 3);
        assert!(wheel.next_deadline().unwrap() <= base + Duration::from_millis(3));

        // Nothing due yet.
        assert!(wheel.advance(base + Duration::from_micros(100)).is_empty());
        // The early and mid timers fire together, ordered by deadline.
        let fired = wheel.advance(base + Duration::from_millis(6));
        assert_eq!(fired, vec![early, mid]);
        let fired = wheel.advance(base + Duration::from_millis(10));
        assert_eq!(fired, vec![late]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn cancelled_timers_never_fire_and_fired_timers_cannot_cancel() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        let keep = wheel.arm(base + Duration::from_millis(1));
        let drop_me = wheel.arm(base + Duration::from_millis(1));
        assert!(wheel.cancel(drop_me), "pending timer should cancel");
        assert!(!wheel.cancel(drop_me), "double-cancel reports not-pending");
        let fired = wheel.advance(base + Duration::from_millis(2));
        assert_eq!(fired, vec![keep], "cancelled timer fired");
        assert!(
            !wheel.cancel(keep),
            "a fired timer is gone; cancelling it must be a no-op"
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn timers_beyond_one_revolution_survive_the_wrap() {
        // 256 slots at 250µs = 64ms per revolution; a 200ms timer must not
        // fire when its slot first comes around.
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        let far = wheel.arm(base + Duration::from_millis(200));
        let near = wheel.arm(base + Duration::from_millis(1));
        assert_eq!(wheel.advance(base + Duration::from_millis(70)), vec![near]);
        assert!(
            wheel.advance(base + Duration::from_millis(140)).is_empty(),
            "far timer fired a revolution early"
        );
        assert_eq!(
            wheel.advance(base + Duration::from_millis(201)),
            vec![far],
            "far timer lost across revolutions"
        );
    }

    #[test]
    fn timers_never_fire_before_their_deadline() {
        let mut wheel = TimerWheel::new();
        let deadline = Instant::now() + Duration::from_millis(3);
        wheel.arm(deadline);
        loop {
            let now = Instant::now();
            let fired = wheel.advance(now);
            if !fired.is_empty() {
                assert!(now >= deadline, "timer fired {:?} early", deadline - now);
                break;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// A synthetic operation: completes after `ready_at`, counts its polls.
    struct TimedOp {
        ready_at: Instant,
        polls: usize,
        done: bool,
    }

    impl Completion for TimedOp {
        fn poll(&mut self, now: Instant) -> bool {
            self.polls += 1;
            if now >= self.ready_at {
                self.done = true;
            }
            self.done
        }
        fn next_wakeup(&self, _now: Instant) -> Option<Instant> {
            Some(self.ready_at)
        }
    }

    #[test]
    fn drive_completes_overlapping_timers_without_blocking_per_op() {
        // 32 ops of ~10ms each on one thread: event-driven overlap means the
        // whole batch completes in ~one round trip, not 32.
        let start = Instant::now();
        let mut ops: Vec<TimedOp> = (0..32)
            .map(|i| TimedOp {
                ready_at: start + Duration::from_millis(10) + Duration::from_micros(i * 50),
                polls: 0,
                done: false,
            })
            .collect();
        let outcome = drive(&mut ops, None);
        assert_eq!(outcome, DriveOutcome::Completed);
        assert!(ops.iter().all(|op| op.done));
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(160),
            "no overlap: 32×10ms took {elapsed:?}"
        );
        // Timer-driven polling, not spinning: each op is polled a handful of
        // times, not thousands.
        assert!(
            ops.iter().all(|op| op.polls < 200),
            "reactor is spinning: {:?}",
            ops.iter().map(|op| op.polls).max()
        );
    }

    #[test]
    fn drive_honours_the_deadline_while_ops_are_parked() {
        let start = Instant::now();
        let mut ops = vec![TimedOp {
            ready_at: start + Duration::from_millis(500),
            polls: 0,
            done: false,
        }];
        let outcome = drive(&mut ops, Some(start + Duration::from_millis(5)));
        assert_eq!(outcome, DriveOutcome::DeadlineExceeded);
        assert!(!ops[0].done, "op must be left pending for the caller");
        assert!(
            start.elapsed() < Duration::from_millis(100),
            "deadline abort should not wait for the parked call"
        );
    }

    /// Two ops sharing one "slot": the second can only proceed once the
    /// first completes — exercising the completion-cascade re-poll.
    #[test]
    fn drive_cascades_completions_that_unblock_parked_ops() {
        use std::cell::Cell;
        struct SlotOp<'a> {
            slot_free: &'a Cell<bool>,
            holds: bool,
            ready_at: Option<Instant>,
            /// Absolute retry deadline while parked (per the
            /// [`Completion::next_wakeup`] contract: stored, not `now + δ`).
            retry_at: Option<Instant>,
            latency: Duration,
            done: bool,
        }
        impl Completion for SlotOp<'_> {
            fn poll(&mut self, now: Instant) -> bool {
                if self.done {
                    return true;
                }
                if !self.holds {
                    if !self.slot_free.get() {
                        self.retry_at = Some(now + Duration::from_micros(250));
                        return false;
                    }
                    self.slot_free.set(false);
                    self.holds = true;
                    self.ready_at = Some(now + self.latency);
                }
                if now >= self.ready_at.expect("holding implies a flight") {
                    self.done = true;
                    self.slot_free.set(true);
                }
                self.done
            }
            fn next_wakeup(&self, _now: Instant) -> Option<Instant> {
                if self.holds {
                    self.ready_at
                } else {
                    self.retry_at
                }
            }
        }
        let slot_free = Cell::new(true);
        let mut ops = vec![
            SlotOp {
                slot_free: &slot_free,
                holds: false,
                ready_at: None,
                retry_at: None,
                latency: Duration::from_millis(5),
                done: false,
            },
            SlotOp {
                slot_free: &slot_free,
                holds: false,
                ready_at: None,
                retry_at: None,
                latency: Duration::from_millis(5),
                done: false,
            },
        ];
        let start = Instant::now();
        assert_eq!(drive(&mut ops, None), DriveOutcome::Completed);
        assert!(ops.iter().all(|op| op.done));
        assert!(slot_free.get(), "slot leaked");
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "ops overlapped despite sharing one slot"
        );
    }

    /// A Send-able timed op for cross-thread shared-reactor tests: completes
    /// after `ready_at`, flips a shared flag.
    struct SharedTimedOp {
        ready_at: Instant,
        done: std::sync::Arc<std::sync::atomic::AtomicBool>,
    }

    impl Completion for SharedTimedOp {
        fn poll(&mut self, now: Instant) -> bool {
            if now >= self.ready_at {
                // ordering: Relaxed — test flag; the submitting thread's
                // join (and submit_wave's mutex) publish it to the asserts.
                self.done.store(true, std::sync::atomic::Ordering::Relaxed);
                return true;
            }
            false
        }
        fn next_wakeup(&self, _now: Instant) -> Option<Instant> {
            Some(self.ready_at)
        }
    }

    #[test]
    fn shared_reactor_interleaves_waves_from_many_threads() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // 4 submitters × 8 ops of ~10ms each on ONE shared loop: with the
        // waves interleaving, the whole deployment finishes in ~one round
        // trip; thread-per-wave serialization would be fine too, but a
        // non-interleaving reactor (one wave at a time) would take ~40ms+.
        let reactor = Arc::new(SharedReactor::new());
        let start = Instant::now();
        let flags: Vec<Arc<AtomicBool>> =
            (0..32).map(|_| Arc::new(AtomicBool::new(false))).collect();
        std::thread::scope(|scope| {
            for wave_idx in 0..4 {
                let reactor = Arc::clone(&reactor);
                let flags = &flags;
                scope.spawn(move || {
                    let ops: Vec<Box<dyn Completion + Send>> = (0..8)
                        .map(|i| {
                            Box::new(SharedTimedOp {
                                ready_at: start
                                    + Duration::from_millis(10)
                                    + Duration::from_micros((wave_idx * 8 + i) * 50),
                                done: Arc::clone(&flags[(wave_idx * 8 + i) as usize]),
                            }) as Box<dyn Completion + Send>
                        })
                        .collect();
                    let outcome = reactor.submit_wave(ops, None);
                    assert_eq!(outcome, DriveOutcome::Completed);
                });
            }
        });
        assert!(
            flags
                .iter()
                // ordering: Relaxed — read after scope join; join synchronizes.
                .all(|f| f.load(std::sync::atomic::Ordering::Relaxed)),
            "an op was dropped without completing"
        );
        assert_eq!(reactor.waves_in_flight(), 0, "wave table leaked");
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(200),
            "waves did not interleave: {elapsed:?}"
        );
    }

    #[test]
    fn a_wave_deadline_fires_only_its_own_wave() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let reactor = Arc::new(SharedReactor::new());
        let start = Instant::now();
        let slow_done = Arc::new(AtomicBool::new(false));
        let ok_done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            {
                let reactor = Arc::clone(&reactor);
                let slow_done = Arc::clone(&slow_done);
                scope.spawn(move || {
                    let ops: Vec<Box<dyn Completion + Send>> = vec![Box::new(SharedTimedOp {
                        ready_at: start + Duration::from_millis(500),
                        done: slow_done,
                    })];
                    let outcome = reactor.submit_wave(ops, Some(start + Duration::from_millis(5)));
                    assert_eq!(outcome, DriveOutcome::DeadlineExceeded);
                });
            }
            {
                let reactor = Arc::clone(&reactor);
                let ok_done = Arc::clone(&ok_done);
                scope.spawn(move || {
                    let ops: Vec<Box<dyn Completion + Send>> = vec![Box::new(SharedTimedOp {
                        ready_at: start + Duration::from_millis(15),
                        done: ok_done,
                    })];
                    let outcome = reactor.submit_wave(ops, None);
                    assert_eq!(outcome, DriveOutcome::Completed);
                });
            }
        });
        // ordering: Relaxed — read after scope join; join synchronizes.
        assert!(!slow_done.load(std::sync::atomic::Ordering::Relaxed));
        // ordering: Relaxed — read after scope join; join synchronizes.
        assert!(ok_done.load(std::sync::atomic::Ordering::Relaxed));
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "deadline abort waited for the cancelled call"
        );
    }

    #[test]
    fn sequential_waves_reuse_the_shared_reactor() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        // The driver seat must be released and re-taken across waves.
        let reactor = SharedReactor::new();
        for _ in 0..3 {
            let done = Arc::new(AtomicBool::new(false));
            let start = Instant::now();
            let ops: Vec<Box<dyn Completion + Send>> = vec![Box::new(SharedTimedOp {
                ready_at: start + Duration::from_millis(2),
                done: Arc::clone(&done),
            })];
            assert_eq!(reactor.submit_wave(ops, None), DriveOutcome::Completed);
            // ordering: Relaxed — single-threaded here.
            assert!(done.load(std::sync::atomic::Ordering::Relaxed));
        }
        assert_eq!(reactor.waves_in_flight(), 0);
    }

    #[test]
    fn empty_waves_complete_without_touching_the_loop() {
        let reactor = SharedReactor::new();
        assert_eq!(
            reactor.submit_wave(Vec::new(), None),
            DriveOutcome::Completed
        );
        assert_eq!(reactor.waves_in_flight(), 0);
    }
}
