#![forbid(unsafe_code)]
#![warn(clippy::pedantic)]
// Pedantic exceptions, each a deliberate local judgment call rather than a
// bug class: numeric casts are used where the domain bounds the value, and
// must_use / doc-section lints would add noise to an internal API.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_precision_loss,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::enum_glob_use,
    clippy::float_cmp,
    clippy::if_not_else,
    clippy::match_same_arms,
    clippy::missing_errors_doc,
    clippy::missing_panics_doc,
    clippy::must_use_candidate,
    clippy::needless_pass_by_value,
    clippy::return_self_not_must_use,
    clippy::single_match_else,
    clippy::struct_excessive_bools,
    clippy::too_many_lines
)]
//! # llmsql-exec
//!
//! The execution engine: scalar/aggregate evaluation of bound expressions,
//! physical scan operators over the relational store and the language-model
//! storage layer, relational operators (filter, project, hash/nested-loop
//! join, hash aggregate, sort, limit, distinct), and the plan interpreter.
//!
//! Execution is operator-at-a-time, but the latency-critical work inside an
//! operator is parallel: LLM-backed scans dispatch prompt waves concurrently
//! and CPU-heavy operators fan out above a row-count threshold, all governed
//! by `EngineConfig::parallelism`. Wave dispatch has two engines: the
//! event-driven [`reactor`] (one thread parks on a whole wave of
//! non-blocking submissions — the default whenever the model supports async
//! submit) and the scoped thread pool ([`parallel::par_map`], the fallback
//! for blocking models). Output order and (for scans) the set of issued
//! prompts are deterministic either way, so any parallelism setting and
//! either dispatch engine produce byte-identical results for a fixed seed.

#![warn(missing_docs)]

pub mod context;
pub mod eval;
pub mod executor;
pub mod metrics;
pub mod parallel;
pub mod reactor;
pub mod scan;
pub mod slots;

pub use context::ExecContext;
pub use eval::{eval, eval_predicate, AggAccumulator};
pub use executor::{
    aggregate_rows, execute, execute_rows, join_rows, join_rows_with_parallelism, sort_rows,
};
pub use metrics::{ExecMetrics, InFlightGuard, OpStats, SharedMetrics};
pub use parallel::{par_map, try_par_map, PAR_ROW_THRESHOLD};
pub use reactor::{drive, Completion, DriveOutcome, SharedReactor, TimerId, TimerWheel};
pub use scan::{hybrid_scan, llm_scan, table_scan, ScanSpec};
pub use slots::{CallSlots, OwnedSlotGuard, SlotGuard};

#[cfg(test)]
mod proptests {
    use super::*;
    use llmsql_plan::BoundExpr;
    use llmsql_sql::ast::{BinaryOp, JoinKind};
    use llmsql_types::{DataType, Row, Value};
    use proptest::prelude::*;

    /// Hash join (equi-key path) must agree with a nested-loop join
    /// (residual-predicate path) on random data.
    fn nested_loop_reference(
        left: &[Row],
        right: &[Row],
        key_l: usize,
        key_r: usize,
    ) -> Vec<(Value, Value)> {
        let mut out = Vec::new();
        for l in left {
            for r in right {
                if !l.get(key_l).is_null() && l.get(key_l).semantic_eq(r.get(key_r)) {
                    out.push((l.get(0).clone(), r.get(0).clone()));
                }
            }
        }
        out.sort();
        out
    }

    proptest! {
        #[test]
        fn hash_join_matches_nested_loop(
            left_keys in proptest::collection::vec(0i64..10, 0..20),
            right_keys in proptest::collection::vec(0i64..10, 0..20),
        ) {
            let left: Vec<Row> = left_keys
                .iter()
                .enumerate()
                .map(|(i, k)| Row::new(vec![Value::Int(i as i64), Value::Int(*k)]))
                .collect();
            let right: Vec<Row> = right_keys
                .iter()
                .enumerate()
                .map(|(i, k)| Row::new(vec![Value::Int(1000 + i as i64), Value::Int(*k)]))
                .collect();
            let on = BoundExpr::Binary {
                left: Box::new(BoundExpr::col(1, "k", DataType::Int)),
                op: BinaryOp::Eq,
                right: Box::new(BoundExpr::col(3, "k", DataType::Int)),
            };
            let joined = join_rows(&left, &right, 2, 2, JoinKind::Inner, Some(&on)).unwrap();
            let mut got: Vec<(Value, Value)> = joined
                .iter()
                .map(|r| (r.get(0).clone(), r.get(2).clone()))
                .collect();
            got.sort();
            let expected = nested_loop_reference(&left, &right, 1, 1);
            prop_assert_eq!(got, expected);
        }

        /// Sorting is a permutation and respects the key order.
        #[test]
        fn sort_is_ordered_permutation(values in proptest::collection::vec(-100i64..100, 0..50)) {
            let mut rows: Vec<Row> = values.iter().map(|v| Row::new(vec![Value::Int(*v)])).collect();
            let keys = vec![llmsql_plan::SortKey {
                expr: BoundExpr::col(0, "v", DataType::Int),
                ascending: true,
            }];
            sort_rows(&mut rows, &keys).unwrap();
            prop_assert_eq!(rows.len(), values.len());
            for w in rows.windows(2) {
                prop_assert!(w[0].get(0).total_cmp(w[1].get(0)) != std::cmp::Ordering::Greater);
            }
            let mut sorted_input = values.clone();
            sorted_input.sort_unstable();
            let got: Vec<i64> = rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
            prop_assert_eq!(got, sorted_input);
        }

        /// COUNT(*) equals the number of input rows for any grouping.
        #[test]
        fn aggregate_counts_sum_to_input(values in proptest::collection::vec(0i64..5, 0..60)) {
            let rows: Vec<Row> = values.iter().map(|v| Row::new(vec![Value::Int(*v)])).collect();
            let group = vec![BoundExpr::col(0, "g", DataType::Int)];
            let aggs = vec![BoundExpr::Aggregate {
                func: llmsql_sql::ast::AggregateFunc::Count,
                arg: None,
                distinct: false,
            }];
            let out = aggregate_rows(&rows, &group, &aggs).unwrap();
            let total: i64 = out.iter().map(|r| r.get(1).as_int().unwrap()).sum();
            prop_assert_eq!(total as usize, values.len());
        }
    }
}
